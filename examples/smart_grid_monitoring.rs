//! Smart-grid monitoring: detect day-long blackouts (Q3) and anomalous meters (Q4) and
//! trace every alert back to the hourly readings that caused it.
//!
//! Run with `cargo run -p genealog-bench --example smart_grid_monitoring`.

use genealog::prelude::*;
use genealog_workloads::queries::{build_q3, build_q4};
use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};
use genealog_workloads::types::MeterReading;

fn main() -> Result<(), SpeError> {
    let config = SmartGridConfig {
        meters: 50,
        days: 3,
        ..SmartGridConfig::default()
    };
    println!(
        "simulating {} smart meters for {} days ({} hourly readings)...\n",
        config.meters,
        config.days,
        config.total_readings()
    );

    // --- Q3: long-term blackout detection ------------------------------------------
    // Declared on the logical builder; the workload's physical stage builder plugs
    // in through the `raw` escape hatch and the planner lowers (and fuses) the plan.
    let q3 = GlPlan::new(GeneaLog::new());
    let alerts = q3
        .source("smart-grid", SmartGridGenerator::new(config))
        .raw("q3", build_q3);
    let (stream, provenance) = logical_provenance_sink(alerts, "q3-provenance");
    stream.discard();
    q3.deploy()?.wait()?;

    for assignment in provenance.assignments() {
        println!(
            "Q3 blackout alert on day starting {}: {} meters reported zero consumption",
            assignment.sink_ts, assignment.sink_data.zero_meters
        );
        let meters: std::collections::BTreeSet<u32> = assignment
            .source_payloads::<MeterReading>()
            .iter()
            .map(|r| r.meter_id)
            .collect();
        println!(
            "  proven by {} hourly readings from meters {:?}",
            assignment.source_count(),
            meters
        );
    }

    // --- Q4: anomalous meter detection ----------------------------------------------
    let q4 = GlPlan::new(GeneaLog::new());
    let alerts = q4
        .source("smart-grid", SmartGridGenerator::new(config))
        .raw("q4", build_q4);
    let (stream, provenance) = logical_provenance_sink(alerts, "q4-provenance");
    stream.discard();
    q4.deploy()?.wait()?;

    let assignments = provenance.assignments();
    println!("\nQ4: {} anomaly alert(s)", assignments.len());
    for assignment in assignments.iter().take(5) {
        println!(
            "  meter {} is inconsistent (diff {}), {} contributing readings, midnight reading: {:?}",
            assignment.sink_data.meter_id,
            assignment.sink_data.consumption_diff,
            assignment.source_count(),
            assignment
                .source_payloads::<MeterReading>()
                .iter()
                .find(|r| r.hour_of_day == 0)
                .map(|r| r.consumption)
        );
    }
    if assignments.len() > 5 {
        println!("  ... and {} more", assignments.len() - 5);
    }
    Ok(())
}
