//! Key-partitioned parallel execution with provenance, on the declarative builder:
//! a Smart-Grid-style keyed aggregate is *declared once* and annotated with
//! `.with(Parallelism::shards(4))` — the planner inserts the shuffle exchange, the
//! four shard instances and the provenance-safe fan-in, and every alert's
//! provenance still resolves to exactly the readings of its own meter.
//!
//! Run with: `cargo run --release --example parallel_aggregate`

use genealog::prelude::*;

fn main() {
    let meters: u32 = 16;
    let readings_per_meter: u64 = 48;

    // One reading per meter per 30 minutes.
    let mut readings: Vec<(Timestamp, (u32, i64))> = Vec::new();
    for round in 0..readings_per_meter {
        for meter in 0..meters {
            let ts = Timestamp::from_secs(round * 1_800);
            let load = ((round * 7 + meter as u64 * 13) % 50) as i64;
            readings.push((ts, (meter, load)));
        }
    }

    // Total load per meter over tumbling 4-hour windows; the shard count is an
    // annotation, not a different method. The `spike` filter after the aggregate
    // stays *inside* the shard region: the planner runs it per shard, ahead of the
    // canonical fan-in, and fuses it there.
    let plan = GlPlan::new(GeneaLog::new());
    let spikes = plan
        .source("meters", VecSource::new(readings))
        .aggregate(
            "load",
            WindowSpec::tumbling(Duration::from_hours(4)).expect("valid window"),
            |r: &(u32, i64)| r.0,
            |w: &WindowView<'_, u32, (u32, i64), GlMeta>| {
                (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
            },
            |o: &(u32, i64)| o.0,
        )
        .with(Parallelism::shards(4))
        .filter("spike", |(_, total): &(u32, i64)| *total > 200);

    let (out, provenance) = logical_provenance_sink(spikes, "prov");
    let sink = out.collecting_sink("alerts");
    let report = plan.deploy().expect("deploy").wait().expect("run");

    println!(
        "{} readings -> {} spike alerts ({} shard instances reported as one operator)",
        report.source_tuples(),
        sink.len(),
        report.operator("load").map_or(0, |o| o.instances),
    );
    for assignment in provenance.assignments().iter().take(5) {
        let (meter, total) = assignment.sink_data;
        println!(
            "meter {meter:2} window @{}s total {total}: {} contributing readings, all meter {meter}",
            assignment.sink_ts.as_secs(),
            assignment.source_count(),
        );
        assert!(assignment
            .source_records::<(u32, i64)>()
            .iter()
            .all(|r| r.data.0 == meter));
    }
}
