//! Key-partitioned parallel execution with provenance: a Smart-Grid-style keyed
//! aggregate runs on 4 shard instances, and every alert's provenance still resolves
//! to exactly the readings of its own meter — the exchange and the fan-in are
//! invisible to GeneaLog.
//!
//! Run with: `cargo run --release --example parallel_aggregate`

use genealog::prelude::*;
use genealog_spe::parallel::Parallelism;

fn main() {
    let meters: u32 = 16;
    let readings_per_meter: u64 = 48;

    // One reading per meter per 30 minutes.
    let mut readings: Vec<(Timestamp, (u32, i64))> = Vec::new();
    for round in 0..readings_per_meter {
        for meter in 0..meters {
            let ts = Timestamp::from_secs(round * 1_800);
            let load = ((round * 7 + meter as u64 * 13) % 50) as i64;
            readings.push((ts, (meter, load)));
        }
    }

    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("meters", VecSource::new(readings));

    // Total load per meter over tumbling 4-hour windows, on 4 parallel shards.
    let totals = q.sharded_aggregate(
        "load",
        src,
        WindowSpec::tumbling(Duration::from_hours(4)).expect("valid window"),
        |r: &(u32, i64)| r.0,
        |w: &WindowView<'_, u32, (u32, i64), GlMeta>| {
            (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
        },
        |o: &(u32, i64)| o.0,
        Parallelism::instances(4),
    );
    let spikes = q.filter("spike", totals, |(_, total)| *total > 200);

    let (out, provenance) = attach_provenance_sink(&mut q, "prov", spikes);
    let sink = q.collecting_sink("alerts", out);
    let report = q.deploy().expect("deploy").wait().expect("run");

    println!(
        "{} readings -> {} spike alerts ({} shard instances reported as one operator)",
        report.source_tuples(),
        sink.len(),
        report.operator("load").map_or(0, |o| o.instances),
    );
    for assignment in provenance.assignments().iter().take(5) {
        let (meter, total) = assignment.sink_data;
        println!(
            "meter {meter:2} window @{}s total {total}: {} contributing readings, all meter {meter}",
            assignment.sink_ts.as_secs(),
            assignment.source_count(),
        );
        assert!(assignment
            .source_records::<(u32, i64)>()
            .iter()
            .all(|r| r.data.0 == meter));
    }
}
