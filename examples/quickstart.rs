//! Quickstart: declare a small monitoring query once on the logical-plan builder,
//! let the planner lower it (fusion, sharding and channel budgets are *its* job),
//! enable GeneaLog provenance, and trace every alert back to the exact source
//! readings that caused it.
//!
//! Run with `cargo run -p genealog-bench --example quickstart`.

use genealog::prelude::*;

fn main() -> Result<(), SpeError> {
    // A toy temperature-monitoring query: sensor readings arrive every 30 seconds; an
    // alert is raised when three readings above 90 degrees fall in a 2-minute window.
    let readings: Vec<(u32, i64)> = vec![
        (1, 72),
        (2, 95),
        (1, 91),
        (1, 93),
        (2, 70),
        (1, 97),
        (2, 96),
        (1, 60),
    ];

    // 1. Declare the query once on the logical plan. No physical decisions here:
    //    whether `hot` fuses with its neighbours, or `hot-count` runs sharded, is
    //    decided by the planner at lowering time (annotate with
    //    `.with(Parallelism::shards(n))` / `.place(..)` to shard the aggregate —
    //    the declaration itself never changes).
    let plan = GlPlan::new(GeneaLog::new());
    let alerts = plan
        .source("sensors", VecSource::with_period(readings, 30_000))
        .filter("hot", |(_, temp): &(u32, i64)| *temp > 90)
        .aggregate(
            "hot-count",
            WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30))?,
            |(sensor, _): &(u32, i64)| *sensor,
            |window: &WindowView<'_, u32, (u32, i64), GlMeta>| (*window.key, window.len()),
            |(sensor, _): &(u32, usize)| *sensor,
        )
        .filter("alerts", |(_, n): &(u32, usize)| *n >= 3);

    // 2. Attach the provenance sink (the single-stream unfolder of the paper's §5).
    let (alert_stream, provenance) = logical_provenance_sink(alerts, "provenance");
    let alert_sink = alert_stream.collecting_sink("alert-sink");

    // 3. Lower the plan and run the physical query to completion.
    plan.deploy()?.wait()?;

    // 4. Inspect the alerts and, for each, the source readings that explain it.
    println!("{} alert(s) raised\n", alert_sink.len());
    for assignment in provenance.assignments() {
        let (sensor, count) = assignment.sink_data;
        println!(
            "alert at {}: sensor {sensor} had {count} hot readings; caused by {} source reading(s):",
            assignment.sink_ts,
            assignment.source_count()
        );
        for record in assignment.source_records::<(u32, i64)>() {
            println!(
                "  <- {} sensor {} read {} degrees (tuple id {})",
                record.ts, record.data.0, record.data.1, record.id
            );
        }
        println!();
    }

    // The provenance can also be persisted, as the evaluation does.
    let mut buffer = Vec::new();
    provenance.write_to(&mut buffer).expect("in-memory write");
    println!(
        "--- provenance log ({} bytes) ---\n{}",
        buffer.len(),
        String::from_utf8_lossy(&buffer)
    );
    Ok(())
}
