//! Quickstart: build a small monitoring query, enable GeneaLog provenance, and trace
//! every alert back to the exact source readings that caused it.
//!
//! Run with `cargo run -p genealog-bench --example quickstart`.

use genealog::prelude::*;

fn main() -> Result<(), SpeError> {
    // A toy temperature-monitoring query: sensor readings arrive every 30 seconds; an
    // alert is raised when three readings above 90 degrees fall in a 2-minute window.
    let readings: Vec<(u32, i64)> = vec![
        (1, 72),
        (2, 95),
        (1, 91),
        (1, 93),
        (2, 70),
        (1, 97),
        (2, 96),
        (1, 60),
    ];

    // 1. Build the query against the GeneaLog-instrumented engine.
    let mut q = GlQuery::new(GeneaLog::new());
    let source = q.source("sensors", VecSource::with_period(readings, 30_000));
    let hot = q.filter("hot", source, |(_, temp): &(u32, i64)| *temp > 90);
    let counts = q.aggregate(
        "hot-count",
        hot,
        WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30))?,
        |(sensor, _): &(u32, i64)| *sensor,
        |window| (*window.key, window.len()),
    );
    let alerts = q.filter("alerts", counts, |(_, n): &(u32, usize)| *n >= 3);

    // 2. Attach the provenance sink (the single-stream unfolder of the paper's §5).
    let (alert_stream, provenance) = attach_provenance_sink(&mut q, "provenance", alerts);
    let alert_sink = q.collecting_sink("alert-sink", alert_stream);

    // 3. Run the query to completion.
    q.deploy()?.wait()?;

    // 4. Inspect the alerts and, for each, the source readings that explain it.
    println!("{} alert(s) raised\n", alert_sink.len());
    for assignment in provenance.assignments() {
        let (sensor, count) = assignment.sink_data;
        println!(
            "alert at {}: sensor {sensor} had {count} hot readings; caused by {} source reading(s):",
            assignment.sink_ts,
            assignment.source_count()
        );
        for record in assignment.source_records::<(u32, i64)>() {
            println!(
                "  <- {} sensor {} read {} degrees (tuple id {})",
                record.ts, record.data.0, record.data.1, record.id
            );
        }
        println!();
    }

    // The provenance can also be persisted, as the evaluation does.
    let mut buffer = Vec::new();
    provenance.write_to(&mut buffer).expect("in-memory write");
    println!(
        "--- provenance log ({} bytes) ---\n{}",
        buffer.len(),
        String::from_utf8_lossy(&buffer)
    );
    Ok(())
}
