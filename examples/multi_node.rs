//! A real multi-process GeneaLog deployment: this process is the *origin*, the
//! shards of its windowed aggregate run inside separately started `spe-node`
//! worker processes, connected over plain TCP sockets.
//!
//! ```text
//! # two workers, then the origin:
//! cargo run --bin spe-node -- --listen 127.0.0.1:7401 --control 127.0.0.1:7491 &
//! cargo run --bin spe-node -- --listen 127.0.0.1:7402 --control 127.0.0.1:7492 &
//! cargo run --example multi_node -- --nodes 127.0.0.1:7401,127.0.0.1:7402 --hold 30
//! ```
//!
//! The origin deploys a 3-shard per-key sum: shards 0 and 2 on the first node,
//! shard 1 on the second. It then runs the identical plan single-instance
//! in-process and asserts the two agree byte for byte — sink tuples *and*
//! GeneaLog contribution sets stitched across both sockets. The origin's
//! control endpoint (folding the registry deltas every node ships back) is held
//! open for `--hold` seconds; `mn_control_addr.txt`, `mn_provenance_id.txt` and
//! `mn_source_count.txt` let a driving script — the CI multi-node job — scrape
//! and cross-check it without parsing stdout.

use std::collections::BTreeSet;
use std::net::SocketAddr;

use genealog::prelude::*;
use genealog_control::ControlPlane;
use genealog_distributed::deployment::logical_shard_provenance_sink;
use genealog_distributed::{
    connect_gl_node_group, NetworkConfig, NodeDeployment, NodeReading, ShardOpSpec,
};
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;

type Reading = NodeReading;
type SinkTuple = (u64, String);
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Must match the `ShardOpSpec::SumAggregate` the nodes are asked to run.
fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn sum_key(r: &Reading) -> u32 {
    r.0
}

fn sum_window(w: &WindowView<'_, u32, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn readings() -> Vec<(Timestamp, Reading)> {
    (0..36u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 3) as u32, i as i64 - 12)))
        .collect()
}

/// The single-instance oracle, run in this process.
fn run_local() -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(readings()));
    let sums = q.sharded_aggregate(
        "sum",
        src,
        window_spec(),
        sum_key,
        sum_window,
        |o: &Reading| o.0,
        Parallelism::instances(1),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy()
        .expect("oracle deploy")
        .wait()
        .expect("oracle run");
    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes_arg = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .expect("usage: multi_node --nodes ADDR,ADDR [--hold SECS]");
    let hold = args
        .iter()
        .position(|a| a == "--hold")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let addrs: Vec<SocketAddr> = nodes_arg
        .split(',')
        .map(|a| a.parse().expect("node address"))
        .collect();
    assert_eq!(
        addrs.len(),
        2,
        "this example deploys onto exactly two nodes"
    );

    // Shards 0 and 2 on the first node, shard 1 on the second; the origin keeps
    // GeneaLog instance namespace 0, the node-hosted shards take 1..=3.
    let template = NodeDeployment {
        group: "sum".into(),
        shards: Vec::new(),
        total_shards: 3,
        first_instance: 1,
        fusion: false,
        op: ShardOpSpec::SumAggregate {
            size_ms: 8_000,
            slide_ms: 4_000,
        },
        checkpoint_interval: None,
        restore_epoch: None,
    };
    let shards = connect_gl_node_group(
        &template,
        &[(addrs[0], vec![0, 2]), (addrs[1], vec![1])],
        NetworkConfig::unlimited(),
    )
    .expect("connect to the spe-node workers");
    let mut group = shards.group;
    println!(
        "connected: {} hosting shards [0, 2], {} hosting [1]",
        addrs[0], addrs[1]
    );

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");

    // Control endpoint before deployment consumes the query; the group streams
    // every node's shipped registry deltas into the origin's exposition.
    let query = plan.lower().expect("lower the spanning plan");
    let registry = query.registry();
    group.stream_metrics_into("sum", &registry);
    let server = ControlPlane::new(std::sync::Arc::clone(&registry))
        .with_topology(query.to_dot())
        .with_provenance(provenance.clone())
        .serve()
        .expect("bind control endpoint");
    std::fs::write("mn_control_addr.txt", server.addr().to_string()).expect("write address file");
    println!("control endpoint: http://{}", server.addr());

    query.deploy().expect("deploy").wait().expect("run");
    group.wait().expect("node-hosted shards drain clean");

    // The node-hosted deployment must be invisible against the local oracle.
    let (local_tuples, local_lineage) = run_local();
    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(
        local_tuples, remote_tuples,
        "sink bytes must match the oracle"
    );
    let records = provenance.records();
    let mut remote_lineage: Vec<Lineage> = records
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    remote_lineage.sort();
    assert_eq!(
        local_lineage, remote_lineage,
        "lineage must match the oracle"
    );
    println!(
        "verified: {} sink tuples and {} contribution sets identical to the local oracle",
        remote_tuples.len(),
        remote_lineage.len()
    );

    // One sink tuple's id and oracle source count, for the driving script's
    // `/provenance/{id}` cross-check.
    let record = &records[0];
    std::fs::write(
        "mn_provenance_id.txt",
        format!("{}-{}", record.sink_id.origin, record.sink_id.seq),
    )
    .expect("write provenance id file");
    std::fs::write("mn_source_count.txt", record.sources.len().to_string())
        .expect("write source count file");
    println!(
        "provenance: curl -s {}",
        server.url(&format!(
            "/provenance/{}-{}",
            record.sink_id.origin, record.sink_id.seq
        ))
    );

    if hold > 0 {
        println!("holding the endpoint open for {hold}s ...");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    server.shutdown();
}
