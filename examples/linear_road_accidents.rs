//! Vehicular monitoring on the Linear Road workload: detect broken-down cars (Q1) and
//! accidents (Q2) and show, for every alert, the position reports that prove it.
//!
//! Run with `cargo run -p genealog-bench --example linear_road_accidents`.

use genealog::prelude::*;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::{build_q1, build_q2};
use genealog_workloads::types::PositionReport;

fn main() -> Result<(), SpeError> {
    let config = LinearRoadConfig {
        cars: 60,
        rounds: 40,
        ..LinearRoadConfig::default()
    };
    println!(
        "simulating {} cars for {} rounds ({} position reports)...\n",
        config.cars,
        config.rounds,
        config.total_reports()
    );

    // --- Q1: broken-down vehicles -------------------------------------------------
    // Declared on the logical builder; the workload's physical stage builder plugs
    // in through the `raw` escape hatch and the planner lowers (and fuses) the plan.
    let q1 = GlPlan::new(GeneaLog::new());
    let alerts = q1
        .source("linear-road", LinearRoadGenerator::new(config))
        .raw("q1", build_q1);
    let (stream, provenance) = logical_provenance_sink(alerts, "q1-provenance");
    stream.discard();
    q1.deploy()?.wait()?;

    let assignments = provenance.assignments();
    println!("Q1: {} broken-down-car alert(s)", assignments.len());
    for assignment in assignments.iter().take(3) {
        println!(
            "  car {} stopped at {} (window {}), proven by:",
            assignment.sink_data.car_id, assignment.sink_data.last_pos, assignment.sink_ts
        );
        for record in assignment.source_records::<PositionReport>() {
            println!(
                "    <- {} car {} speed {} pos {}",
                record.ts, record.data.car_id, record.data.speed, record.data.pos
            );
        }
    }
    if assignments.len() > 3 {
        println!("  ... and {} more", assignments.len() - 3);
    }

    // --- Q2: accidents (two or more cars stopped at the same position) -------------
    let q2 = GlPlan::new(GeneaLog::new());
    let alerts = q2
        .source("linear-road", LinearRoadGenerator::new(config))
        .raw("q2", build_q2);
    let (stream, provenance) = logical_provenance_sink(alerts, "q2-provenance");
    stream.discard();
    q2.deploy()?.wait()?;

    let assignments = provenance.assignments();
    println!("\nQ2: {} accident alert(s)", assignments.len());
    for assignment in assignments.iter().take(3) {
        println!(
            "  accident at position {} involving {} car(s); {} contributing reports:",
            assignment.sink_data.pos,
            assignment.sink_data.stopped_cars,
            assignment.source_count()
        );
        let cars: std::collections::BTreeSet<u32> = assignment
            .source_payloads::<PositionReport>()
            .iter()
            .map(|r| r.car_id)
            .collect();
        println!("    cars involved: {cars:?}");
    }
    Ok(())
}
