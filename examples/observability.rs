//! The live observability plane, scrapable from outside the process.
//!
//! Runs the mini Linear Road Q1 (stopped-car alerts) under GeneaLog with the
//! embedded control endpoint attached, then holds the endpoint open so external
//! tools can scrape it:
//!
//! ```text
//! cargo run --example observability -- --hold 30 &
//! sleep 2; ADDR=$(cat control_addr.txt); SINK=$(cat provenance_id.txt)
//! curl -s http://$ADDR/healthz
//! curl -s http://$ADDR/metrics | grep genealog_operator_tuples_in_total
//! curl -s http://$ADDR/provenance/$SINK      # the alert's contribution set
//! curl -s http://$ADDR/topology.dot | dot -Tsvg > topology.svg
//! ```
//!
//! The example writes `control_addr.txt` (the bound `host:port`) and
//! `provenance_id.txt` (one sink tuple id in the URL-friendly `origin-seq`
//! form) into the current directory, so a driving script — the CI smoke job —
//! need not parse stdout.

use genealog::prelude::*;
use genealog_control::ControlPlane;

/// `(car, speed)` position reports, one per 30 s simulated time.
type Report = (u32, u32);

fn main() {
    let hold = std::env::args()
        .skip_while(|a| a != "--hold")
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);

    // Car 7 stops (4 zero-speed reports in one 150 s window) — one alert.
    let reports: Vec<Report> = vec![
        (7, 0),
        (7, 0),
        (7, 0),
        (9, 0),
        (7, 0),
        (8, 31),
        (9, 55),
        (8, 28),
    ];
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("reports", VecSource::with_period(reports, 30_000));
    let stopped = q.filter("stopped", src, |r: &Report| r.1 == 0);
    let counts = q.aggregate(
        "per-car",
        stopped,
        WindowSpec::tumbling(Duration::from_secs(150)).unwrap(),
        |r: &Report| r.0,
        |w| (*w.key, w.len()),
    );
    let alerts = q.filter("alerts", counts, |c: &(u32, usize)| c.1 >= 4);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    let sink = q.collecting_sink("alert-sink", out);

    // The control plane needs the registry and DOT before deployment consumes
    // the query; the provenance collector fills in while the query runs.
    let server = ControlPlane::new(q.registry())
        .with_topology(q.to_dot())
        .with_provenance(provenance.clone())
        .serve()
        .expect("bind control endpoint");
    std::fs::write("control_addr.txt", server.addr().to_string()).expect("write address file");
    println!("control endpoint: http://{}", server.addr());

    q.deploy().expect("deploy").wait().expect("run");

    let alerts = sink.tuples();
    assert_eq!(alerts.len(), 1, "exactly one stopped-car alert");
    let assignment = &provenance.assignments()[0];
    assert_eq!(assignment.source_count(), 4, "4 contributing reports");
    let sink_id = assignment.sink_id;
    std::fs::write(
        "provenance_id.txt",
        format!("{}-{}", sink_id.origin, sink_id.seq),
    )
    .expect("write provenance id file");

    println!("alert: {:?} (sink tuple {sink_id})", alerts[0].data);
    println!("contribution set:");
    for source in &assignment.sources {
        println!("  <- {} {}", source.id(), source.render());
    }
    println!("scrape me: curl -s {}", server.url("/metrics"));
    println!(
        "provenance: curl -s {}",
        server.url(&format!("/provenance/{}-{}", sink_id.origin, sink_id.seq))
    );

    if hold > 0 {
        println!("holding the endpoint open for {hold}s ...");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    server.shutdown();
}
