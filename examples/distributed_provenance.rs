//! Distributed (inter-process) provenance: deploy Q1 across three SPE instances — two
//! processing instances and one provenance instance — connected by a simulated
//! 100 Mbps link, exactly like the paper's Figure 7, and inspect the provenance
//! assembled at the third instance.
//!
//! Run with `cargo run -p genealog-bench --example distributed_provenance`.

use genealog_distributed::{deploy_distributed_genealog, NetworkConfig};
use genealog_spe::operator::source::SourceConfig;
use genealog_spe::SpeError;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::{q1_provenance_window, q1_stage1, q1_stage2};
use genealog_workloads::types::{PositionReport, StoppedCarCount};

fn main() -> Result<(), SpeError> {
    let config = LinearRoadConfig {
        cars: 40,
        rounds: 30,
        ..LinearRoadConfig::default()
    };
    let network = NetworkConfig::default();
    println!(
        "deploying Q1 over three SPE instances ({} position reports, {} Mbps link)...\n",
        config.total_reports(),
        network.bandwidth_bps / 1_000_000
    );

    let outcome =
        deploy_distributed_genealog::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
            "q1",
            LinearRoadGenerator::new(config),
            SourceConfig::default(),
            // Instance 1: zero-speed Filter + per-car Aggregate (plus its unfolder).
            q1_stage1,
            // Instance 2: the alert Filter and the data Sink (plus its unfolder).
            q1_stage2,
            q1_provenance_window(),
            network,
        )?;

    println!(
        "instance reports: {} | alerts at the data sink: {} | provenance records: {}",
        outcome.reports.len(),
        outcome.alerts.len(),
        outcome.provenance.len()
    );
    println!(
        "network traffic: {} bytes on the data link, {} bytes towards the provenance instance\n",
        outcome.data_link_bytes, outcome.provenance_link_bytes
    );

    for record in outcome.provenance.iter().take(4) {
        println!(
            "alert: car {} stopped (window {}), {} contributing position reports:",
            record.sink_data.car_id,
            record.sink_ts,
            record.sources.len()
        );
        for source in &record.sources {
            println!(
                "  <- {} car {} speed {} pos {} (id {})",
                source.ts, source.data.car_id, source.data.speed, source.data.pos, source.id
            );
        }
    }
    if outcome.provenance.len() > 4 {
        println!("... and {} more alerts", outcome.provenance.len() - 4);
    }
    Ok(())
}
