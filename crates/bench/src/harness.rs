//! Single-process run harness: executes one (query, configuration) pair and measures
//! throughput, latency, memory and traversal cost — the columns of Figures 12 and 14.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use genealog::{erase, find_provenance_with_stats, GeneaLog, GlMeta};
use genealog_baseline::{AriadneBaseline, BaselineCollector};
use genealog_metrics::recorder::{MemorySampler, TraversalRecorder};
use genealog_spe::operator::source::SourceGenerator;
use genealog_spe::provenance::NoProvenance;
use genealog_spe::query::{Query, StreamRef};
use genealog_spe::tuple::TupleData;
use genealog_spe::SpeError;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::{build_q1, build_q2, build_q3, build_q4};
use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};
use genealog_workloads::types::{MeterReading, PositionReport};

/// The four evaluation queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryId {
    /// Broken-down vehicle detection (Linear Road).
    Q1,
    /// Accident detection (Linear Road).
    Q2,
    /// Long-term blackout detection (Smart Grid).
    Q3,
    /// Meter anomaly detection (Smart Grid).
    Q4,
}

impl QueryId {
    /// All queries, in evaluation order.
    pub const ALL: [QueryId; 4] = [QueryId::Q1, QueryId::Q2, QueryId::Q3, QueryId::Q4];

    /// Short label ("Q1".."Q4").
    pub fn label(&self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q4 => "Q4",
        }
    }
}

/// The three provenance configurations compared by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemUnderTest {
    /// No provenance (the reference configuration).
    NoProvenance,
    /// GeneaLog (the paper's contribution).
    GeneaLog,
    /// The Ariadne-style annotation baseline.
    Baseline,
}

impl SystemUnderTest {
    /// All configurations, in evaluation order.
    pub const ALL: [SystemUnderTest; 3] = [
        SystemUnderTest::NoProvenance,
        SystemUnderTest::GeneaLog,
        SystemUnderTest::Baseline,
    ];

    /// Short label ("NP", "GL", "BL").
    pub fn label(&self) -> &'static str {
        match self {
            SystemUnderTest::NoProvenance => "NP",
            SystemUnderTest::GeneaLog => "GL",
            SystemUnderTest::Baseline => "BL",
        }
    }
}

/// Workload sizes for the benchmark runs.
#[derive(Debug, Clone, Copy)]
pub struct BenchWorkloads {
    /// Linear Road configuration used by Q1/Q2.
    pub linear_road: LinearRoadConfig,
    /// Smart Grid configuration used by Q3/Q4.
    pub smart_grid: SmartGridConfig,
}

impl Default for BenchWorkloads {
    fn default() -> Self {
        // Scaled so a full NP/GL/BL sweep over Q1-Q4 completes in a couple of minutes
        // on a laptop; set GENEALOG_BENCH_SCALE to grow or shrink the workloads.
        let scale = std::env::var("GENEALOG_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
            .max(0.05);
        BenchWorkloads {
            linear_road: LinearRoadConfig {
                cars: ((200.0 * scale) as u32).max(10),
                rounds: 60,
                ..LinearRoadConfig::default()
            },
            smart_grid: SmartGridConfig {
                meters: ((200.0 * scale) as u32).max(10),
                days: 3,
                ..SmartGridConfig::default()
            },
        }
    }
}

/// Configuration of an intra-process benchmark run.
#[derive(Clone)]
pub struct IntraConfig {
    /// The workload sizes.
    pub workloads: BenchWorkloads,
    /// Probe returning the process' live heap bytes (usually the tracking allocator).
    pub memory_probe: Arc<dyn Fn() -> usize + Send + Sync>,
    /// Interval between memory samples.
    pub memory_probe_interval: std::time::Duration,
}

impl IntraConfig {
    /// Creates a configuration with the given memory probe and default workloads.
    pub fn new(memory_probe: Arc<dyn Fn() -> usize + Send + Sync>) -> Self {
        IntraConfig {
            workloads: BenchWorkloads::default(),
            memory_probe,
            memory_probe_interval: std::time::Duration::from_millis(5),
        }
    }
}

impl std::fmt::Debug for IntraConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntraConfig")
            .field("workloads", &self.workloads)
            .field("memory_probe_interval", &self.memory_probe_interval)
            .finish()
    }
}

/// Measured outcome of one intra-process run.
#[derive(Debug, Clone, Default)]
pub struct IntraResult {
    /// Number of source tuples injected.
    pub source_tuples: u64,
    /// Number of alerts received by the data sink.
    pub sink_tuples: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Source throughput in tuples per second.
    pub throughput: f64,
    /// Mean sink latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Average live heap during the run, in megabytes.
    pub avg_memory_mb: f64,
    /// Maximum live heap during the run, in megabytes.
    pub max_memory_mb: f64,
    /// Mean contribution-graph traversal time in milliseconds (GL only).
    pub traversal_mean_ms: f64,
    /// Number of traversals performed (GL only).
    pub traversal_count: u64,
    /// Mean contribution-graph size in source tuples (GL only).
    pub mean_graph_size: f64,
    /// Estimated size of the captured provenance, in bytes.
    pub provenance_bytes: u64,
    /// Estimated size of the raw source data, in bytes.
    pub source_bytes: u64,
}

struct MemoryWatch {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
    sampler: Arc<MemorySampler>,
}

fn start_memory_watch(config: &IntraConfig) -> MemoryWatch {
    let sampler = MemorySampler::new();
    let stop = Arc::new(AtomicBool::new(false));
    let probe = Arc::clone(&config.memory_probe);
    let interval = config.memory_probe_interval;
    let thread_sampler = Arc::clone(&sampler);
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !thread_stop.load(Ordering::Relaxed) {
            thread_sampler.sample(probe());
            std::thread::sleep(interval);
        }
        thread_sampler.sample(probe());
    });
    MemoryWatch {
        stop,
        handle,
        sampler,
    }
}

impl MemoryWatch {
    fn finish(self) -> (f64, f64) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        (self.sampler.average_mb(), self.sampler.max_mb())
    }
}

fn run_with_system<G, D, F, P>(
    provenance: P,
    generator: G,
    source_bytes_per_tuple: u64,
    build: F,
    config: &IntraConfig,
    finalize: impl FnOnce(&mut Query<P>, StreamRef<D, P::Meta>, &mut IntraResult),
) -> Result<IntraResult, SpeError>
where
    G: SourceGenerator,
    D: TupleData,
    F: FnOnce(&mut Query<P>, StreamRef<G::Item, P::Meta>) -> StreamRef<D, P::Meta>,
    P: genealog_spe::provenance::ProvenanceSystem,
{
    let mut result = IntraResult::default();
    let mut q = Query::new(provenance);
    let source = q.source("source", generator);
    let alerts = build(&mut q, source);
    finalize(&mut q, alerts, &mut result);

    let watch = start_memory_watch(config);
    let report = q.deploy()?.wait()?;
    let (avg_mb, max_mb) = watch.finish();

    result.source_tuples = report.source_tuples();
    result.wall_seconds = report.wall_time().as_secs_f64();
    result.throughput = report.source_throughput();
    result.avg_memory_mb = avg_mb;
    result.max_memory_mb = max_mb;
    result.source_bytes = result.source_tuples * source_bytes_per_tuple;
    Ok(result)
}

fn run_np<G, D, F>(
    generator: G,
    source_bytes_per_tuple: u64,
    build: F,
    config: &IntraConfig,
) -> Result<IntraResult, SpeError>
where
    G: SourceGenerator,
    D: TupleData,
    F: FnOnce(&mut Query<NoProvenance>, StreamRef<G::Item, ()>) -> StreamRef<D, ()>,
{
    let sink_holder: Arc<
        parking_lot::Mutex<Option<genealog_spe::operator::sink::CollectedStream<D, ()>>>,
    > = Arc::new(parking_lot::Mutex::new(None));
    let holder = Arc::clone(&sink_holder);
    let mut result = run_with_system(
        NoProvenance,
        generator,
        source_bytes_per_tuple,
        build,
        config,
        move |q, alerts, _result| {
            *holder.lock() = Some(q.collecting_sink("data-sink", alerts));
        },
    )?;
    let sink = sink_holder.lock().take().expect("sink installed");
    result.sink_tuples = sink.stats().tuple_count();
    result.mean_latency_ms = sink.stats().mean_latency_ms();
    Ok(result)
}

fn run_gl<G, D, F>(
    generator: G,
    source_bytes_per_tuple: u64,
    build: F,
    config: &IntraConfig,
) -> Result<IntraResult, SpeError>
where
    G: SourceGenerator,
    D: TupleData,
    F: FnOnce(&mut Query<GeneaLog>, StreamRef<G::Item, GlMeta>) -> StreamRef<D, GlMeta>,
{
    type Holder<D> = Arc<
        parking_lot::Mutex<
            Option<(
                genealog_spe::operator::sink::CollectedStream<D, GlMeta>,
                genealog_spe::operator::sink::CollectedStream<u64, GlMeta>,
            )>,
        >,
    >;
    let sink_holder: Holder<D> = Arc::new(parking_lot::Mutex::new(None));
    let holder = Arc::clone(&sink_holder);
    let recorder = TraversalRecorder::new();
    let map_recorder = Arc::clone(&recorder);

    let mut result = run_with_system(
        GeneaLog::new(),
        generator,
        source_bytes_per_tuple,
        build,
        config,
        move |q, alerts, _result| {
            // The single-stream unfolder of §5.1 (Multiplex + findProvenance Map),
            // with the traversal timed for Figure 14.
            let branches = q.multiplex("su-mux", alerts, 2);
            let mut branches = branches.into_iter();
            let passthrough = branches.next().expect("two branches");
            let to_unfold = branches.next().expect("two branches");
            let data_sink = q.collecting_sink("data-sink", passthrough);
            let unfolded = q.map_with_meta("su-unfold", to_unfold, move |tuple| {
                let root = erase(tuple);
                let start = Instant::now();
                let (provenance, stats) = find_provenance_with_stats(&root);
                map_recorder.record(start.elapsed(), stats.originating);
                let bytes: u64 = provenance
                    .iter()
                    .map(|origin| origin.render().len() as u64 + 16)
                    .sum();
                vec![bytes]
            });
            let provenance_sink = q.collecting_sink("provenance-sink", unfolded);
            *holder.lock() = Some((data_sink, provenance_sink));
        },
    )?;

    let (data_sink, provenance_sink) = sink_holder.lock().take().expect("sinks installed");
    result.sink_tuples = data_sink.stats().tuple_count();
    result.mean_latency_ms = data_sink.stats().mean_latency_ms();
    result.traversal_mean_ms = recorder.mean_ms();
    result.traversal_count = recorder.count() as u64;
    result.mean_graph_size = recorder.mean_graph_size();
    result.provenance_bytes = provenance_sink.tuples().iter().map(|t| t.data).sum();
    Ok(result)
}

fn run_bl<G, D, F>(
    generator: G,
    source_bytes_per_tuple: u64,
    build: F,
    config: &IntraConfig,
) -> Result<IntraResult, SpeError>
where
    G: SourceGenerator,
    G::Item: TupleData,
    D: TupleData,
    F: FnOnce(
        &mut Query<AriadneBaseline>,
        StreamRef<G::Item, genealog_baseline::BlMeta>,
    ) -> StreamRef<D, genealog_baseline::BlMeta>,
{
    let baseline = AriadneBaseline::new();
    let collector = BaselineCollector::new(baseline.clone());
    type Holder<D> = Arc<
        parking_lot::Mutex<
            Option<genealog_spe::operator::sink::CollectedStream<D, genealog_baseline::BlMeta>>,
        >,
    >;
    let sink_holder: Holder<D> = Arc::new(parking_lot::Mutex::new(None));
    let holder = Arc::clone(&sink_holder);

    let mut result = run_with_system(
        baseline,
        generator,
        source_bytes_per_tuple,
        build,
        config,
        move |q, alerts, _result| {
            *holder.lock() = Some(q.collecting_sink("data-sink", alerts));
        },
    )?;
    let sink = sink_holder.lock().take().expect("sink installed");
    result.sink_tuples = sink.stats().tuple_count();
    result.mean_latency_ms = sink.stats().mean_latency_ms();
    // Sink-side provenance materialisation: join annotations with the retained store.
    let mut provenance_bytes = 0u64;
    for alert in sink.tuples() {
        let resolved = collector.resolve_raw(&alert);
        provenance_bytes += resolved
            .iter()
            .map(|(_, s)| s.rendered.len() as u64 + 16)
            .sum::<u64>();
    }
    result.provenance_bytes = provenance_bytes;
    Ok(result)
}

/// Runs one (query, configuration) pair in a single process and measures it.
///
/// # Errors
/// Propagates engine deployment/runtime errors.
pub fn run_intra(
    query: QueryId,
    system: SystemUnderTest,
    config: &IntraConfig,
) -> Result<IntraResult, SpeError> {
    let lr = config.workloads.linear_road;
    let sg = config.workloads.smart_grid;
    let lr_bytes = std::mem::size_of::<PositionReport>() as u64 + 8;
    let sg_bytes = std::mem::size_of::<MeterReading>() as u64 + 8;
    match (query, system) {
        (QueryId::Q1, SystemUnderTest::NoProvenance) => {
            run_np(LinearRoadGenerator::new(lr), lr_bytes, build_q1, config)
        }
        (QueryId::Q1, SystemUnderTest::GeneaLog) => {
            run_gl(LinearRoadGenerator::new(lr), lr_bytes, build_q1, config)
        }
        (QueryId::Q1, SystemUnderTest::Baseline) => {
            run_bl(LinearRoadGenerator::new(lr), lr_bytes, build_q1, config)
        }
        (QueryId::Q2, SystemUnderTest::NoProvenance) => {
            run_np(LinearRoadGenerator::new(lr), lr_bytes, build_q2, config)
        }
        (QueryId::Q2, SystemUnderTest::GeneaLog) => {
            run_gl(LinearRoadGenerator::new(lr), lr_bytes, build_q2, config)
        }
        (QueryId::Q2, SystemUnderTest::Baseline) => {
            run_bl(LinearRoadGenerator::new(lr), lr_bytes, build_q2, config)
        }
        (QueryId::Q3, SystemUnderTest::NoProvenance) => {
            run_np(SmartGridGenerator::new(sg), sg_bytes, build_q3, config)
        }
        (QueryId::Q3, SystemUnderTest::GeneaLog) => {
            run_gl(SmartGridGenerator::new(sg), sg_bytes, build_q3, config)
        }
        (QueryId::Q3, SystemUnderTest::Baseline) => {
            run_bl(SmartGridGenerator::new(sg), sg_bytes, build_q3, config)
        }
        (QueryId::Q4, SystemUnderTest::NoProvenance) => {
            run_np(SmartGridGenerator::new(sg), sg_bytes, build_q4, config)
        }
        (QueryId::Q4, SystemUnderTest::GeneaLog) => {
            run_gl(SmartGridGenerator::new(sg), sg_bytes, build_q4, config)
        }
        (QueryId::Q4, SystemUnderTest::Baseline) => {
            run_bl(SmartGridGenerator::new(sg), sg_bytes, build_q4, config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> IntraConfig {
        let mut config = IntraConfig::new(Arc::new(|| 1024 * 1024));
        config.workloads.linear_road.cars = 20;
        config.workloads.linear_road.rounds = 20;
        config.workloads.smart_grid.meters = 20;
        config.workloads.smart_grid.days = 2;
        config
    }

    #[test]
    fn q1_runs_under_all_three_systems_and_agrees_on_alerts() {
        let config = tiny_config();
        let np = run_intra(QueryId::Q1, SystemUnderTest::NoProvenance, &config).unwrap();
        let gl = run_intra(QueryId::Q1, SystemUnderTest::GeneaLog, &config).unwrap();
        let bl = run_intra(QueryId::Q1, SystemUnderTest::Baseline, &config).unwrap();
        assert!(np.sink_tuples > 0);
        assert_eq!(np.sink_tuples, gl.sink_tuples);
        assert_eq!(np.sink_tuples, bl.sink_tuples);
        assert_eq!(np.source_tuples, gl.source_tuples);
        // GL measured a traversal per sink tuple and captured provenance bytes.
        assert_eq!(gl.traversal_count, gl.sink_tuples);
        assert!(gl.provenance_bytes > 0);
        assert!((gl.mean_graph_size - 4.0).abs() < 1e-9);
        assert!(bl.provenance_bytes > 0);
        assert!(np.throughput > 0.0);
        assert!(np.avg_memory_mb > 0.0);
        assert!(np.max_memory_mb >= np.avg_memory_mb);
    }

    #[test]
    fn q3_gl_graph_size_matches_the_paper() {
        let mut config = tiny_config();
        config.workloads.smart_grid.meters = 20;
        config.workloads.smart_grid.days = 2;
        let gl = run_intra(QueryId::Q3, SystemUnderTest::GeneaLog, &config).unwrap();
        assert!(gl.sink_tuples > 0);
        // 8 blackout meters × 24 readings = 192 source tuples per alert.
        assert!((gl.mean_graph_size - 192.0).abs() < 1e-9);
    }

    #[test]
    fn labels_and_iteration_orders() {
        assert_eq!(QueryId::ALL.len(), 4);
        assert_eq!(SystemUnderTest::ALL.len(), 3);
        assert_eq!(QueryId::Q3.label(), "Q3");
        assert_eq!(SystemUnderTest::Baseline.label(), "BL");
    }
}
