//! A single-stream relay of Q4's two intermediate streams.
//!
//! In Figure 11C the first SPE instance of Q4 ships *two* streams (the per-meter daily
//! totals and the midnight readings) to the second instance. The generic two-stage
//! distributed deployments of `genealog-distributed` move exactly one stream between
//! the processing instances, so for the distributed benchmarks the two streams are
//! multiplexed onto one link as a tagged union ([`Q4Relay`]) and split again on the
//! receiving side. The extra Map/Union/Multiplex operators do not change which source
//! tuples contribute to each alert, so provenance (and the workload shipped across the
//! network) is unaffected.

use genealog_spe::provenance::ProvenanceSystem;
use genealog_spe::query::{Query, StreamRef};

use genealog_distributed::wire::{WireDecode, WireEncode, WireError, WireReader};
use genealog_workloads::queries::{q4_stage1, q4_stage2};
use genealog_workloads::types::{AnomalyAlert, DailyConsumption, MeterReading};

/// One element of the combined Q4 intermediate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Q4Relay {
    /// A per-meter daily consumption total (the Aggregate branch).
    Daily(DailyConsumption),
    /// A midnight reading (the Filter branch).
    Midnight(MeterReading),
}

impl WireEncode for Q4Relay {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Q4Relay::Daily(d) => {
                0u8.encode(out);
                d.encode(out);
            }
            Q4Relay::Midnight(m) => {
                1u8.encode(out);
                m.encode(out);
            }
        }
    }
}

impl WireDecode for Q4Relay {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            0 => Ok(Q4Relay::Daily(DailyConsumption::decode(reader)?)),
            1 => Ok(Q4Relay::Midnight(MeterReading::decode(reader)?)),
            other => Err(WireError {
                message: format!("unknown Q4Relay tag {other}"),
            }),
        }
    }
}

/// Stage 1 of the distributed Q4: the original stage 1 followed by the relay union.
pub fn q4_relay_stage1<P: ProvenanceSystem>(
    q: &mut Query<P>,
    readings: StreamRef<MeterReading, P::Meta>,
) -> StreamRef<Q4Relay, P::Meta> {
    let (daily, midnight) = q4_stage1(q, readings);
    let daily = q.map_one("q4-relay-daily", daily, |d: &DailyConsumption| {
        Q4Relay::Daily(*d)
    });
    let midnight = q.map_one("q4-relay-midnight", midnight, |m: &MeterReading| {
        Q4Relay::Midnight(*m)
    });
    q.union("q4-relay-union", vec![daily, midnight])
}

/// Stage 2 of the distributed Q4: splits the relay back into its two streams and runs
/// the original stage 2 (Join + threshold Filter).
pub fn q4_relay_stage2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    relay: StreamRef<Q4Relay, P::Meta>,
) -> StreamRef<AnomalyAlert, P::Meta> {
    let branches = q.multiplex("q4-relay-split", relay, 2);
    let mut branches = branches.into_iter();
    let first = branches.next().expect("two branches");
    let second = branches.next().expect("two branches");
    let daily = q.map("q4-relay-extract-daily", first, |r: &Q4Relay| match r {
        Q4Relay::Daily(d) => vec![*d],
        Q4Relay::Midnight(_) => Vec::new(),
    });
    let midnight = q.map("q4-relay-extract-midnight", second, |r: &Q4Relay| match r {
        Q4Relay::Midnight(m) => vec![*m],
        Q4Relay::Daily(_) => Vec::new(),
    });
    q4_stage2(q, daily, midnight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::provenance::NoProvenance;
    use genealog_workloads::queries::build_q4;
    use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};

    #[test]
    fn relay_round_trips_on_the_wire() {
        let daily = Q4Relay::Daily(DailyConsumption {
            meter_id: 3,
            total: 240,
        });
        let midnight = Q4Relay::Midnight(MeterReading {
            meter_id: 3,
            consumption: 10,
            hour_of_day: 0,
        });
        for relay in [daily, midnight] {
            let decoded = Q4Relay::from_bytes(&relay.to_bytes()).unwrap();
            assert_eq!(decoded, relay);
        }
        assert!(Q4Relay::from_bytes(&[7]).is_err());
    }

    #[test]
    fn relayed_q4_produces_the_same_alerts_as_the_direct_q4() {
        let config = SmartGridConfig::default();

        let mut direct = Query::new(NoProvenance);
        let readings = direct.source("sg", SmartGridGenerator::new(config));
        let alerts = build_q4(&mut direct, readings);
        let direct_out = direct.collecting_sink("alerts", alerts);
        direct.deploy().unwrap().wait().unwrap();

        let mut relayed = Query::new(NoProvenance);
        let readings = relayed.source("sg", SmartGridGenerator::new(config));
        let relay = q4_relay_stage1(&mut relayed, readings);
        let alerts = q4_relay_stage2(&mut relayed, relay);
        let relayed_out = relayed.collecting_sink("alerts", alerts);
        relayed.deploy().unwrap().wait().unwrap();

        let direct_alerts: Vec<_> = direct_out.tuples().iter().map(|t| (t.ts, t.data)).collect();
        let mut relayed_alerts: Vec<_> = relayed_out
            .tuples()
            .iter()
            .map(|t| (t.ts, t.data))
            .collect();
        relayed_alerts.sort_by_key(|(ts, a)| (*ts, a.meter_id));
        let mut direct_sorted = direct_alerts.clone();
        direct_sorted.sort_by_key(|(ts, a)| (*ts, a.meter_id));
        assert_eq!(direct_sorted, relayed_alerts);
        assert!(!direct_alerts.is_empty());
    }
}
