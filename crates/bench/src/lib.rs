//! # genealog-bench — harness support for the evaluation benchmarks
//!
//! The benchmark binaries (`benches/fig12_intra.rs`, `benches/fig13_inter.rs`,
//! `benches/fig14_traversal.rs`, `benches/micro.rs`) reproduce the figures of the
//! paper's §7. This library hosts the shared harness code: single-process run
//! functions for the NP/GL/BL configurations of each query, the instrumented
//! (traversal-timed) provenance unfolder, the memory-sampling loop and the
//! `Q4Relay` wrapper that lets Q4's two intermediate streams share one
//! instance-to-instance link in the distributed deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod q4relay;

pub use harness::{run_intra, BenchWorkloads, IntraConfig, IntraResult, QueryId, SystemUnderTest};
pub use q4relay::{q4_relay_stage1, q4_relay_stage2, Q4Relay};
