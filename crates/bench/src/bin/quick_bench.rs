//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! PR 10 measures the **cost of durable checkpointing**: the planner-lowered
//! pipeline of PR 5 (`source → filter → map → aggregate → sink`, fusion on,
//! 2 shards) runs under the NP and GL provenance configurations with
//! checkpointing (a) disabled, (b) into the volatile in-memory store, (c) into
//! `genealog_store::DurableBackend` writing every epoch's window container in
//! full, and (d) into the same backend in incremental mode, where each epoch
//! ships a `GLWD` delta against the previous container plus a periodic full
//! rebase. Every durable `put` is write → fsync → manifest, so the sweep prices
//! real disk barriers, not page-cache writes. Per (system, store) pair the JSON
//! records throughput, the checkpoint overhead against the no-checkpoint
//! baseline, and the bytes physically appended to the log — from which the
//! `write_amplification` section derives the incremental mode's win: on a
//! growing window the full container is re-written every epoch while the delta
//! only carries the new occurrences. Results land in `BENCH_PR10.json` in the
//! current directory (override the path with `GENEALOG_BENCH_OUT`).
//!
//! The JSON records `host_cpus`: on a single-core host the shard sweep shows only
//! the state-partitioning gain, not thread parallelism.
//!
//! Set `GENEALOG_BENCH_SMOKE=1` for a fast CI smoke run (fewer tuples, one
//! repetition).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use genealog::{GeneaLog, GlMeta, GlWindowPersister};
use genealog_spe::logical::LogicalPlan;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::persist::PlainWindowPersister;
use genealog_spe::prelude::*;
use genealog_spe::provenance::MetaData;
use genealog_spe::state::{CheckpointConfig, CheckpointStore, StateBackend};
use genealog_store::{DurableBackend, StoreOptions};

/// Batch size of the stream transport (the PR 1 configuration).
const BATCH: usize = 256;
/// Number of distinct keys the stream is partitioned on.
const KEYS: u32 = 64;
/// Shard count of the windowed aggregate whose state is checkpointed.
const SHARDS: usize = 2;

type Reading = (u32, i64);

fn tuples_per_run() -> usize {
    if smoke_mode() {
        40_000
    } else {
        300_000
    }
}

/// Checkpoint interval in source tuples — ~8 epochs per smoke run, ~15 per
/// full run.
fn interval() -> u64 {
    if smoke_mode() {
        5_000
    } else {
        20_000
    }
}

fn repetitions() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

fn smoke_mode() -> bool {
    std::env::var("GENEALOG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Where each run checkpoints to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreMode {
    /// Checkpointing disabled — the overhead baseline.
    None,
    /// The volatile `InMemoryBackend` (PR 6's only option).
    InMemory,
    /// `DurableBackend`, every epoch's container written in full.
    DurableFull,
    /// `DurableBackend` in incremental mode (GLWD deltas + periodic rebase).
    DurableIncremental,
}

impl StoreMode {
    fn label(self) -> &'static str {
        match self {
            StoreMode::None => "none",
            StoreMode::InMemory => "in_memory",
            StoreMode::DurableFull => "durable_full",
            StoreMode::DurableIncremental => "durable_incremental",
        }
    }
}

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    store: &'static str,
    throughput_tps: f64,
    per_tuple_ns: f64,
    /// Bytes the backend wrote — physical log appends for the durable modes,
    /// serialized snapshot footprint for the in-memory store.
    bytes_written: u64,
    epochs: u64,
}

/// Checkpointing cost of one (system, store) pair against the no-checkpoint
/// baseline of the same system.
#[derive(Debug, Clone)]
struct Overhead {
    system: &'static str,
    store: &'static str,
    overhead_pct: f64,
}

/// The incremental mode's storage win per system.
#[derive(Debug, Clone)]
struct Amplification {
    system: &'static str,
    full_bytes: u64,
    incremental_bytes: u64,
    /// `full_bytes / incremental_bytes` — how many times over the full mode
    /// re-writes state the delta chain carries once.
    factor: f64,
}

fn sum_window<M: MetaData>(w: &WindowView<'_, u32, Reading, M>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn temp_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "genealog-quick-bench-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

/// One run of the declared pipeline with the given checkpoint destination.
/// `persist` registers the system-appropriate window persister so aggregate
/// state crosses the byte seam instead of falling back to inline snapshots.
fn planner_once<P>(
    provenance: P,
    mode: StoreMode,
    persist: &dyn Fn(CheckpointConfig) -> CheckpointConfig,
) -> Measurement
where
    P: ProvenanceSystem,
{
    let label = provenance.label();
    let tuples = tuples_per_run();
    let spec = WindowSpec::tumbling(Duration::from_secs(60)).unwrap();

    let dir = temp_dir();
    let store = match mode {
        StoreMode::None => None,
        StoreMode::InMemory => Some(CheckpointStore::in_memory()),
        StoreMode::DurableFull | StoreMode::DurableIncremental => {
            let options = if mode == StoreMode::DurableIncremental {
                StoreOptions::incremental()
            } else {
                StoreOptions::default()
            };
            let backend = DurableBackend::open_with(&dir, options).expect("open durable store");
            Some(CheckpointStore::new(backend as Arc<dyn StateBackend>))
        }
    };

    let mut config = PlannerConfig::default().with_batch_size(BATCH);
    if let Some(store) = &store {
        config = config.with_checkpoints(persist(CheckpointConfig::new(
            interval(),
            Arc::clone(store),
        )));
    }
    let plan = LogicalPlan::with_config(provenance, config);
    let items: Vec<Reading> = (0..tuples).map(|i| ((i as u32) % KEYS, i as i64)).collect();
    let stats = plan
        .source_with(
            "events",
            VecSource::with_period(items, 1),
            SourceConfig {
                watermark_every: 4_096,
                ..SourceConfig::default()
            },
        )
        .filter("live", |r: &Reading| r.1 >= 0)
        .map_one("scale", |r: &Reading| (r.0, r.1 * 2))
        .aggregate(
            "agg",
            spec,
            |r: &Reading| r.0,
            sum_window,
            |o: &Reading| o.0,
        )
        .with(Parallelism::shards(SHARDS))
        .sink("sink", |_| {});
    let report = plan.deploy().expect("lower + deploy").wait().expect("run");
    assert_eq!(report.source_tuples(), tuples as u64);
    assert!(stats.tuple_count() > 0, "sink must observe window outputs");
    let wall = report.wall_time().as_secs_f64();

    let (bytes_written, epochs) = store
        .as_ref()
        .map(|s| {
            (
                s.backend().bytes_written(),
                s.latest_complete_epoch().map_or(0, |e| e + 1),
            )
        })
        .unwrap_or((0, 0));
    if let Some(s) = &store {
        assert!(
            s.latest_complete_epoch().is_some(),
            "a checkpointed run must complete at least one epoch"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    Measurement {
        system: label,
        store: mode.label(),
        throughput_tps: tuples as f64 / wall,
        per_tuple_ns: wall * 1e9 / tuples as f64,
        bytes_written,
        epochs,
    }
}

fn best_of<P>(
    provenance: &P,
    mode: StoreMode,
    persist: &dyn Fn(CheckpointConfig) -> CheckpointConfig,
) -> Measurement
where
    P: ProvenanceSystem,
{
    (0..repetitions())
        .map(|_| planner_once(provenance.clone(), mode, persist))
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("at least one repetition")
}

const MODES: [StoreMode; 4] = [
    StoreMode::None,
    StoreMode::InMemory,
    StoreMode::DurableFull,
    StoreMode::DurableIncremental,
];

fn sweep<P: ProvenanceSystem>(
    provenance: &P,
    persist: &dyn Fn(CheckpointConfig) -> CheckpointConfig,
    measurements: &mut Vec<Measurement>,
    overheads: &mut Vec<Overhead>,
    amplifications: &mut Vec<Amplification>,
) {
    let per_mode: Vec<Measurement> = MODES
        .iter()
        .map(|mode| {
            let m = best_of(provenance, *mode, persist);
            measurements.push(m.clone());
            m
        })
        .collect();
    let baseline = &per_mode[0];
    for m in &per_mode[1..] {
        overheads.push(Overhead {
            system: m.system,
            store: m.store,
            overhead_pct: (m.per_tuple_ns - baseline.per_tuple_ns) / baseline.per_tuple_ns * 100.0,
        });
    }
    let full = &per_mode[2];
    let incremental = &per_mode[3];
    amplifications.push(Amplification {
        system: full.system,
        full_bytes: full.bytes_written,
        incremental_bytes: incremental.bytes_written,
        factor: full.bytes_written as f64 / incremental.bytes_written.max(1) as f64,
    });
}

fn render_json(
    measurements: &[Measurement],
    overheads: &[Overhead],
    amplifications: &[Amplification],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 10,\n");
    out.push_str("  \"benchmark\": \"durable_checkpoint_store\",\n");
    out.push_str(
        "  \"pipeline\": \"LogicalPlan: source -> filter -> map -> aggregate(2 shards) -> sink, fusion on, checkpointing none vs in-memory vs durable-full vs durable-incremental\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {},\n", tuples_per_run()));
    out.push_str(&format!("  \"checkpoint_interval\": {},\n", interval()));
    out.push_str(&format!("  \"repetitions\": {},\n", repetitions()));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"store\": \"{}\", \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}, \"bytes_written\": {}, \"epochs\": {}}}{}\n",
            m.system,
            m.store,
            m.throughput_tps,
            m.per_tuple_ns,
            m.bytes_written,
            m.epochs,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"checkpoint_overhead\": [\n");
    for (i, o) in overheads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"store\": \"{}\", \"overhead_pct\": {:.1}}}{}\n",
            o.system,
            o.store,
            o.overhead_pct,
            if i + 1 < overheads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"write_amplification\": [\n");
    for (i, a) in amplifications.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"full_bytes\": {}, \"incremental_bytes\": {}, \"factor\": {:.2}}}{}\n",
            a.system,
            a.full_bytes,
            a.incremental_bytes,
            a.factor,
            if i + 1 < amplifications.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let mut measurements = Vec::new();
    let mut overheads = Vec::new();
    let mut amplifications = Vec::new();

    sweep(
        &NoProvenance,
        &|config| config.with_window_persister::<u32, Reading, ()>(Arc::new(PlainWindowPersister)),
        &mut measurements,
        &mut overheads,
        &mut amplifications,
    );
    let gl = GeneaLog::new();
    sweep(
        &gl,
        &|config| {
            config.with_window_persister::<u32, Reading, GlMeta>(Arc::new(GlWindowPersister::<
                u32,
                Reading,
                Reading,
            >::new()))
        },
        &mut measurements,
        &mut overheads,
        &mut amplifications,
    );

    for m in &measurements {
        println!(
            "{:>2} store={:<20} {:>12.0} tuples/s  {:>8.1} ns/tuple  {:>12} bytes  {:>3} epochs",
            m.system, m.store, m.throughput_tps, m.per_tuple_ns, m.bytes_written, m.epochs
        );
    }
    for o in &overheads {
        println!(
            "{:>2} store={:<20} checkpoint overhead {:>6.1}%",
            o.system, o.store, o.overhead_pct
        );
    }
    for a in &amplifications {
        println!(
            "{:>2} write amplification: full {} bytes vs incremental {} bytes ({:.2}x)",
            a.system, a.full_bytes, a.incremental_bytes, a.factor
        );
    }

    let json = render_json(&measurements, &overheads, &amplifications);
    let path =
        std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
