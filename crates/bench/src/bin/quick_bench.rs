//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! PR 7 measures the **cost of always-on observability**: the planner-lowered
//! pipeline of PR 5 (`source → filter → map → aggregate → sink`, fusion on) is
//! run with the live metrics registry disabled and enabled at each shard count
//! under the NP and GL provenance configurations. With metrics on, every
//! operator publishes tuple counters into the registry on the hot path, channels
//! export queue-depth gauges and back-pressure stall counters, and the sink
//! feeds the latency histogram — everything `/metrics` serves while the query
//! runs. The on/off delta is reported as `overhead_pct` per (system, shards)
//! pair — the steady-state price of the observability plane, which stays within
//! single-digit percent because the hot path touches only per-instance atomics
//! (the registry is consulted at collection time, never per tuple). The
//! measurements are written to `BENCH_PR7.json` in the current directory
//! (override the path with `GENEALOG_BENCH_OUT`).
//!
//! The JSON records `host_cpus`: on a single-core host the shard sweep shows only
//! the state-partitioning gain, not thread parallelism.
//!
//! Set `GENEALOG_BENCH_SMOKE=1` for a fast CI smoke run (fewer tuples, one
//! repetition).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;

use genealog::GeneaLog;
use genealog_spe::logical::LogicalPlan;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::prelude::*;
use genealog_spe::provenance::MetaData;

/// Batch size of the stream transport (the PR 1 configuration).
const BATCH: usize = 256;
/// Number of distinct keys the stream is partitioned on.
const KEYS: u32 = 64;

type Reading = (u32, i64);

fn tuples_per_run() -> usize {
    if smoke_mode() {
        40_000
    } else {
        300_000
    }
}

fn repetitions() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

fn smoke_mode() -> bool {
    std::env::var("GENEALOG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    shards: usize,
    metrics: bool,
    throughput_tps: f64,
    per_tuple_ns: f64,
}

/// Steady-state observability cost for one (system, shards) pair.
#[derive(Debug, Clone)]
struct Overhead {
    system: &'static str,
    shards: usize,
    overhead_pct: f64,
}

fn sum_window<M: MetaData>(w: &WindowView<'_, u32, Reading, M>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

/// One run of the declared pipeline with the given planner annotations.
fn planner_once<P>(provenance: P, shards: usize, metrics: bool) -> (Measurement, QueryReport)
where
    P: ProvenanceSystem,
{
    let label = provenance.label();
    let tuples = tuples_per_run();
    let spec = WindowSpec::tumbling(Duration::from_secs(60)).unwrap();

    let config = PlannerConfig::default()
        .with_batch_size(BATCH)
        .with_metrics(metrics);
    let plan = LogicalPlan::with_config(provenance, config);
    let items: Vec<Reading> = (0..tuples).map(|i| ((i as u32) % KEYS, i as i64)).collect();
    let stats = plan
        .source_with(
            "events",
            VecSource::with_period(items, 1),
            SourceConfig {
                watermark_every: 4_096,
                ..SourceConfig::default()
            },
        )
        .filter("live", |r: &Reading| r.1 >= 0)
        .map_one("scale", |r: &Reading| (r.0, r.1 * 2))
        .aggregate(
            "agg",
            spec,
            |r: &Reading| r.0,
            sum_window,
            |o: &Reading| o.0,
        )
        .with(Parallelism::shards(shards))
        .sink("sink", |_| {});
    let report = plan.deploy().expect("lower + deploy").wait().expect("run");
    assert_eq!(report.source_tuples(), tuples as u64);
    assert!(stats.tuple_count() > 0, "sink must observe window outputs");
    let wall = report.wall_time().as_secs_f64();
    (
        Measurement {
            system: label,
            shards,
            metrics,
            throughput_tps: tuples as f64 / wall,
            per_tuple_ns: wall * 1e9 / tuples as f64,
        },
        report,
    )
}

fn best_of<P>(provenance: &P, shards: usize, metrics: bool) -> (Measurement, QueryReport)
where
    P: ProvenanceSystem,
{
    (0..repetitions())
        .map(|_| planner_once(provenance.clone(), shards, metrics))
        .max_by(|a, b| a.0.throughput_tps.total_cmp(&b.0.throughput_tps))
        .expect("at least one repetition")
}

fn render_json(measurements: &[Measurement], overheads: &[Overhead]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 7,\n");
    out.push_str("  \"benchmark\": \"observability_plane\",\n");
    out.push_str(
        "  \"pipeline\": \"LogicalPlan: source -> filter -> map -> aggregate(.with(shards)) -> sink, fusion on, live metrics registry off vs on\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {},\n", tuples_per_run()));
    out.push_str(&format!("  \"repetitions\": {},\n", repetitions()));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"shards\": {}, \"metrics\": {}, \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}}}{}\n",
            m.system,
            m.shards,
            m.metrics,
            m.throughput_tps,
            m.per_tuple_ns,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics_overhead\": [\n");
    for (i, o) in overheads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"shards\": {}, \"overhead_pct\": {:.1}}}{}\n",
            o.system,
            o.shards,
            o.overhead_pct,
            if i + 1 < overheads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn sweep<P: ProvenanceSystem>(
    provenance: &P,
    measurements: &mut Vec<Measurement>,
    overheads: &mut Vec<Overhead>,
    mut keep_report: impl FnMut(usize, bool, QueryReport),
) {
    for shards in [1usize, 2, 4] {
        let mut pair = Vec::with_capacity(2);
        for metrics in [false, true] {
            let (m, report) = best_of(provenance, shards, metrics);
            keep_report(shards, metrics, report);
            pair.push(m.clone());
            measurements.push(m);
        }
        let (off, on) = (&pair[0], &pair[1]);
        overheads.push(Overhead {
            system: off.system,
            shards,
            overhead_pct: (on.per_tuple_ns - off.per_tuple_ns) / off.per_tuple_ns * 100.0,
        });
    }
}

fn main() {
    let mut measurements = Vec::new();
    let mut overheads = Vec::new();
    let mut sample_report: Option<QueryReport> = None;
    sweep(
        &NoProvenance,
        &mut measurements,
        &mut overheads,
        |s, m, r| {
            if s == 4 && m {
                sample_report = Some(r);
            }
        },
    );
    let gl = GeneaLog::new();
    sweep(&gl, &mut measurements, &mut overheads, |_, _, _| {});

    for m in &measurements {
        println!(
            "{:>2} shards={} metrics={:<5} {:>12.0} tuples/s  {:>8.1} ns/tuple",
            m.system, m.shards, m.metrics, m.throughput_tps, m.per_tuple_ns
        );
    }
    for o in &overheads {
        println!(
            "{:>2} shards={} metrics overhead {:>6.1}%",
            o.system, o.shards, o.overhead_pct
        );
    }

    if let Some(report) = sample_report {
        println!("\nsample report (NP, 4 shards, metrics on) — the registry's final fold:");
        print!("{}", report.render_operators());
    }

    let json = render_json(&measurements, &overheads);
    let path = std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR7.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
