//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! PR 4 measures **distributed shard groups**: a keyed aggregate is run with its
//! shards placed on 1, 2 and 4 *remote SPE instances* (Partition exchange →
//! instrumented Send → link → `Receive → aggregate → Send` → link → Receive →
//! provenance-safe fan-in), under the NP and GL provenance configurations, and
//! compared against the all-local sharded plan at the same shard counts. The links
//! are the batch-aware simulated transport with unlimited bandwidth, so the sweep
//! isolates the serialisation + framing cost of crossing an instance boundary from
//! network physics. The measurements are written to `BENCH_PR4.json` in the current
//! directory (override the path with `GENEALOG_BENCH_OUT`).
//!
//! The JSON records `host_cpus`: each remote shard adds an engine instance of its
//! own threads, so on a single-core host the sweep shows serialisation overhead
//! only; on a many-core host remote shards buy real parallelism.
//!
//! Set `GENEALOG_BENCH_SMOKE=1` for a fast CI smoke run (fewer tuples, one
//! repetition).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;

use genealog::GeneaLog;
use genealog_distributed::deployment::remote_shard_group;
use genealog_distributed::{NetworkConfig, WireProvenance};
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::prelude::*;
use genealog_spe::query::ShardPlacement;

/// Batch size of the stream transport (the PR 1 configuration).
const BATCH: usize = 256;
/// Number of distinct keys the stream is partitioned on.
const KEYS: u32 = 64;

type Reading = (u32, i64);

fn tuples_per_run() -> usize {
    if smoke_mode() {
        40_000
    } else {
        300_000
    }
}

fn repetitions() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

fn smoke_mode() -> bool {
    std::env::var("GENEALOG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    shards: usize,
    remote: bool,
    throughput_tps: f64,
    per_tuple_ns: f64,
}

/// One run of the sharded-aggregate pipeline with the given placement mode.
fn sharded_once<P>(
    provenance: P,
    make_instance: fn(u32) -> P,
    shards: usize,
    remote: bool,
) -> Measurement
where
    P: WireProvenance,
{
    let label = provenance.label();
    let tuples = tuples_per_run();
    let spec = WindowSpec::tumbling(Duration::from_secs(60)).unwrap();
    let agg = |w: &WindowView<'_, u32, Reading, P::Meta>| {
        (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
    };
    let key = |r: &Reading| r.0;

    let config = QueryConfig::default().with_batch_size(BATCH);
    let (placements, group) = if remote {
        let (placements, group) = remote_shard_group::<P, Reading, Reading, _, _>(
            "agg",
            shards,
            NetworkConfig::unlimited(),
            config,
            move |i| make_instance(1 + i as u32),
            move |rq, _i, input| rq.aggregate("agg", input, spec, key, agg),
        )
        .expect("remote shard group");
        (placements, Some(group))
    } else {
        (ShardPlacement::all_local(shards), None)
    };

    let mut q = Query::with_config(provenance, config);
    let items: Vec<Reading> = (0..tuples).map(|i| ((i as u32) % KEYS, i as i64)).collect();
    let src = q.source_with(
        "events",
        VecSource::with_period(items, 1),
        SourceConfig {
            watermark_every: 4_096,
            ..SourceConfig::default()
        },
    );
    let sums =
        q.sharded_aggregate_placed("agg", src, spec, key, agg, |o: &Reading| o.0, placements);
    let stats = q.sink("sink", sums, |_| {});
    let report = q.deploy().expect("deploy").wait().expect("run");
    if let Some(group) = group {
        group.wait().expect("remote instances");
    }
    assert_eq!(report.source_tuples(), tuples as u64);
    assert!(stats.tuple_count() > 0, "sink must observe window outputs");
    let wall = report.wall_time().as_secs_f64();
    Measurement {
        system: label,
        shards,
        remote,
        throughput_tps: tuples as f64 / wall,
        per_tuple_ns: wall * 1e9 / tuples as f64,
    }
}

fn best_of<P>(
    provenance: &P,
    make_instance: fn(u32) -> P,
    shards: usize,
    remote: bool,
) -> Measurement
where
    P: WireProvenance,
{
    (0..repetitions())
        .map(|_| sharded_once(provenance.clone(), make_instance, shards, remote))
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("at least one repetition")
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 4,\n");
    out.push_str("  \"benchmark\": \"distributed_sharded_aggregate\",\n");
    out.push_str(
        "  \"pipeline\": \"source -> partition -> [shard aggregate xN, local threads or remote SPE instances over simulated links] -> keyed merge -> sink\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {},\n", tuples_per_run()));
    out.push_str(&format!("  \"repetitions\": {},\n", repetitions()));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"shards\": {}, \"remote\": {}, \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}}}{}\n",
            m.system,
            m.shards,
            m.remote,
            m.throughput_tps,
            m.per_tuple_ns,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let mut measurements = Vec::new();
    for shards in [1usize, 2, 4] {
        for remote in [false, true] {
            measurements.push(best_of(&NoProvenance, |_| NoProvenance, shards, remote));
        }
    }
    let gl = GeneaLog::for_instance(0);
    for shards in [1usize, 2, 4] {
        for remote in [false, true] {
            measurements.push(best_of(&gl, GeneaLog::for_instance, shards, remote));
        }
    }

    for m in &measurements {
        println!(
            "{:>2} shards={} remote={:<5} {:>12.0} tuples/s  {:>8.1} ns/tuple",
            m.system, m.shards, m.remote, m.throughput_tps, m.per_tuple_ns
        );
    }

    let json = render_json(&measurements);
    let path = std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
