//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! PR 2 measures **key-partitioned parallel execution**: a keyed sliding-window
//! aggregate (64 keys, WS = 2048 ms / WA = 256 ms, so every tuple lands in 8
//! overlapping windows) is run as `source -> shuffle exchange -> N aggregate shards
//! -> keyed merge -> sink` with N in {1, 2, 4}, under the NP and GL provenance
//! configurations. The measurements are written to `BENCH_PR2.json` in the current
//! directory (override the path with `GENEALOG_BENCH_OUT`).
//!
//! The JSON records `host_cpus`: shard scaling is thread parallelism, so the
//! 4-shard/1-shard speedup is only meaningful on a machine with enough cores — on a
//! single-core host the sweep degenerates to a fairness check (sharding must not make
//! things dramatically worse).
//!
//! Set `GENEALOG_BENCH_SMOKE=1` for a fast CI smoke run (fewer tuples, one
//! repetition).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;

use genealog::GeneaLog;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::parallel::Parallelism;
use genealog_spe::prelude::*;
use genealog_spe::provenance::ProvenanceSystem;

/// Batch size of the stream transport (the PR 1 configuration).
const BATCH: usize = 256;
/// Distinct group-by keys.
const KEYS: u32 = 64;

fn tuples_per_run() -> usize {
    if smoke_mode() {
        40_000
    } else {
        300_000
    }
}

fn repetitions() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

fn smoke_mode() -> bool {
    std::env::var("GENEALOG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    shards: usize,
    throughput_tps: f64,
    per_tuple_ns: f64,
}

/// One run of the sharded-aggregate pipeline; returns the source throughput.
fn sharded_once<P: ProvenanceSystem>(provenance: P, shards: usize) -> Measurement {
    let label = provenance.label();
    let tuples = tuples_per_run();
    let mut q = Query::with_config(provenance, QueryConfig::default().with_batch_size(BATCH));
    let items: Vec<(u32, i64)> = (0..tuples).map(|i| ((i as u32) % KEYS, i as i64)).collect();
    let src = q.source_with(
        "events",
        VecSource::with_period(items, 1),
        SourceConfig {
            // Watermarks flush batches and close windows; spacing them out keeps the
            // pipeline throughput-bound rather than flush-bound.
            watermark_every: 4_096,
            ..SourceConfig::default()
        },
    );
    let sums = q.sharded_aggregate(
        "sum",
        src,
        WindowSpec::new(Duration::from_millis(2_048), Duration::from_millis(256))
            .expect("valid window"),
        |t: &(u32, i64)| t.0,
        |w: &WindowView<'_, u32, (u32, i64), P::Meta>| {
            // A modest amount of per-window CPU work, so the aggregate shards (not
            // the exchange) are the bottleneck that parallelism can attack.
            let mut acc: i64 = 0;
            for p in w.payloads() {
                acc = acc.wrapping_mul(31).wrapping_add(p.1 ^ (acc >> 7));
            }
            (*w.key, acc)
        },
        |o: &(u32, i64)| o.0,
        Parallelism::instances(shards),
    );
    let stats = q.sink("sink", sums, |_| {});
    let report = q.deploy().expect("deploy").wait().expect("run");
    assert_eq!(report.source_tuples(), tuples as u64);
    assert!(stats.tuple_count() > 0, "sink must observe window outputs");
    let wall = report.wall_time().as_secs_f64();
    Measurement {
        system: label,
        shards,
        throughput_tps: tuples as f64 / wall,
        per_tuple_ns: wall * 1e9 / tuples as f64,
    }
}

fn best_of<P: ProvenanceSystem + Clone>(provenance: &P, shards: usize) -> Measurement {
    (0..repetitions())
        .map(|_| sharded_once(provenance.clone(), shards))
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("at least one repetition")
}

fn render_json(measurements: &[Measurement], speedup_np: f64, speedup_gl: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 2,\n");
    out.push_str("  \"benchmark\": \"sharded_aggregate\",\n");
    out.push_str(
        "  \"pipeline\": \"source -> exchange -> N x aggregate(64 keys, WS 2048ms / WA 256ms) -> keyed merge -> sink\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {},\n", tuples_per_run()));
    out.push_str(&format!("  \"repetitions\": {},\n", repetitions()));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"shards\": {}, \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}}}{}\n",
            m.system,
            m.shards,
            m.throughput_tps,
            m.per_tuple_ns,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"np_4shard_vs_1shard_speedup\": {speedup_np:.2},\n"
    ));
    out.push_str(&format!(
        "  \"gl_4shard_vs_1shard_speedup\": {speedup_gl:.2}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let shard_counts = [1usize, 2, 4];
    let mut measurements = Vec::new();
    for &shards in &shard_counts {
        measurements.push(best_of(&NoProvenance, shards));
    }
    let gl = GeneaLog::new();
    for &shards in &shard_counts {
        measurements.push(best_of(&gl, shards));
    }

    let by = |system: &str, shards: usize| {
        measurements
            .iter()
            .find(|m| m.system == system && m.shards == shards)
            .expect("measured configuration")
            .throughput_tps
    };
    let speedup_np = by("NP", 4) / by("NP", 1);
    let speedup_gl = by("GL", 4) / by("GL", 1);

    for m in &measurements {
        println!(
            "{:>2} shards={:<2} {:>12.0} tuples/s  {:>8.1} ns/tuple",
            m.system, m.shards, m.throughput_tps, m.per_tuple_ns
        );
    }
    println!("NP 4-shard vs 1-shard speedup: {speedup_np:.2}x");
    println!("GL 4-shard vs 1-shard speedup: {speedup_gl:.2}x");

    let json = render_json(&measurements, speedup_np, speedup_gl);
    let path = std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
