//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! PR 3 measures **operator fusion**: a stateless `filter -> map -> map` chain is run
//! with the physical-plan fusion pass on and off, under the NP and GL provenance
//! configurations. Fused, the three stages share one thread and exchange tuples by
//! direct calls; unfused, each stage is its own thread behind a bounded batched
//! channel. The measurements are written to `BENCH_PR3.json` in the current
//! directory (override the path with `GENEALOG_BENCH_OUT`).
//!
//! The JSON records `host_cpus`: fusion trades thread-level parallelism for zero
//! transport cost, so its benefit is largest when operators outnumber cores — on a
//! single-core host every channel hop is pure overhead and fusion shows its upper
//! bound; on a many-core host a cheap chain can still win fused because the stages
//! never saturate one core each.
//!
//! Set `GENEALOG_BENCH_SMOKE=1` for a fast CI smoke run (fewer tuples, one
//! repetition).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;

use genealog::GeneaLog;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::prelude::*;
use genealog_spe::provenance::ProvenanceSystem;

/// Batch size of the stream transport (the PR 1 configuration).
const BATCH: usize = 256;

fn tuples_per_run() -> usize {
    if smoke_mode() {
        60_000
    } else {
        500_000
    }
}

fn repetitions() -> usize {
    if smoke_mode() {
        1
    } else {
        3
    }
}

fn smoke_mode() -> bool {
    std::env::var("GENEALOG_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    fused: bool,
    throughput_tps: f64,
    per_tuple_ns: f64,
}

/// One run of the stateless-chain pipeline; returns the source throughput.
fn chain_once<P: ProvenanceSystem>(provenance: P, fused: bool) -> Measurement {
    let label = provenance.label();
    let tuples = tuples_per_run();
    let mut q = Query::with_config(
        provenance,
        QueryConfig::default()
            .with_batch_size(BATCH)
            .with_fusion(fused),
    );
    let items: Vec<i64> = (0..tuples as i64).collect();
    let src = q.source_with(
        "events",
        VecSource::with_period(items, 1),
        SourceConfig {
            // Watermarks flush batches; spacing them out keeps the pipeline
            // throughput-bound rather than flush-bound.
            watermark_every: 4_096,
            ..SourceConfig::default()
        },
    );
    // A stateless hot path with per-stage work small enough that the transport
    // between stages (channel + batch + wake-up vs a direct call) dominates.
    let kept = q.filter("select", src, |x| x % 16 != 0);
    let scaled = q.map_one("scale", kept, |x| x.wrapping_mul(31) ^ (x >> 3));
    let tagged = q.map_one("tag", scaled, |x| x.wrapping_add(0x9E37_79B9));
    let stats = q.sink("sink", tagged, |_| {});
    let report = q.deploy().expect("deploy").wait().expect("run");
    assert_eq!(report.source_tuples(), tuples as u64);
    assert!(stats.tuple_count() > 0, "sink must observe chain outputs");
    let wall = report.wall_time().as_secs_f64();
    Measurement {
        system: label,
        fused,
        throughput_tps: tuples as f64 / wall,
        per_tuple_ns: wall * 1e9 / tuples as f64,
    }
}

fn best_of<P: ProvenanceSystem + Clone>(provenance: &P, fused: bool) -> Measurement {
    (0..repetitions())
        .map(|_| chain_once(provenance.clone(), fused))
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("at least one repetition")
}

fn render_json(measurements: &[Measurement], speedup_np: f64, speedup_gl: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 3,\n");
    out.push_str("  \"benchmark\": \"fused_stateless_chain\",\n");
    out.push_str(
        "  \"pipeline\": \"source -> filter -> map -> map -> sink (fused: one thread, no channels; unfused: thread-per-operator)\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {},\n", tuples_per_run()));
    out.push_str(&format!("  \"repetitions\": {},\n", repetitions()));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"fused\": {}, \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}}}{}\n",
            m.system,
            m.fused,
            m.throughput_tps,
            m.per_tuple_ns,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"np_fused_vs_unfused_speedup\": {speedup_np:.2},\n"
    ));
    out.push_str(&format!(
        "  \"gl_fused_vs_unfused_speedup\": {speedup_gl:.2}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mut measurements = Vec::new();
    for fused in [false, true] {
        measurements.push(best_of(&NoProvenance, fused));
    }
    let gl = GeneaLog::new();
    for fused in [false, true] {
        measurements.push(best_of(&gl, fused));
    }

    let by = |system: &str, fused: bool| {
        measurements
            .iter()
            .find(|m| m.system == system && m.fused == fused)
            .expect("measured configuration")
            .throughput_tps
    };
    let speedup_np = by("NP", true) / by("NP", false);
    let speedup_gl = by("GL", true) / by("GL", false);

    for m in &measurements {
        println!(
            "{:>2} fused={:<5} {:>12.0} tuples/s  {:>8.1} ns/tuple",
            m.system, m.fused, m.throughput_tps, m.per_tuple_ns
        );
    }
    println!("NP fused vs unfused speedup: {speedup_np:.2}x");
    println!("GL fused vs unfused speedup: {speedup_gl:.2}x");

    let json = render_json(&measurements, speedup_np, speedup_gl);
    let path = std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR3.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
