//! Quick throughput benchmark establishing the per-PR performance trajectory.
//!
//! Runs a short 4-operator micro pipeline (Source -> Filter -> Map -> Sink) under the
//! NP and GL provenance configurations, once with the batched transport disabled
//! (`batch_size = 1`, the pre-batching behaviour) and once with batching enabled, and
//! writes the measurements to `BENCH_PR1.json` in the current directory (override the
//! path with `GENEALOG_BENCH_OUT`).
//!
//! Usage: `cargo run --release -p genealog-bench --bin quick_bench`

use std::io::Write;

use genealog::GeneaLog;
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::prelude::*;
use genealog_spe::provenance::ProvenanceSystem;

/// Tuples injected per measured run.
const TUPLES: usize = 400_000;
/// Batch size of the batched configuration.
const BATCH: usize = 128;
/// Repetitions per configuration; the best run is reported.
const REPS: usize = 3;

#[derive(Debug, Clone)]
struct Measurement {
    system: &'static str,
    batch_size: usize,
    throughput_tps: f64,
    per_tuple_ns: f64,
}

fn pipeline_once<P: ProvenanceSystem>(provenance: P, batch_size: usize) -> Measurement {
    let label = provenance.label();
    let mut q = Query::with_config(
        provenance,
        QueryConfig::default().with_batch_size(batch_size),
    );
    let src = q.source_with(
        "numbers",
        VecSource::with_period((0..TUPLES as i64).collect(), 1),
        SourceConfig {
            // Watermarks flush batches; spacing them out keeps the pipeline
            // throughput-bound rather than flush-bound.
            watermark_every: 1_024,
            ..SourceConfig::default()
        },
    );
    let kept = q.filter("keep-odd", src, |v| v % 2 == 1);
    let mapped = q.map_one("affine", kept, |v| v.wrapping_mul(3) + 1);
    let stats = q.sink("count", mapped, |_| {});
    let report = q.deploy().expect("deploy").wait().expect("run");
    assert_eq!(report.source_tuples(), TUPLES as u64);
    assert_eq!(stats.tuple_count(), TUPLES as u64 / 2);
    let wall = report.wall_time().as_secs_f64();
    Measurement {
        system: label,
        batch_size,
        throughput_tps: TUPLES as f64 / wall,
        per_tuple_ns: wall * 1e9 / TUPLES as f64,
    }
}

fn best_of<P: ProvenanceSystem + Clone>(provenance: &P, batch_size: usize) -> Measurement {
    (0..REPS)
        .map(|_| pipeline_once(provenance.clone(), batch_size))
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("at least one repetition")
}

fn render_json(measurements: &[Measurement], speedup_np: f64, speedup_gl: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 1,\n");
    out.push_str("  \"benchmark\": \"quick_bench\",\n");
    out.push_str(
        "  \"pipeline\": \"source -> filter(odd) -> map(3x+1) -> sink, watermark every 1024\",\n",
    );
    out.push_str(&format!("  \"tuples_per_run\": {TUPLES},\n"));
    out.push_str(&format!("  \"repetitions\": {REPS},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"batch_size\": {}, \"throughput_tps\": {:.0}, \"per_tuple_ns\": {:.1}}}{}\n",
            m.system,
            m.batch_size,
            m.throughput_tps,
            m.per_tuple_ns,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"np_batched_vs_unbatched_speedup\": {speedup_np:.2},\n"
    ));
    out.push_str(&format!(
        "  \"gl_batched_vs_unbatched_speedup\": {speedup_gl:.2}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let np_unbatched = best_of(&NoProvenance, 1);
    let np_batched = best_of(&NoProvenance, BATCH);
    let gl = GeneaLog::new();
    let gl_unbatched = best_of(&gl, 1);
    let gl_batched = best_of(&gl, BATCH);

    let speedup_np = np_batched.throughput_tps / np_unbatched.throughput_tps;
    let speedup_gl = gl_batched.throughput_tps / gl_unbatched.throughput_tps;
    let measurements = [np_unbatched, np_batched, gl_unbatched, gl_batched];

    for m in &measurements {
        println!(
            "{:>2} batch={:<4} {:>12.0} tuples/s  {:>8.1} ns/tuple",
            m.system, m.batch_size, m.throughput_tps, m.per_tuple_ns
        );
    }
    println!("NP batched-vs-unbatched speedup: {speedup_np:.2}x");
    println!("GL batched-vs-unbatched speedup: {speedup_gl:.2}x");

    let json = render_json(&measurements, speedup_np, speedup_gl);
    let path = std::env::var("GENEALOG_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR1.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create benchmark output file");
    file.write_all(json.as_bytes())
        .expect("write benchmark output");
    println!("wrote {path}");
}
