//! Figure 13 — inter-process provenance overhead.
//!
//! Deploys every evaluation query across three SPE instances connected by a simulated
//! 100 Mbps link (two processing instances plus one provenance instance, as in
//! Figures 7/9C/10C/11C) under the NP / GL / BL configurations and reports throughput,
//! latency, memory, the bytes shipped over the network and the amount of provenance
//! captured at the provenance instance.
//!
//! Run with `cargo bench -p genealog-bench --bench fig13_inter`.

use genealog_bench::{q4_relay_stage1, q4_relay_stage2, BenchWorkloads, Q4Relay};
use genealog_distributed::{
    deploy_distributed_baseline, deploy_distributed_genealog, deploy_distributed_noprov,
    DistributedOutcome, NetworkConfig,
};
use genealog_metrics::report::{FigureTable, MetricCell, RunMeasurement};
use genealog_metrics::TrackingAllocator;
use genealog_spe::operator::source::SourceConfig;
use genealog_spe::SpeError;
use genealog_workloads::linear_road::LinearRoadGenerator;
use genealog_workloads::queries::{
    q1_provenance_window, q1_stage1, q1_stage2, q2_provenance_window, q2_stage2,
    q3_provenance_window, q3_stage1, q3_stage2, q4_provenance_window,
};
use genealog_workloads::smart_grid::SmartGridGenerator;
use genealog_workloads::types::{
    AccidentAlert, AnomalyAlert, BlackoutAlert, DailyConsumption, MeterReading, PositionReport,
    StoppedCarCount,
};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

struct Measured {
    throughput: f64,
    latency_ms: f64,
    avg_memory_mb: f64,
    max_memory_mb: f64,
    sink_tuples: f64,
    provenance_records: usize,
    network_bytes: u64,
    provenance_link_bytes: u64,
}

fn measure<D, S>(run: impl FnOnce() -> Result<DistributedOutcome<D, S>, SpeError>) -> Measured
where
    D: genealog_spe::tuple::TupleData,
    S: genealog_spe::tuple::TupleData,
{
    ALLOC.reset_peak();
    let before = ALLOC.live_bytes();
    let start = std::time::Instant::now();
    let outcome = run().expect("distributed run");
    let elapsed = start.elapsed().as_secs_f64();
    let after_peak = ALLOC.peak_bytes();
    Measured {
        throughput: outcome.source_tuples() as f64 / elapsed.max(1e-9),
        latency_ms: outcome.sink_stats.mean_latency_ms(),
        avg_memory_mb: (before + after_peak) as f64 / 2.0 / (1024.0 * 1024.0),
        max_memory_mb: after_peak as f64 / (1024.0 * 1024.0),
        sink_tuples: outcome.alerts.len() as f64,
        provenance_records: outcome.provenance.len(),
        network_bytes: outcome.total_network_bytes(),
        provenance_link_bytes: outcome.provenance_link_bytes,
    }
}

fn push_row(table: &mut FigureTable, query: &str, cfg: &str, m: Measured) {
    println!(
        "{query} {cfg}: {:>10.0} t/s  latency {:>8.2} ms  alerts {:>5}  provenance records {:>5}  network {:>10} B (to provenance node: {} B)",
        m.throughput, m.latency_ms, m.sink_tuples, m.provenance_records, m.network_bytes, m.provenance_link_bytes
    );
    let mut row = RunMeasurement::new(query, cfg);
    row.throughput = MetricCell::from_samples(&[m.throughput]);
    row.latency_ms = MetricCell::from_samples(&[m.latency_ms]);
    row.avg_memory_mb = MetricCell::from_samples(&[m.avg_memory_mb]);
    row.max_memory_mb = MetricCell::from_samples(&[m.max_memory_mb]);
    row.sink_tuples = m.sink_tuples;
    row.network_bytes = m.network_bytes as f64;
    table.push(row);
}

fn main() {
    let workloads = BenchWorkloads::default();
    let network = NetworkConfig::default();
    let source_config = SourceConfig::default();
    println!("workloads: {workloads:?}\nnetwork: {network:?} (the evaluation's 100 Mbps switch)\n");
    let mut table = FigureTable::new("Figure 13 — inter-process provenance overhead");

    // ---------------- Q1 ----------------
    let lr = workloads.linear_road;
    push_row(
        &mut table,
        "Q1",
        "NP",
        measure(|| {
            deploy_distributed_noprov::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
                "q1-np",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q1_stage2,
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q1",
        "GL",
        measure(|| {
            deploy_distributed_genealog::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
                "q1-gl",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q1_stage2,
                q1_provenance_window(),
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q1",
        "BL",
        measure(|| {
            deploy_distributed_baseline::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
                "q1-bl",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q1_stage2,
                network,
            )
        }),
    );

    // ---------------- Q2 ----------------
    push_row(
        &mut table,
        "Q2",
        "NP",
        measure(|| {
            deploy_distributed_noprov::<_, StoppedCarCount, AccidentAlert, PositionReport, _, _>(
                "q2-np",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q2_stage2,
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q2",
        "GL",
        measure(|| {
            deploy_distributed_genealog::<_, StoppedCarCount, AccidentAlert, PositionReport, _, _>(
                "q2-gl",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q2_stage2,
                q2_provenance_window(),
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q2",
        "BL",
        measure(|| {
            deploy_distributed_baseline::<_, StoppedCarCount, AccidentAlert, PositionReport, _, _>(
                "q2-bl",
                LinearRoadGenerator::new(lr),
                source_config,
                q1_stage1,
                q2_stage2,
                network,
            )
        }),
    );

    // ---------------- Q3 ----------------
    let sg = workloads.smart_grid;
    push_row(
        &mut table,
        "Q3",
        "NP",
        measure(|| {
            deploy_distributed_noprov::<_, DailyConsumption, BlackoutAlert, MeterReading, _, _>(
                "q3-np",
                SmartGridGenerator::new(sg),
                source_config,
                q3_stage1,
                q3_stage2,
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q3",
        "GL",
        measure(|| {
            deploy_distributed_genealog::<_, DailyConsumption, BlackoutAlert, MeterReading, _, _>(
                "q3-gl",
                SmartGridGenerator::new(sg),
                source_config,
                q3_stage1,
                q3_stage2,
                q3_provenance_window(),
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q3",
        "BL",
        measure(|| {
            deploy_distributed_baseline::<_, DailyConsumption, BlackoutAlert, MeterReading, _, _>(
                "q3-bl",
                SmartGridGenerator::new(sg),
                source_config,
                q3_stage1,
                q3_stage2,
                network,
            )
        }),
    );

    // ---------------- Q4 ----------------
    push_row(
        &mut table,
        "Q4",
        "NP",
        measure(|| {
            deploy_distributed_noprov::<_, Q4Relay, AnomalyAlert, MeterReading, _, _>(
                "q4-np",
                SmartGridGenerator::new(sg),
                source_config,
                q4_relay_stage1,
                q4_relay_stage2,
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q4",
        "GL",
        measure(|| {
            deploy_distributed_genealog::<_, Q4Relay, AnomalyAlert, MeterReading, _, _>(
                "q4-gl",
                SmartGridGenerator::new(sg),
                source_config,
                q4_relay_stage1,
                q4_relay_stage2,
                q4_provenance_window(),
                network,
            )
        }),
    );
    push_row(
        &mut table,
        "Q4",
        "BL",
        measure(|| {
            deploy_distributed_baseline::<_, Q4Relay, AnomalyAlert, MeterReading, _, _>(
                "q4-bl",
                SmartGridGenerator::new(sg),
                source_config,
                q4_relay_stage1,
                q4_relay_stage2,
                network,
            )
        }),
    );

    println!("\n{}", table.render());
    println!("--- CSV ---\n{}", table.to_csv());
}
