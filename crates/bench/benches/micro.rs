//! Criterion micro-benchmarks / ablations backing the figure-level results:
//!
//! * `traversal` — cost of the Listing-1 traversal versus contribution-graph size
//!   (explains why Q3, with ≈192 sources per alert, has the highest traversal time).
//! * `instrumentation` — per-operator cost of creating GeneaLog metadata versus the
//!   variable-length baseline annotations (challenge C1).
//! * `baseline_growth` — how the baseline's annotation size grows with the window size
//!   while GeneaLog's metadata stays constant.
//! * `wire` — wire-codec throughput (sanity check that the simulated network, not the
//!   codec, dominates the inter-process numbers).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use genealog::{erase, find_provenance, GeneaLog, GlMeta};
use genealog_baseline::{AriadneBaseline, BlMeta};
use genealog_distributed::wire::{WireDecode, WireEncode};
use genealog_spe::operator::source::{SourceConfig, VecSource};
use genealog_spe::provenance::{NoProvenance, ProvenanceSystem, SourceContext};
use genealog_spe::query::{Query, QueryConfig};
use genealog_spe::tuple::GTuple;
use genealog_spe::Timestamp;
use genealog_workloads::types::PositionReport;

type GlTuple = Arc<GTuple<PositionReport, GlMeta>>;
type BlTuple = Arc<GTuple<PositionReport, BlMeta>>;

fn gl_source(gl: &GeneaLog, seq: u64) -> GlTuple {
    let report = PositionReport {
        car_id: (seq % 100) as u32,
        speed: 0,
        pos: 7,
    };
    let ctx = SourceContext {
        source_id: 0,
        seq,
        ts: Timestamp::from_secs(seq),
    };
    let meta = gl.source_meta(&ctx, &report);
    Arc::new(GTuple::new(Timestamp::from_secs(seq), 0, report, meta))
}

fn bl_source(bl: &AriadneBaseline, seq: u64) -> BlTuple {
    let report = PositionReport {
        car_id: (seq % 100) as u32,
        speed: 0,
        pos: 7,
    };
    let ctx = SourceContext {
        source_id: 0,
        seq,
        ts: Timestamp::from_secs(seq),
    };
    let meta = bl.source_meta(&ctx, &report);
    Arc::new(GTuple::new(Timestamp::from_secs(seq), 0, report, meta))
}

/// Builds an aggregate output over a window of `size` source tuples.
fn gl_aggregate_of(gl: &GeneaLog, size: usize) -> GlTuple {
    let window: Vec<GlTuple> = (0..size as u64).map(|i| gl_source(gl, i)).collect();
    let meta = gl.aggregate_meta(&window);
    Arc::new(GTuple::new(
        Timestamp::from_secs(0),
        0,
        window[0].data,
        meta,
    ))
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    group.sample_size(30);
    for &size in &[4usize, 8, 24, 192, 1024] {
        let gl = GeneaLog::new();
        let root = erase(&gl_aggregate_of(&gl, size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let provenance = find_provenance(&root);
                assert_eq!(provenance.len(), size);
                provenance.len()
            })
        });
    }
    group.finish();
}

fn bench_instrumentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumentation");
    group.sample_size(30);

    let gl = GeneaLog::new();
    let gl_input = gl_source(&gl, 0);
    group.bench_function("gl_map_meta", |b| b.iter(|| gl.map_meta(&gl_input)));
    let gl_window: Vec<GlTuple> = (0..24).map(|i| gl_source(&gl, i)).collect();
    group.bench_function("gl_aggregate_meta_24", |b| {
        b.iter(|| gl.aggregate_meta(&gl_window))
    });

    let bl = AriadneBaseline::new();
    let bl_input = bl_source(&bl, 0);
    group.bench_function("bl_map_meta", |b| b.iter(|| bl.map_meta(&bl_input)));
    let bl_window: Vec<BlTuple> = (0..24).map(|i| bl_source(&bl, i)).collect();
    group.bench_function("bl_aggregate_meta_24", |b| {
        b.iter(|| bl.aggregate_meta(&bl_window))
    });
    group.finish();
}

fn bench_baseline_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_growth");
    group.sample_size(20);
    for &window in &[24usize, 192, 1024] {
        let bl = AriadneBaseline::new();
        let tuples: Vec<BlTuple> = (0..window as u64).map(|i| bl_source(&bl, i)).collect();
        group.bench_with_input(
            BenchmarkId::new("bl_annotation", window),
            &window,
            |b, _| {
                b.iter(|| {
                    let meta = bl.aggregate_meta(&tuples);
                    assert_eq!(meta.len(), window);
                    meta.size_bytes()
                })
            },
        );
        let gl = GeneaLog::new();
        let gl_tuples: Vec<GlTuple> = (0..window as u64).map(|i| gl_source(&gl, i)).collect();
        group.bench_with_input(
            BenchmarkId::new("gl_fixed_meta", window),
            &window,
            |b, _| {
                b.iter(|| {
                    let meta = gl.aggregate_meta(&gl_tuples);
                    std::mem::size_of_val(&meta)
                })
            },
        );
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(30);
    let report = PositionReport {
        car_id: 42,
        speed: 13,
        pos: 999,
    };
    group.bench_function("encode_position_report", |b| b.iter(|| report.to_bytes()));
    let bytes = report.to_bytes();
    group.bench_function("decode_position_report", |b| {
        b.iter(|| PositionReport::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

/// Runs the quick-bench micro pipeline once under the given batch size and returns
/// the number of sink tuples (so the work cannot be optimised away).
fn run_np_pipeline(tuples: i64, batch_size: usize) -> u64 {
    let mut q = Query::with_config(
        NoProvenance,
        QueryConfig::default().with_batch_size(batch_size),
    );
    let src = q.source_with(
        "numbers",
        VecSource::with_period((0..tuples).collect(), 1),
        SourceConfig {
            watermark_every: 1_024,
            ..SourceConfig::default()
        },
    );
    let kept = q.filter("keep-odd", src, |v| v % 2 == 1);
    let mapped = q.map_one("affine", kept, |v| v.wrapping_mul(3) + 1);
    let stats = q.sink("count", mapped, |_| {});
    q.deploy().expect("deploy").wait().expect("run");
    stats.tuple_count()
}

/// Batched-vs-unbatched transport comparison on the same NP query: the per-tuple
/// channel cost (lock + wake-up per element) versus the amortised batched cost.
fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    const TUPLES: i64 = 20_000;
    for &batch in &[1usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("np_pipeline", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let delivered = run_np_pipeline(TUPLES, batch);
                    assert_eq!(delivered, TUPLES as u64 / 2);
                    delivered
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_traversal,
    bench_instrumentation,
    bench_baseline_growth,
    bench_wire,
    bench_batching
);
criterion_main!(benches);
