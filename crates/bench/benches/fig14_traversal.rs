//! Figure 14 — contribution-graph traversal time per sink tuple.
//!
//! For every query, measures the time `findProvenance` (Listing 1) takes per sink
//! tuple in the intra-process deployment and, for the inter-process deployment, the
//! per-instance traversal cost (the SU traversal at instance 1 and instance 2, whose
//! graphs are smaller because the contribution graph is split across instances).
//!
//! Run with `cargo bench -p genealog-bench --bench fig14_traversal`.

use std::sync::Arc;
use std::time::Instant;

use genealog::{erase, find_provenance_with_stats, GeneaLog};
use genealog_bench::{run_intra, IntraConfig, QueryId, SystemUnderTest};
use genealog_metrics::recorder::TraversalRecorder;
use genealog_metrics::TrackingAllocator;
use genealog_spe::prelude::*;
use genealog_workloads::linear_road::LinearRoadGenerator;
use genealog_workloads::queries::{q1_stage1, q1_stage2, q3_stage1, q3_stage2};
use genealog_workloads::smart_grid::SmartGridGenerator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

/// Measures the per-instance traversal cost of a staged (inter-process-like) Q1/Q3:
/// the stage-1 unfolder sees the full windows, the stage-2 unfolder sees graphs
/// truncated at the REMOTE boundary — which is why the paper's Figure 14 reports lower
/// per-instance traversal times in the distributed case.
fn staged_traversal<G, D1, D2>(
    name: &str,
    generator: G,
    stage1: impl FnOnce(
        &mut Query<GeneaLog>,
        StreamRef<G::Item, genealog::GlMeta>,
    ) -> StreamRef<D1, genealog::GlMeta>,
    stage2: impl FnOnce(
        &mut Query<GeneaLog>,
        StreamRef<D1, genealog::GlMeta>,
    ) -> StreamRef<D2, genealog::GlMeta>,
) -> (f64, f64)
where
    G: SourceGenerator,
    D1: TupleData,
    D2: TupleData,
{
    let recorder1 = TraversalRecorder::new();
    let recorder2 = TraversalRecorder::new();
    let mut q = Query::new(GeneaLog::new());
    let source = q.source(&format!("{name}-source"), generator);
    let d1 = stage1(&mut q, source);

    // Instance-1 unfolder (timed).
    let rec = Arc::clone(&recorder1);
    let branches = q.multiplex(&format!("{name}-i1-mux"), d1, 2);
    let mut branches = branches.into_iter();
    let forward = branches.next().expect("two branches");
    let unfold = branches.next().expect("two branches");
    let unfolded1 = q.map_with_meta(&format!("{name}-i1-unfold"), unfold, move |t| {
        let start = Instant::now();
        let (_, stats) = find_provenance_with_stats(&erase(t));
        rec.record(start.elapsed(), stats.originating);
        Vec::<u8>::new()
    });
    q.discard(unfolded1);

    let d2 = stage2(&mut q, forward);
    // Instance-2 unfolder (timed). In a true multi-node run the upstream graph is cut
    // at the REMOTE tuples; within one process it reaches the sources, so this is an
    // upper bound on the instance-2 traversal cost.
    let rec = Arc::clone(&recorder2);
    let branches = q.multiplex(&format!("{name}-i2-mux"), d2, 2);
    let mut branches = branches.into_iter();
    let to_sink = branches.next().expect("two branches");
    let unfold = branches.next().expect("two branches");
    let unfolded2 = q.map_with_meta(&format!("{name}-i2-unfold"), unfold, move |t| {
        let start = Instant::now();
        let (_, stats) = find_provenance_with_stats(&erase(t));
        rec.record(start.elapsed(), stats.originating);
        Vec::<u8>::new()
    });
    q.discard(unfolded2);
    let _sink = q.collecting_sink(&format!("{name}-sink"), to_sink);
    q.deploy().expect("deploy").wait().expect("run");

    (recorder1.mean_ms(), recorder2.mean_ms())
}

fn main() {
    let config = IntraConfig::new(Arc::new(|| ALLOC.live_bytes()));
    println!("== Figure 14 — contribution-graph traversal time per sink tuple ==\n");
    println!(
        "{:<4} {:>16} {:>18} {:>14}",
        "qry", "traversals", "mean graph size", "mean time(ms)"
    );
    for query in QueryId::ALL {
        let result = run_intra(query, SystemUnderTest::GeneaLog, &config).expect("run");
        println!(
            "{:<4} {:>16} {:>18.1} {:>14.4}",
            query.label(),
            result.traversal_count,
            result.mean_graph_size,
            result.traversal_mean_ms
        );
    }

    println!("\n-- per-instance traversal cost in staged (inter-process style) deployments --");
    println!(
        "{:<4} {:>22} {:>22}",
        "qry", "instance-1 mean(ms)", "instance-2 mean(ms)"
    );
    let (i1, i2) = staged_traversal(
        "q1",
        LinearRoadGenerator::new(config.workloads.linear_road),
        q1_stage1,
        q1_stage2,
    );
    println!("{:<4} {:>22.4} {:>22.4}", "Q1", i1, i2);
    let (i1, i2) = staged_traversal(
        "q3",
        SmartGridGenerator::new(config.workloads.smart_grid),
        q3_stage1,
        q3_stage2,
    );
    println!("{:<4} {:>22.4} {:>22.4}", "Q3", i1, i2);
}
