//! Figure 12 — intra-process provenance overhead.
//!
//! Runs every evaluation query (Q1–Q4) under the three provenance configurations
//! (NP / GL / BL) inside a single process and reports throughput, latency, average and
//! maximum memory, the number of alerts, the traversal time and the provenance-volume
//! ratio — the quantities of Figure 12 plus the §7 text claims. Absolute numbers
//! differ from the Odroid testbed; the claim under reproduction is the *shape*
//! (GL within a few percent of NP, BL an order of magnitude worse).
//!
//! Run with `cargo bench -p genealog-bench --bench fig12_intra`.
//! `GENEALOG_BENCH_SCALE` scales the workload sizes, `GENEALOG_BENCH_RUNS` the number
//! of repetitions averaged per configuration (default 3).

use std::sync::Arc;

use genealog_bench::{run_intra, IntraConfig, QueryId, SystemUnderTest};
use genealog_metrics::report::{FigureTable, MetricCell, RunMeasurement};
use genealog_metrics::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn runs() -> usize {
    std::env::var("GENEALOG_BENCH_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1)
}

fn main() {
    let config = IntraConfig::new(Arc::new(|| ALLOC.live_bytes()));
    let repetitions = runs();
    let mut table = FigureTable::new("Figure 12 — intra-process provenance overhead");
    println!(
        "workloads: {:?}\nrepetitions per configuration: {repetitions}\n",
        config.workloads
    );

    for query in QueryId::ALL {
        for system in SystemUnderTest::ALL {
            let mut throughput = Vec::new();
            let mut latency = Vec::new();
            let mut avg_mem = Vec::new();
            let mut max_mem = Vec::new();
            let mut traversal = Vec::new();
            let mut sink_tuples = 0.0;
            let mut provenance_bytes = 0.0;
            let mut source_bytes = 0.0;
            for _ in 0..repetitions {
                ALLOC.reset_peak();
                let result = run_intra(query, system, &config).expect("benchmark run");
                throughput.push(result.throughput);
                latency.push(result.mean_latency_ms);
                avg_mem.push(result.avg_memory_mb);
                max_mem.push(result.max_memory_mb);
                traversal.push(result.traversal_mean_ms);
                sink_tuples = result.sink_tuples as f64;
                provenance_bytes = result.provenance_bytes as f64;
                source_bytes = result.source_bytes as f64;
            }
            let mut row = RunMeasurement::new(query.label(), system.label());
            row.throughput = MetricCell::from_samples(&throughput);
            row.latency_ms = MetricCell::from_samples(&latency);
            row.avg_memory_mb = MetricCell::from_samples(&avg_mem);
            row.max_memory_mb = MetricCell::from_samples(&max_mem);
            row.traversal_ms = MetricCell::from_samples(&traversal);
            row.sink_tuples = sink_tuples;
            row.provenance_bytes = provenance_bytes;
            if system == SystemUnderTest::GeneaLog && source_bytes > 0.0 {
                println!(
                    "{} GL provenance volume: {:.4}% of the source data ({:.0} / {:.0} bytes)",
                    query.label(),
                    provenance_bytes / source_bytes * 100.0,
                    provenance_bytes,
                    source_bytes
                );
            }
            table.push(row);
        }
    }

    println!("\n{}", table.render());
    println!("--- CSV ---\n{}", table.to_csv());
}
