//! The analysis passes: channel budgets/deadlock, barrier reachability,
//! provenance safety and resource sanity.
//!
//! Every pass is a pure function from [`PlanFacts`] to diagnostics appended onto a
//! shared [`Diagnostics`]; [`analyze`](crate::analyze) runs all four. Diagnostic
//! codes are stable API — tests and documentation pin them — so a pass may gain
//! new codes but never reuse or renumber existing ones.

use std::collections::HashSet;

use crate::facts::PlanFacts;
use crate::{Diagnostic, Diagnostics};

/// GL001: a producer batch exceeds the per-channel element budget, so the
/// one-batch floor over-allocates the channel.
pub const BATCH_OVER_ALLOCATION: &str = "GL001";
/// GL002: operators form a cycle of bounded channels that can deadlock under
/// back-pressure.
pub const CHANNEL_CYCLE: &str = "GL002";
/// GL011: an aligned fan-in input is unreachable from any barrier-injecting
/// source, so checkpoint alignment stalls there.
pub const BARRIER_STALL: &str = "GL011";
/// GL012: checkpointing is configured but no operator injects (or imports)
/// barriers.
pub const NO_BARRIER_SOURCE: &str = "GL012";
/// GL013: a stateful operator or sink is never reached by epoch barriers, so its
/// state is missing from every checkpoint.
pub const UNCHECKPOINTED_STATE: &str = "GL013";
/// GL014: a multi-process deployment checkpoints into a volatile in-memory
/// store, so a process crash loses exactly the state checkpointing was meant
/// to protect.
pub const VOLATILE_CHECKPOINT_STORE: &str = "GL014";
/// GL021: an opaque custom operator sits on a path to a GL sink; the analyzer
/// cannot verify it maintains the GeneaLog meta chain.
pub const OPAQUE_META_CHAIN: &str = "GL021";
/// GL022: the plan runs with GeneaLog provenance but attaches no collector, so
/// lineage is tracked yet never harvested.
pub const NO_PROVENANCE_COLLECTOR: &str = "GL022";
/// GL031: the plan spawns more operator threads than the host has CPUs.
pub const CPU_OVERSUBSCRIPTION: &str = "GL031";
/// GL032: a `.with(Parallelism::shards(n))` hint is overridden by an explicit
/// `.place(..)` of a different shard count.
pub const PLACEMENT_OVERRIDES_HINT: &str = "GL032";
/// GL033: the lowered plan registers more metric series than the per-plan budget.
pub const METRICS_CARDINALITY: &str = "GL033";
/// GL034: the plan ships tuples across instance boundaries but runs with live
/// metrics disabled, so link-health counters (dropped frames, remote registry
/// deltas) are invisible at the origin.
pub const REMOTE_WITHOUT_METRICS: &str = "GL034";

/// Metric-series budget above which GL033 fires: beyond this, per-edge label
/// cardinality dominates scrape cost and registry memory.
pub const METRICS_SERIES_BUDGET: usize = 512;

/// Operator kinds the engine itself instruments: they forward epoch barriers and
/// maintain the provenance meta chain. Anything else is an opaque custom operator.
const INSTRUMENTED_KINDS: &[&str] = &[
    "source",
    "map",
    "filter",
    "multiplex",
    "union",
    "aggregate",
    "join",
    "sink",
    "partition",
    "sharded-aggregate",
    "sharded-join",
    "shard-merge",
    "fused",
    // Distributed endpoints: barriers and GeneaLog metadata cross the wire as
    // `WireFrame`s, so Send/Receive behave like engine operators.
    "send",
    "receive",
];

/// Fan-ins that *align* their inputs on epoch barriers: a barrier must arrive on
/// every input before it is forwarded, so one barrier-free input stalls the
/// operator (and checkpointing) forever.
const ALIGNED_FAN_INS: &[&str] = &["union", "join", "sharded-join", "shard-merge"];

/// Stateful participants of a checkpoint: their state must be snapshotted for
/// recovery to be provenance-correct.
const CHECKPOINT_PARTICIPANTS: &[&str] = &[
    "aggregate",
    "sharded-aggregate",
    "join",
    "sharded-join",
    "sink",
];

fn is_instrumented(kind: &str) -> bool {
    INSTRUMENTED_KINDS.contains(&kind)
}

/// Kahn's algorithm over the dataflow edges. Returns `(order, leftover)`:
/// `order` is a topological order of the acyclic part, `leftover` the nodes
/// caught in (or strictly downstream of) a cycle.
fn topo_order(facts: &PlanFacts) -> (Vec<usize>, Vec<usize>) {
    let n = facts.nodes.len();
    let mut in_degree = vec![0usize; n];
    for e in &facts.edges {
        if e.to < n {
            in_degree[e.to] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop() {
        order.push(node);
        for e in facts.outgoing(node) {
            if e.to < n {
                in_degree[e.to] -= 1;
                if in_degree[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
    }
    let in_order: HashSet<usize> = order.iter().copied().collect();
    let leftover: Vec<usize> = (0..n).filter(|i| !in_order.contains(i)).collect();
    (order, leftover)
}

/// Extracts one representative cycle from the leftover set by walking successors
/// until a node repeats.
fn find_cycle(facts: &PlanFacts, leftover: &[usize]) -> Vec<usize> {
    let members: HashSet<usize> = leftover.iter().copied().collect();
    let Some(&start) = leftover.first() else {
        return Vec::new();
    };
    let mut path = vec![start];
    let mut seen: HashSet<usize> = [start].into();
    let mut current = start;
    loop {
        let Some(next) = facts
            .outgoing(current)
            .map(|e| e.to)
            .find(|t| members.contains(t))
        else {
            return path; // malformed leftover set; report what we walked
        };
        if let Some(pos) = path.iter().position(|&p| p == next) {
            return path[pos..].to_vec();
        }
        if !seen.insert(next) {
            return path;
        }
        path.push(next);
        current = next;
    }
}

/// Channel-budget / deadlock analysis (GL001, GL002).
///
/// GL001 is the plan-time promotion of the runtime's one-shot
/// `batch-budget-over-allocation` trace: every bounded channel whose producer
/// batch exceeds its element budget is named *before* deploy, per edge. GL002
/// flags cycles of bounded channels — impossible through the typed builder, but
/// expressible through the extension API — where back-pressure can fill every
/// queue in the loop and deadlock the query.
pub fn check_channels(facts: &PlanFacts, diags: &mut Diagnostics) {
    for e in facts.edges.iter().filter(|e| !e.fused) {
        if e.batch_size > e.capacity {
            diags.push(Diagnostic::warning(
                BATCH_OVER_ALLOCATION,
                vec![
                    facts.node_name(e.from).to_string(),
                    facts.node_name(e.to).to_string(),
                ],
                format!(
                    "batch size {} exceeds the channel's element budget of {}; the \
                     one-batch floor over-allocates this edge to {} buffered elements \
                     (lower the batch size or raise channel_capacity)",
                    e.batch_size, e.capacity, e.batch_size
                ),
            ));
        }
    }
    let (_, leftover) = topo_order(facts);
    if !leftover.is_empty() {
        let cycle = find_cycle(facts, &leftover);
        let names: Vec<String> = cycle
            .iter()
            .map(|&id| facts.node_name(id).to_string())
            .collect();
        let rendered = names.join(" -> ");
        diags.push(Diagnostic::error(
            CHANNEL_CYCLE,
            names,
            format!(
                "operators form a bounded-channel cycle ({rendered} -> back); under \
                 back-pressure every queue in the cycle can fill and deadlock the \
                 query — break the cycle or drain one leg through an unbounded sink"
            ),
        ));
    }
}

/// Barrier-reachability analysis (GL011, GL012, GL013). Runs only when
/// checkpointing is configured.
///
/// Epoch barriers originate at Sources (and arrive through Receive endpoints);
/// engine operators forward them, aligned fan-ins forward them only once *every*
/// input delivered one. The pass propagates a carries-barriers bit through the
/// graph and errors on any aligned fan-in input that can never deliver one — the
/// exact shape that stalls checkpointing silently at run time.
pub fn check_barriers(facts: &PlanFacts, diags: &mut Diagnostics) {
    if facts.checkpoint_interval.is_none() {
        return;
    }
    if facts.checkpoint_durable == Some(false) && facts.nodes.iter().any(|n| n.remote) {
        let remote: Vec<String> = facts
            .nodes
            .iter()
            .filter(|n| n.remote)
            .map(|n| n.name.clone())
            .collect();
        let listed = remote.join("`, `");
        diags.push(Diagnostic::warning(
            VOLATILE_CHECKPOINT_STORE,
            remote,
            format!(
                "the plan spans SPE instances (`{listed}`) but checkpoints into a \
                 volatile in-memory store: a worker-process crash loses every \
                 snapshot that recovery would need — back the checkpoint store \
                 with a durable backend (e.g. `genealog_store::DurableBackend`, \
                 or run workers with `spe-node --state-dir`)"
            ),
        ));
    }
    let (order, leftover) = topo_order(facts);
    if !leftover.is_empty() {
        return; // cyclic plans are already rejected by GL002
    }
    let injects = |id: usize| facts.node_kind(id) == "source";
    let imports =
        |id: usize| facts.node_kind(id) == "receive" && facts.incoming(id).next().is_none();
    if !(0..facts.nodes.len()).any(|id| injects(id) || imports(id)) {
        diags.push(Diagnostic::error(
            NO_BARRIER_SOURCE,
            Vec::new(),
            format!(
                "checkpointing is configured (interval {}) but no operator injects or \
                 imports epoch barriers: no Source and no root Receive endpoint \
                 exists, so no checkpoint will ever complete",
                facts.checkpoint_interval.unwrap_or(0)
            ),
        ));
        return;
    }
    // The carries-barriers bit, propagated in topological order: a node carries
    // barriers when it is an instrumented operator and every input delivers them.
    let mut carries = vec![false; facts.nodes.len()];
    for &id in &order {
        carries[id] = if injects(id) || imports(id) {
            true
        } else if !is_instrumented(facts.node_kind(id)) {
            false
        } else {
            let mut inputs = facts.incoming(id).peekable();
            inputs.peek().is_some() && facts.incoming(id).all(|e| carries[e.from])
        };
    }
    let mut stalled: HashSet<usize> = HashSet::new();
    for id in 0..facts.nodes.len() {
        if !ALIGNED_FAN_INS.contains(&facts.node_kind(id)) {
            continue;
        }
        for e in facts.incoming(id) {
            if carries[e.from] {
                continue;
            }
            stalled.insert(id);
            let origin = blockage_origin(facts, &carries, e.from);
            diags.push(Diagnostic::error(
                BARRIER_STALL,
                vec![
                    facts.node_name(id).to_string(),
                    facts.node_name(e.from).to_string(),
                ],
                format!(
                    "aligned fan-in `{}` will stall: its input from `{}` never \
                     delivers epoch barriers (blocked at `{}`), so barrier alignment \
                     — and with it every checkpoint — waits forever",
                    facts.node_name(id),
                    facts.node_name(e.from),
                    facts.node_name(origin),
                ),
            ));
        }
    }
    for (id, &carried) in carries.iter().enumerate() {
        if carried
            || stalled.contains(&id)
            || !CHECKPOINT_PARTICIPANTS.contains(&facts.node_kind(id))
        {
            continue;
        }
        diags.push(Diagnostic::warning(
            UNCHECKPOINTED_STATE,
            vec![facts.node_name(id).to_string()],
            format!(
                "`{}` ({}) is never reached by epoch barriers; its state will be \
                 missing from every checkpoint and recovery will silently drop it",
                facts.node_name(id),
                facts.node_kind(id)
            ),
        ));
    }
}

/// Walks upstream from a barrier-free node to the first node where the blockage
/// originates: one that does not carry barriers although all of its inputs do
/// (typically an opaque custom operator), or a barrier-free root.
fn blockage_origin(facts: &PlanFacts, carries: &[bool], from: usize) -> usize {
    let mut current = from;
    let mut hops = 0;
    while hops <= facts.nodes.len() {
        let blocked_input = facts
            .incoming(current)
            .map(|e| e.from)
            .find(|&p| !carries[p]);
        match blocked_input {
            Some(parent) => current = parent,
            None => return current,
        }
        hops += 1;
    }
    current
}

/// Provenance-safety analysis (GL021, GL022). Runs only in GL mode.
///
/// GeneaLog's guarantee holds only while every operator on a path to a GL sink
/// maintains the meta chain. Escape-hatch segments (`raw`, `raw_with`,
/// `extend_source`) lower to custom nodes the analyzer cannot see into; when one
/// sits upstream of a sink, lineage through it may silently sever. Separately, a
/// GL plan whose sinks have no collector pays the full metadata cost without ever
/// harvesting a contribution set.
pub fn check_provenance(facts: &PlanFacts, diags: &mut Diagnostics) {
    if facts.provenance != "GL" {
        return;
    }
    let sinks: Vec<usize> = (0..facts.nodes.len())
        .filter(|&id| facts.node_kind(id) == "sink")
        .collect();
    if sinks.is_empty() {
        return;
    }
    // Reverse reachability: which nodes have a path to some sink?
    let mut reaches = vec![false; facts.nodes.len()];
    let mut stack = sinks.clone();
    for &s in &sinks {
        reaches[s] = true;
    }
    while let Some(node) = stack.pop() {
        for e in facts.incoming(node) {
            if e.from < reaches.len() && !reaches[e.from] {
                reaches[e.from] = true;
                stack.push(e.from);
            }
        }
    }
    for (id, &reachable) in reaches.iter().enumerate() {
        let kind = facts.node_kind(id);
        if is_instrumented(kind) || !reachable {
            continue;
        }
        diags.push(Diagnostic::warning(
            OPAQUE_META_CHAIN,
            vec![facts.node_name(id).to_string()],
            format!(
                "custom operator `{}` (kind `{}`) sits on a path to a GL sink; the \
                 analyzer cannot verify it maintains the GeneaLog meta chain, so \
                 lineage through it may be severed — route provenance-relevant \
                 streams through engine operators or an instrumented extension",
                facts.node_name(id),
                kind
            ),
        ));
    }
    if facts.provenance_collectors == 0 {
        diags.push(Diagnostic::warning(
            NO_PROVENANCE_COLLECTOR,
            vec![facts.node_name(sinks[0]).to_string()],
            "the plan runs with GeneaLog provenance but attaches no provenance \
             collector: lineage metadata is built and retained on every tuple yet \
             never harvested — attach a provenance sink (e.g. \
             `logical_provenance_sink`) or run with NoProvenance"
                .to_string(),
        ));
    }
}

/// Resource-sanity analysis (GL031, GL032, GL033, GL034).
pub fn check_resources(facts: &PlanFacts, diags: &mut Diagnostics) {
    if facts.threads > facts.host_cpus {
        diags.push(Diagnostic::warning(
            CPU_OVERSUBSCRIPTION,
            Vec::new(),
            format!(
                "the plan spawns {} operator threads on a host with {} CPU(s); \
                 heavy oversubscription adds context-switch latency on every hop — \
                 keep fusion on, reduce shard counts, or place shards remotely",
                facts.threads, facts.host_cpus
            ),
        ));
    }
    if let Some(logical) = &facts.logical {
        for node in &logical.nodes {
            if let (Some(requested), Some(placed)) = (node.requested_shards, node.placement_total) {
                if requested != placed {
                    diags.push(Diagnostic::warning(
                        PLACEMENT_OVERRIDES_HINT,
                        vec![node.name.clone()],
                        format!(
                            "`.with(Parallelism::shards({requested}))` on `{}` is \
                             overridden by an explicit `.place(..)` of {placed} \
                             shard(s); the plan runs with {placed} — drop one of the \
                             two annotations",
                            node.name
                        ),
                    ));
                }
            }
        }
    }
    if !facts.metrics {
        let remote: Vec<String> = facts
            .nodes
            .iter()
            .filter(|n| n.remote)
            .map(|n| n.name.clone())
            .collect();
        if !remote.is_empty() {
            let listed = remote.join("`, `");
            diags.push(Diagnostic::warning(
                REMOTE_WITHOUT_METRICS,
                remote,
                format!(
                    "the plan crosses instance boundaries at `{listed}` but runs \
                     with `with_metrics(false)`: link drop counters and \
                     remote-instance registry deltas are silently discarded — \
                     enable live metrics or accept blind links"
                ),
            ));
        }
    }
    if facts.metrics {
        let channel_edges = facts.edges.iter().filter(|e| !e.fused).count();
        let logical_operators: HashSet<&str> = facts
            .nodes
            .iter()
            .map(|n| n.group.as_deref().unwrap_or(n.name.as_str()))
            .collect();
        // Two series per channel (stall counter + depth gauge) and two per
        // logical operator (tuples in/out); constant-cardinality series ignored.
        let series = 2 * channel_edges + 2 * logical_operators.len();
        if series > METRICS_SERIES_BUDGET {
            diags.push(Diagnostic::warning(
                METRICS_CARDINALITY,
                Vec::new(),
                format!(
                    "the lowered plan registers ~{series} metric series \
                     ({channel_edges} channels, {} logical operators), above the \
                     {METRICS_SERIES_BUDGET}-series budget; per-edge label \
                     cardinality dominates scrape cost — reduce fan-out or disable \
                     live metrics with `with_metrics(false)`",
                    logical_operators.len()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{EdgeFacts, LogicalFacts, LogicalNodeFacts, NodeFacts};

    fn node(name: &str, kind: &str) -> NodeFacts {
        NodeFacts {
            name: name.into(),
            kind: kind.into(),
            group: None,
            instances: 1,
            remote: false,
        }
    }

    fn edge(from: usize, to: usize) -> EdgeFacts {
        EdgeFacts {
            from,
            to,
            capacity: 1024,
            batch_size: 32,
            fused: false,
        }
    }

    fn base(nodes: Vec<NodeFacts>, edges: Vec<EdgeFacts>) -> PlanFacts {
        PlanFacts {
            provenance: "NP".into(),
            channel_capacity: 1024,
            fusion: true,
            checkpoint_interval: None,
            checkpoint_durable: None,
            metrics: true,
            host_cpus: 1024,
            threads: nodes.len(),
            provenance_collectors: 0,
            nodes,
            edges,
            logical: None,
        }
    }

    fn run(facts: &PlanFacts) -> Diagnostics {
        crate::analyze(facts)
    }

    #[test]
    fn clean_linear_plan_is_quiet() {
        let facts = base(
            vec![
                node("src", "source"),
                node("flt", "filter"),
                node("out", "sink"),
            ],
            vec![edge(0, 1), edge(1, 2)],
        );
        assert!(run(&facts).is_empty());
    }

    #[test]
    fn gl001_fires_per_over_allocated_edge() {
        let mut facts = base(
            vec![node("src", "source"), node("out", "sink")],
            vec![edge(0, 1)],
        );
        facts.edges[0].capacity = 16;
        facts.edges[0].batch_size = 64;
        let report = run(&facts);
        assert!(report.has_code(BATCH_OVER_ALLOCATION));
        let d = report.with_code(BATCH_OVER_ALLOCATION).next().unwrap();
        assert_eq!(d.path, vec!["src".to_string(), "out".to_string()]);
        assert!(d.message.contains("64") && d.message.contains("16"));
        // Fused edges have no channel to over-allocate.
        facts.edges[0].fused = true;
        facts.edges[0].capacity = 0;
        facts.edges[0].batch_size = 0;
        assert!(!run(&facts).has_code(BATCH_OVER_ALLOCATION));
    }

    #[test]
    fn gl002_names_the_cycle() {
        let facts = base(
            vec![
                node("src", "source"),
                node("a", "custom-loop"),
                node("b", "custom-loop"),
                node("out", "sink"),
            ],
            vec![edge(0, 1), edge(1, 2), edge(2, 1), edge(2, 3)],
        );
        let report = run(&facts);
        assert!(report.has_errors());
        let d = report.with_code(CHANNEL_CYCLE).next().unwrap();
        assert!(d.path.contains(&"a".to_string()) && d.path.contains(&"b".to_string()));
        assert!(d.message.contains("deadlock"));
    }

    #[test]
    fn gl011_names_the_stalled_fan_in_and_the_blockage() {
        let mut facts = base(
            vec![
                node("left", "source"),
                node("right", "source"),
                node("opaque", "mystery"),
                node("both", "union"),
                node("out", "sink"),
            ],
            vec![edge(0, 3), edge(1, 2), edge(2, 3), edge(3, 4)],
        );
        facts.checkpoint_interval = Some(100);
        let report = run(&facts);
        let d = report.with_code(BARRIER_STALL).next().expect("GL011");
        assert_eq!(d.severity, crate::Severity::Error);
        assert_eq!(d.path[0], "both");
        assert!(d.message.contains("blocked at `opaque`"));
        // Without checkpointing the same plan draws no barrier diagnostics.
        facts.checkpoint_interval = None;
        assert!(!run(&facts).has_code(BARRIER_STALL));
    }

    #[test]
    fn gl012_fires_without_any_barrier_origin() {
        let mut facts = base(
            vec![node("feed", "replay"), node("out", "sink")],
            vec![edge(0, 1)],
        );
        facts.checkpoint_interval = Some(10);
        let report = run(&facts);
        assert!(report.has_code(NO_BARRIER_SOURCE));
        // A root Receive endpoint imports barriers from the remote instance.
        facts.nodes[0].kind = "receive".into();
        let report = run(&facts);
        assert!(!report.has_code(NO_BARRIER_SOURCE));
    }

    #[test]
    fn gl013_warns_on_uncheckpointed_state() {
        let mut facts = base(
            vec![
                node("feed", "receive"),
                node("gap", "mystery"),
                node("agg", "aggregate"),
                node("out", "sink"),
            ],
            vec![edge(0, 1), edge(1, 2), edge(2, 3)],
        );
        facts.checkpoint_interval = Some(10);
        let report = run(&facts);
        let codes: Vec<&str> = report.iter().map(|d| d.code).collect();
        assert!(codes.contains(&UNCHECKPOINTED_STATE));
        let flagged: Vec<&str> = report
            .with_code(UNCHECKPOINTED_STATE)
            .map(|d| d.path[0].as_str())
            .collect();
        assert_eq!(flagged, vec!["agg", "out"]);
    }

    #[test]
    fn gl014_flags_volatile_stores_only_across_instances() {
        let mut send = node("sum.send", "send");
        send.remote = true;
        let mut facts = base(
            vec![node("src", "source"), send, node("out", "sink")],
            vec![edge(0, 1), edge(1, 2)],
        );
        facts.checkpoint_interval = Some(10);
        facts.checkpoint_durable = Some(false);
        let report = run(&facts);
        let d = report
            .with_code(VOLATILE_CHECKPOINT_STORE)
            .next()
            .expect("GL014");
        assert_eq!(d.severity, crate::Severity::Warning);
        assert_eq!(d.path, vec!["sum.send".to_string()]);
        assert!(d.message.contains("--state-dir"));
        // A durable backend silences it; so does a purely local plan.
        facts.checkpoint_durable = Some(true);
        assert!(!run(&facts).has_code(VOLATILE_CHECKPOINT_STORE));
        facts.checkpoint_durable = Some(false);
        facts.nodes[1].remote = false;
        assert!(!run(&facts).has_code(VOLATILE_CHECKPOINT_STORE));
        // And without checkpointing there is nothing to lose.
        facts.nodes[1].remote = true;
        facts.checkpoint_interval = None;
        assert!(!run(&facts).has_code(VOLATILE_CHECKPOINT_STORE));
    }

    #[test]
    fn gl021_and_gl022_fire_only_in_gl_mode() {
        let mut facts = base(
            vec![
                node("src", "source"),
                node("opaque", "mystery"),
                node("out", "sink"),
            ],
            vec![edge(0, 1), edge(1, 2)],
        );
        assert!(!run(&facts).has_code(OPAQUE_META_CHAIN));
        facts.provenance = "GL".into();
        let report = run(&facts);
        assert!(report.has_code(OPAQUE_META_CHAIN));
        assert!(report.has_code(NO_PROVENANCE_COLLECTOR));
        // A collector silences GL022; the opaque node still warns.
        facts.provenance_collectors = 1;
        let report = run(&facts);
        assert!(report.has_code(OPAQUE_META_CHAIN));
        assert!(!report.has_code(NO_PROVENANCE_COLLECTOR));
    }

    #[test]
    fn gl021_ignores_opaque_nodes_off_the_sink_path() {
        let mut facts = base(
            vec![
                node("src", "source"),
                node("mux", "multiplex"),
                node("opaque", "mystery"),
                node("out", "sink"),
            ],
            // The opaque branch dead-ends; only the clean branch reaches the sink.
            vec![edge(0, 1), edge(1, 2), edge(1, 3)],
        );
        facts.provenance = "GL".into();
        facts.provenance_collectors = 1;
        assert!(!run(&facts).has_code(OPAQUE_META_CHAIN));
    }

    #[test]
    fn gl031_uses_thread_and_cpu_counts() {
        let mut facts = base(
            vec![node("src", "source"), node("out", "sink")],
            vec![edge(0, 1)],
        );
        facts.threads = 9;
        facts.host_cpus = 4;
        let report = run(&facts);
        let d = report
            .with_code(CPU_OVERSUBSCRIPTION)
            .next()
            .expect("GL031");
        assert!(d.message.contains('9') && d.message.contains('4'));
        facts.threads = 4;
        assert!(!run(&facts).has_code(CPU_OVERSUBSCRIPTION));
    }

    #[test]
    fn gl032_flags_contradicting_annotations() {
        let mut facts = base(
            vec![node("src", "source"), node("out", "sink")],
            vec![edge(0, 1)],
        );
        facts.logical = Some(LogicalFacts {
            nodes: vec![LogicalNodeFacts {
                name: "sum".into(),
                label: "aggregate".into(),
                requested_shards: Some(4),
                placement_total: Some(2),
                placement_remote: 0,
            }],
        });
        let report = run(&facts);
        let d = report
            .with_code(PLACEMENT_OVERRIDES_HINT)
            .next()
            .expect("GL032");
        assert_eq!(d.path, vec!["sum".to_string()]);
        assert!(d.message.contains('4') && d.message.contains('2'));
        // Agreement between the two annotations is fine.
        facts.logical.as_mut().unwrap().nodes[0].placement_total = Some(4);
        assert!(!run(&facts).has_code(PLACEMENT_OVERRIDES_HINT));
    }

    #[test]
    fn gl033_counts_channels_and_operators() {
        let mut nodes = vec![node("src", "source")];
        let mut edges = Vec::new();
        for i in 0..300 {
            nodes.push(node(&format!("op{i}"), "filter"));
            edges.push(edge(0, i + 1));
        }
        let mut facts = base(nodes, edges);
        let report = run(&facts);
        assert!(report.has_code(METRICS_CARDINALITY));
        facts.metrics = false;
        assert!(!run(&facts).has_code(METRICS_CARDINALITY));
    }

    #[test]
    fn gl034_flags_blind_remote_links() {
        let mut send = node("sum.send", "send");
        send.remote = true;
        let mut facts = base(
            vec![node("src", "source"), send, node("out", "sink")],
            vec![edge(0, 1), edge(1, 2)],
        );
        facts.metrics = false;
        let report = run(&facts);
        let d = report
            .with_code(REMOTE_WITHOUT_METRICS)
            .next()
            .expect("GL034");
        assert_eq!(d.severity, crate::Severity::Warning);
        assert_eq!(d.path, vec!["sum.send".to_string()]);
        assert!(d.message.contains("with_metrics(false)"));
        // With live metrics the same plan is quiet.
        facts.metrics = true;
        assert!(!run(&facts).has_code(REMOTE_WITHOUT_METRICS));
    }

    #[test]
    fn gl034_ignores_purely_local_plans() {
        let mut facts = base(
            vec![node("src", "source"), node("out", "sink")],
            vec![edge(0, 1)],
        );
        facts.metrics = false;
        assert!(!run(&facts).has_code(REMOTE_WITHOUT_METRICS));
    }
}
