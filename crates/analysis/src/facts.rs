//! The plain-data snapshot of a lowered plan that the analyzer runs over.
//!
//! `genealog-spe` builds a [`PlanFacts`] from its lowered `Query` (the
//! `Query::plan_facts()` accessor) and, when the plan came through the logical
//! builder, attaches the pre-lowering [`LogicalFacts`] so annotation-level checks
//! (e.g. a `.with(..)` hint contradicting an explicit `.place(..)`) can see what
//! the user wrote before the planner consumed it. Keeping the snapshot free of
//! engine types is what keeps this crate dependency-free — and what lets the
//! seeded-defect tests of the resource pass perturb a fact (say, `host_cpus`)
//! and re-run [`analyze`](crate::analyze) without rebuilding a plan.

/// Everything the analyzer knows about one lowered plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFacts {
    /// Provenance-system label: `"NP"`, `"GL"` or `"BL"`.
    pub provenance: String,
    /// Configured per-edge channel capacity, in elements.
    pub channel_capacity: usize,
    /// Whether the stateless-chain fusion pass is enabled.
    pub fusion: bool,
    /// Epoch-checkpoint interval in tuples, when checkpointing is configured.
    pub checkpoint_interval: Option<u64>,
    /// Whether the configured checkpoint store writes to a durable backend
    /// (`Some(false)` = volatile in-memory store, `None` = no checkpointing).
    pub checkpoint_durable: Option<bool>,
    /// Whether the plan publishes into a live metrics registry.
    pub metrics: bool,
    /// Number of CPUs of the host the plan will deploy on.
    pub host_cpus: usize,
    /// Number of operator threads the plan spawns (fused chains count once).
    pub threads: usize,
    /// Number of provenance collectors attached to the plan.
    pub provenance_collectors: usize,
    /// The physical operator nodes, indexed by node id.
    pub nodes: Vec<NodeFacts>,
    /// The dataflow edges between nodes.
    pub edges: Vec<EdgeFacts>,
    /// The pre-lowering logical graph, when the plan came through the logical
    /// builder.
    pub logical: Option<LogicalFacts>,
}

impl PlanFacts {
    /// The name of node `id`, or `"?"` when out of range (diagnostics must never
    /// panic on malformed facts).
    pub fn node_name(&self, id: usize) -> &str {
        self.nodes.get(id).map_or("?", |n| n.name.as_str())
    }

    /// The kind label of node `id`, or `""` when out of range.
    pub fn node_kind(&self, id: usize) -> &str {
        self.nodes.get(id).map_or("", |n| n.kind.as_str())
    }

    /// Ids of the edges into `node`.
    pub fn incoming(&self, node: usize) -> impl Iterator<Item = &EdgeFacts> {
        self.edges.iter().filter(move |e| e.to == node)
    }

    /// Ids of the edges out of `node`.
    pub fn outgoing(&self, node: usize) -> impl Iterator<Item = &EdgeFacts> {
        self.edges.iter().filter(move |e| e.from == node)
    }
}

/// One physical operator node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFacts {
    /// Operator name (unique within the plan).
    pub name: String,
    /// Kind label (`"source"`, `"aggregate"`, `"shard-merge"`, a custom kind, ...),
    /// matching `NodeKind::label()` in the engine.
    pub kind: String,
    /// Shard-group name when the node is one instance of a parallel operator.
    pub group: Option<String>,
    /// Shard-group instance count (1 for plain operators).
    pub instances: usize,
    /// True for instance-boundary endpoints (Send/Receive operators): the node
    /// moves bytes to or from another SPE instance rather than processing
    /// tuples locally.
    pub remote: bool,
}

/// One dataflow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFacts {
    /// Producing node id.
    pub from: usize,
    /// Consuming node id.
    pub to: usize,
    /// Per-channel element budget allocated to this edge (shard-fan-out siblings
    /// each carry their 1/N share). 0 for channel-free fused edges.
    pub capacity: usize,
    /// Batch size of the producing output slot (0 for fused edges).
    pub batch_size: usize,
    /// True for the channel-free stage-to-stage edges inside a fused chain: no
    /// bounded queue exists there, so channel checks skip them (they still count
    /// as dataflow edges for reachability and cycles).
    pub fused: bool,
}

/// The pre-lowering logical graph (builder annotations included).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalFacts {
    /// The declared logical operators, in declaration order.
    pub nodes: Vec<LogicalNodeFacts>,
}

/// One declared logical operator with its annotations as written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalNodeFacts {
    /// Logical operator name.
    pub name: String,
    /// Logical kind label (`"source"`, `"aggregate"`, `"physical"` for escape
    /// hatches, ...).
    pub label: String,
    /// Resolved shard count requested via `.with(Parallelism::shards(n))`.
    pub requested_shards: Option<usize>,
    /// Total shard count of an explicit `.place(..)` annotation.
    pub placement_total: Option<usize>,
    /// How many of those placements are remote.
    pub placement_remote: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_tolerate_out_of_range_ids() {
        let facts = PlanFacts {
            provenance: "NP".into(),
            channel_capacity: 1024,
            fusion: true,
            checkpoint_interval: None,
            checkpoint_durable: None,
            metrics: true,
            host_cpus: 4,
            threads: 2,
            provenance_collectors: 0,
            nodes: vec![NodeFacts {
                name: "src".into(),
                kind: "source".into(),
                group: None,
                instances: 1,
                remote: false,
            }],
            edges: vec![],
            logical: None,
        };
        assert_eq!(facts.node_name(0), "src");
        assert_eq!(facts.node_name(7), "?");
        assert_eq!(facts.node_kind(7), "");
        assert_eq!(facts.incoming(0).count(), 0);
    }
}
