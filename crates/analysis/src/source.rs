//! Textual source checks for the `spe-lint` binary.
//!
//! Two rules, both cheap line scans so the lint stays dependency-free:
//!
//! - **no-direct-print** — engine crates must not write to the standard streams
//!   directly; runtime events go through the `Tracer` ring buffer (queryable,
//!   bounded, test-observable) instead of interleaving with benchmark output.
//!   `crates/bench` (the `quick_bench` harness, whose job *is* terminal output)
//!   is exempt, and a line carrying a `spe-lint: allow` comment is skipped.
//! - **metric-naming** — every metric registered on a `MetricsRegistry` must
//!   use the `genealog_*` prefix so dashboards can scope a scrape to this
//!   engine. `crates/metrics` itself (which defines the registry and exercises
//!   it with throwaway names) is exempt.
//!
//! The needles are assembled at run time (`["print", "ln!("].concat()` and
//! friends) so the lint does not flag its own implementation when `spe-lint`
//! walks this crate.

/// Rule id for the direct standard-stream printing ban.
pub const RULE_NO_DIRECT_PRINT: &str = "no-direct-print";
/// Rule id for the `genealog_*` metric-naming convention.
pub const RULE_METRIC_NAMING: &str = "metric-naming";

/// Inline escape hatch: a line containing this comment is skipped by all rules.
pub const ALLOW_MARKER: &str = "spe-lint: allow";

/// One source-lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceViolation {
    /// Path of the offending file, as passed to [`check_file`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id ([`RULE_NO_DIRECT_PRINT`] or [`RULE_METRIC_NAMING`]).
    pub rule: &'static str,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl SourceViolation {
    /// Renders the violation as `file:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs both source rules over one file's contents. `path` is used for
/// reporting and for the per-crate exemptions, so pass it workspace-relative.
pub fn check_file(path: &str, contents: &str) -> Vec<SourceViolation> {
    let mut violations = Vec::new();
    // Assembled at run time so the lint does not flag its own needles; note
    // that the e-prefixed macro ends with the same token, so one needle finds
    // both and the preceding character classifies which.
    let print_needle: String = ["print", "ln!("].concat();
    let metric_needles: Vec<(String, &'static str)> =
        ["counter", "counter_fn", "gauge", "gauge_fn", "histogram"]
            .iter()
            .map(|m| ([".", m, "("].concat(), *m))
            .collect();
    let print_exempt = path.contains("crates/bench");
    let metric_exempt = path.contains("crates/metrics");

    let lines: Vec<&str> = contents.lines().collect();
    let mut in_block_comment = false;
    for (idx, &raw_line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        if in_block_comment {
            match line.find("*/") {
                Some(end) => {
                    in_block_comment = false;
                    line = &line[end + 2..];
                }
                None => continue,
            }
        }
        // Strip a line comment tail (also covers whole-line `//` and `///`).
        let mut code = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        if let Some(start) = code.find("/*") {
            if !code[start..].contains("*/") {
                in_block_comment = true;
                code = &code[..start];
            }
        }
        if raw_line.contains(ALLOW_MARKER) {
            continue;
        }

        if !print_exempt {
            if let Some(pos) = code.find(print_needle.as_str()) {
                let stream = if pos > 0 && code.as_bytes()[pos - 1] == b'e' {
                    "stderr"
                } else {
                    "stdout"
                };
                let macro_name = if stream == "stderr" {
                    ["e", &print_needle[..print_needle.len() - 1]].concat()
                } else {
                    print_needle[..print_needle.len() - 1].to_string()
                };
                violations.push(SourceViolation {
                    file: path.to_string(),
                    line: line_no,
                    rule: RULE_NO_DIRECT_PRINT,
                    message: format!(
                        "`{macro_name}` writes to {stream} directly; engine crates \
                         report through `Tracer::global().emit(..)` (ring-buffered, \
                         queryable) — only the quick_bench harness prints"
                    ),
                });
            }
        }

        if !metric_exempt {
            for (needle, method) in &metric_needles {
                let Some(pos) = code.find(needle.as_str()) else {
                    continue;
                };
                // The metric name is the string literal right after the call —
                // either on the same line or (rustfmt-wrapped) leading the next
                // line. Dynamic names (a variable argument) cannot be checked
                // textually and are skipped.
                let same_line = code[pos + needle.len()..].trim_start();
                let literal = if let Some(rest) = same_line.strip_prefix('"') {
                    Some(rest)
                } else if same_line.is_empty() {
                    lines
                        .get(idx + 1)
                        .and_then(|next| next.trim_start().strip_prefix('"'))
                } else {
                    None
                };
                let Some(rest) = literal else { continue };
                let name: String = rest.chars().take_while(|&c| c != '"').collect();
                if !name.starts_with("genealog_") {
                    violations.push(SourceViolation {
                        file: path.to_string(),
                        line: line_no,
                        rule: RULE_METRIC_NAMING,
                        message: format!(
                            "metric `{name}` registered via `.{method}(..)` does not \
                             use the `genealog_` prefix; scoped scrapes rely on the \
                             naming convention"
                        ),
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    // Offending content is assembled at run time so these literals do not trip
    // the lint when `spe-lint` walks its own crate.
    fn print_stmt(prefix: &str) -> String {
        [prefix, "print", "ln!(\"hi\");"].concat()
    }

    fn metric_stmt(name: &str) -> String {
        ["registry.counter", "(\"", name, "\", &[]);"].concat()
    }

    #[test]
    fn flags_both_print_macros_with_the_right_stream() {
        let content = format!(
            "fn main() {{\n    {}\n    {}\n}}\n",
            print_stmt(""),
            print_stmt("e")
        );
        let v = check_file("crates/spe/src/demo.rs", &content);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, RULE_NO_DIRECT_PRINT);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("stdout"));
        assert!(v[1].message.contains("stderr"));
        assert!(v[1].render().starts_with("crates/spe/src/demo.rs:3:"));
    }

    #[test]
    fn bench_crate_comments_and_allow_marker_are_exempt() {
        let stmt = print_stmt("");
        assert!(check_file("crates/bench/src/lib.rs", &stmt).is_empty());
        let commented = format!("// {stmt}\n/* {stmt}\n{stmt}\n*/ fn f() {{}}\n");
        assert!(check_file("crates/spe/src/demo.rs", &commented).is_empty());
        let allowed = format!("{stmt} // {ALLOW_MARKER}: harness output\n");
        assert!(check_file("crates/spe/src/demo.rs", &allowed).is_empty());
    }

    #[test]
    fn flags_unprefixed_metric_names() {
        let bad = metric_stmt("queue_depth");
        let v = check_file("crates/spe/src/demo.rs", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_METRIC_NAMING);
        assert!(v[0].message.contains("queue_depth"));
        let good = metric_stmt("genealog_queue_depth");
        assert!(check_file("crates/spe/src/demo.rs", &good).is_empty());
        assert!(check_file("crates/metrics/src/lib.rs", &bad).is_empty());
    }

    #[test]
    fn follows_rustfmt_wrapped_metric_calls_to_the_next_line() {
        let wrapped = ["registry.histogram", "(\n    \"depth\",\n    &[],\n);"].concat();
        let v = check_file("crates/spe/src/demo.rs", &wrapped);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`depth`"));
        let wrapped_good = [
            "registry.histogram",
            "(\n    \"genealog_depth\",\n    &[],\n);",
        ]
        .concat();
        assert!(check_file("crates/spe/src/demo.rs", &wrapped_good).is_empty());
        // A dynamic (variable) name cannot be checked textually.
        let dynamic = ["registry.counter", "(name, &[]);"].concat();
        assert!(check_file("crates/spe/src/demo.rs", &dynamic).is_empty());
    }
}
