//! # genealog-analysis — the deploy-time plan analyzer
//!
//! GeneaLog's provenance guarantee (and the engine's liveness) rests on plan-level
//! invariants that the runtime only discovers late: a batch budget that over-allocates
//! a channel is a one-time runtime warning, a fan-in input that never carries epoch
//! barriers stalls checkpointing silently, and a `raw` escape hatch can sever the
//! meta chain with no signal until a provenance query returns garbage. This crate
//! checks those invariants **statically, before deploy**.
//!
//! The crate is deliberately dependency-free: the engine lowers its plan into a
//! plain-data [`PlanFacts`] snapshot (`Query::plan_facts()` in `genealog-spe`) and
//! hands it to [`analyze`], which runs every analysis pass and returns a
//! [`Diagnostics`] report. Each finding carries a stable code (`GL0xx`), a severity,
//! an operator-path location and a human-readable message; the report renders as
//! plain text ([`Diagnostics::render`]) or JSON ([`Diagnostics::to_json`], served by
//! the control plane's `/analyze` endpoint).
//!
//! | Code | Severity | Pass | Meaning |
//! |-------|---------|------|---------|
//! | GL001 | warning | channels | batch size exceeds the per-channel element budget |
//! | GL002 | error | channels | bounded-channel cycle that can deadlock under back-pressure |
//! | GL011 | error | barriers | aligned fan-in input unreachable from a barrier-injecting source |
//! | GL012 | error | barriers | checkpointing configured but no barrier-injecting source exists |
//! | GL013 | warning | barriers | stateful operator or sink never reached by epoch barriers |
//! | GL014 | warning | barriers | multi-process deployment checkpoints into a volatile store |
//! | GL021 | warning | provenance | opaque custom operator on a path to a GL sink |
//! | GL022 | warning | provenance | GL plan with sinks but no provenance collector |
//! | GL031 | warning | resources | operator threads oversubscribe the host CPUs |
//! | GL032 | warning | resources | `.with(..)` shard hint overridden by a different `.place(..)` |
//! | GL033 | warning | resources | metrics label cardinality exceeds the series budget |
//! | GL034 | warning | resources | remote Send/Receive endpoints with live metrics disabled |
//!
//! The [`source`] module is the second half of the `spe-lint` binary: textual
//! checks over the workspace sources (no direct stdout/stderr printing in engine
//! crates, `genealog_*` metric naming).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facts;
pub mod passes;
pub mod source;

pub use facts::{EdgeFacts, LogicalFacts, LogicalNodeFacts, NodeFacts, PlanFacts};

/// How the planner reacts to analyzer findings when lowering a logical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Error-severity findings reject the plan at lowering time; warnings are
    /// emitted on the global tracer.
    Deny,
    /// Every finding is emitted on the global tracer; lowering proceeds. The
    /// default.
    #[default]
    Warn,
    /// The analyzer does not run.
    Off,
}

/// Severity of one diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan deploys and runs, but something is off: a performance cliff, an
    /// unharvested capability, a hint that contradicts another.
    Warning,
    /// The plan can deadlock, stall or lose state at run time.
    Error,
}

impl Severity {
    /// The lowercase label used in rendered reports ("warning" / "error").
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding: a stable code, a severity, the operators involved and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`"GL001"`, ...); documented in the crate docs and
    /// asserted by the seeded-defect tests, so it never changes meaning.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Operator-path location: the operators involved, most significant first
    /// (e.g. `["sum.merge", "opaque"]` for a fan-in stalled by an opaque node).
    pub path: Vec<String>,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, path: Vec<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            path,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, path: Vec<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            path,
            message: message.into(),
        }
    }

    /// Renders the diagnostic as one line: `severity[code] at `a` -> `b`: message`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity.label(), self.code);
        if !self.path.is_empty() {
            let joined = self
                .path
                .iter()
                .map(|p| format!("`{p}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push_str(&format!(" at {joined}"));
        }
        out.push_str(&format!(": {}", self.message));
        out
    }
}

/// The findings of one analyzer run, ordered errors-first with a stable tiebreak.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Appends a finding (callers normally go through [`analyze`]).
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// The findings, errors first.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the analyzer found nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.len() - self.error_count()
    }

    /// True when at least one finding is an error (the [`AnalysisMode::Deny`]
    /// rejection condition).
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True when a finding with `code` is present (seeded-defect tests pin codes
    /// through this).
    pub fn has_code(&self, code: &str) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// The findings carrying `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.items.iter().filter(move |d| d.code == code)
    }

    /// Sorts errors before warnings, then by code and path, keeping the rendered
    /// report deterministic regardless of pass order.
    fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(b.code).then_with(|| a.path.cmp(&b.path)))
        });
    }

    /// Renders the report as human-readable text: one line per finding plus a
    /// summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "plan analysis: {} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Renders the report as a JSON document (the `/analyze` control endpoint
    /// payload).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        );
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let path = d
                .path
                .iter()
                .map(|p| format!("\"{}\"", json_escape(p)))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"path\":[{}],\"message\":\"{}\"}}",
                d.code,
                d.severity.label(),
                path,
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs every analysis pass over `facts` and returns the ordered report.
pub fn analyze(facts: &PlanFacts) -> Diagnostics {
    let mut diags = Diagnostics::default();
    passes::check_channels(facts, &mut diags);
    passes::check_barriers(facts, &mut diags);
    passes::check_provenance(facts, &mut diags);
    passes::check_resources(facts, &mut diags);
    diags.sort();
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostics {
        let mut d = Diagnostics::default();
        d.push(Diagnostic::warning(
            "GL001",
            vec!["a".into(), "b".into()],
            "batch too big",
        ));
        d.push(Diagnostic::error("GL002", vec!["x".into()], "cycle"));
        d.sort();
        d
    }

    #[test]
    fn errors_sort_first_and_counts_agree() {
        let d = sample();
        assert_eq!(d.len(), 2);
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.warning_count(), 1);
        assert!(d.has_errors());
        assert!(d.has_code("GL001"));
        assert!(!d.has_code("GL099"));
        assert_eq!(d.iter().next().unwrap().code, "GL002");
    }

    #[test]
    fn render_names_severity_code_and_path() {
        let d = sample();
        let text = d.render();
        assert!(text.contains("error[GL002] at `x`: cycle"));
        assert!(text.contains("warning[GL001] at `a` -> `b`: batch too big"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut d = Diagnostics::default();
        d.push(Diagnostic::warning(
            "GL001",
            vec!["a\"b".into()],
            "line\nbreak",
        ));
        let json = d.to_json();
        assert!(json.starts_with("{\"errors\":0,\"warnings\":1,"));
        assert!(json.contains("\"path\":[\"a\\\"b\"]"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let d = Diagnostics::default();
        assert!(d.is_empty());
        assert_eq!(
            d.to_json(),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
        assert!(d.render().contains("0 error(s), 0 warning(s)"));
    }
}
