//! Summary statistics: mean, standard deviation, 95 % confidence interval, percentiles.
//!
//! The evaluation averages each metric over five runs and reports the 95 % confidence
//! interval; [`Summary`] implements exactly that aggregation.

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval around the mean.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice of samples (empty slices yield all zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let stddev = variance.sqrt();
        // 95% CI using the normal approximation (the paper averages 5 runs; the exact
        // Student-t factor for n=5 is 2.776, used when the sample count is small).
        let t_factor = match count {
            0 | 1 => 0.0,
            2 => 12.706,
            3 => 4.303,
            4 => 3.182,
            5 => 2.776,
            6 => 2.571,
            7 => 2.447,
            8 => 2.365,
            9 => 2.306,
            10 => 2.262,
            _ => 1.96,
        };
        let ci95 = if count > 1 {
            t_factor * stddev / (count as f64).sqrt()
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            stddev,
            ci95,
            min,
            max,
        }
    }

    /// Relative change of this summary's mean with respect to a baseline mean,
    /// in percent (the `+x%` / `-x%` annotations of Figures 12 and 13).
    pub fn relative_change(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            return 0.0;
        }
        (self.mean - baseline.mean) / baseline.mean * 100.0
    }
}

/// The `p`-th percentile (0–100) of a sample set, by linear interpolation.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let clamped = p.clamp(0.0, 100.0) / 100.0;
    let rank = clamped * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let weight = rank - low as f64;
        sorted[low] * (1.0 - weight) + sorted[high] * weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0, 5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_of_varied_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert!((s.stddev - 1.5811).abs() < 1e-3);
        // t(0.975, 4 dof) = 2.776 -> CI ~ 2.776 * 1.5811 / sqrt(5) = 1.963
        assert!((s.ci95 - 1.963).abs() < 1e-2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let single = Summary::of(&[7.0]);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.ci95, 0.0);
    }

    #[test]
    fn relative_change_matches_figure_annotations() {
        let np = Summary::of(&[50_000.0]);
        let gl = Summary::of(&[48_000.0]);
        assert!((gl.relative_change(&np) + 4.0).abs() < 1e-9);
        let zero = Summary::default();
        assert_eq!(gl.relative_change(&zero), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let samples = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert_eq!(percentile(&samples, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[9.0], 75.0), 9.0);
    }
}
