//! Figure-style report tables.
//!
//! The benchmark harnesses collect one [`RunMeasurement`] per (query, provenance
//! configuration) pair and render them as the rows of Figures 12/13 (throughput,
//! latency, average memory, maximum memory, each annotated with the relative change
//! versus the no-provenance configuration) or export them as CSV.

use std::fmt::Write as _;

use crate::stats::Summary;

/// One measured metric of one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricCell {
    /// Aggregated samples of the metric (over repeated runs).
    pub summary: Summary,
}

impl MetricCell {
    /// Builds a cell from raw per-run samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        MetricCell {
            summary: Summary::of(samples),
        }
    }

    /// The mean value of the metric.
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }
}

/// All metrics measured for one (query, configuration) pair.
#[derive(Debug, Clone, Default)]
pub struct RunMeasurement {
    /// Query label ("Q1".."Q4").
    pub query: String,
    /// Configuration label ("NP", "GL", "BL").
    pub configuration: String,
    /// Source throughput in tuples per second.
    pub throughput: MetricCell,
    /// Mean sink latency in milliseconds.
    pub latency_ms: MetricCell,
    /// Average memory footprint in megabytes.
    pub avg_memory_mb: MetricCell,
    /// Maximum memory footprint in megabytes.
    pub max_memory_mb: MetricCell,
    /// Mean contribution-graph traversal time in milliseconds (GL only, Figure 14).
    pub traversal_ms: MetricCell,
    /// Number of sink tuples produced (sanity column).
    pub sink_tuples: f64,
    /// Bytes of provenance captured (used for the provenance-volume ratio).
    pub provenance_bytes: f64,
    /// Bytes shipped across the simulated network (inter-process experiments only).
    pub network_bytes: f64,
}

impl RunMeasurement {
    /// Creates an empty measurement for the given query/configuration labels.
    pub fn new(query: impl Into<String>, configuration: impl Into<String>) -> Self {
        RunMeasurement {
            query: query.into(),
            configuration: configuration.into(),
            ..Default::default()
        }
    }
}

/// A figure-style table: rows grouped by query, one row per configuration.
#[derive(Debug, Default)]
pub struct FigureTable {
    title: String,
    rows: Vec<RunMeasurement>,
}

impl FigureTable {
    /// Creates an empty table with a title (e.g. "Figure 12 — intra-process").
    pub fn new(title: impl Into<String>) -> Self {
        FigureTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Adds one measured row.
    pub fn push(&mut self, row: RunMeasurement) {
        self.rows.push(row);
    }

    /// The collected rows.
    pub fn rows(&self) -> &[RunMeasurement] {
        &self.rows
    }

    /// The baseline (NP) row of a query, if present.
    fn np_row(&self, query: &str) -> Option<&RunMeasurement> {
        self.rows
            .iter()
            .find(|r| r.query == query && r.configuration == "NP")
    }

    fn change(metric: &MetricCell, baseline: Option<&MetricCell>) -> String {
        match baseline {
            Some(base) if base.mean() != 0.0 => {
                format!("{:+.1}%", metric.summary.relative_change(&base.summary))
            }
            _ => "-".to_string(),
        }
    }

    /// Renders the table as aligned text, one row per (query, configuration), with
    /// the relative-change annotations of Figures 12/13.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(
            out,
            "{:<4} {:<4} {:>14} {:>9} {:>14} {:>9} {:>12} {:>9} {:>12} {:>9} {:>12} {:>10}",
            "qry",
            "cfg",
            "thrpt(t/s)",
            "vs NP",
            "latency(ms)",
            "vs NP",
            "avg mem(MB)",
            "vs NP",
            "max mem(MB)",
            "vs NP",
            "sink tuples",
            "trav(ms)"
        );
        for row in &self.rows {
            let np = self.np_row(&row.query);
            let _ = writeln!(
                out,
                "{:<4} {:<4} {:>14.0} {:>9} {:>14.2} {:>9} {:>12.2} {:>9} {:>12.2} {:>9} {:>12.0} {:>10.4}",
                row.query,
                row.configuration,
                row.throughput.mean(),
                Self::change(&row.throughput, np.map(|r| &r.throughput)),
                row.latency_ms.mean(),
                Self::change(&row.latency_ms, np.map(|r| &r.latency_ms)),
                row.avg_memory_mb.mean(),
                Self::change(&row.avg_memory_mb, np.map(|r| &r.avg_memory_mb)),
                row.max_memory_mb.mean(),
                Self::change(&row.max_memory_mb, np.map(|r| &r.max_memory_mb)),
                row.sink_tuples,
                row.traversal_ms.mean(),
            );
        }
        out
    }

    /// Renders the table as CSV (one line per row, header included).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "query,configuration,throughput_tps,latency_ms,avg_memory_mb,max_memory_mb,\
             sink_tuples,traversal_ms,provenance_bytes,network_bytes\n",
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{:.2},{:.4},{:.4},{:.4},{:.0},{:.6},{:.0},{:.0}",
                row.query,
                row.configuration,
                row.throughput.mean(),
                row.latency_ms.mean(),
                row.avg_memory_mb.mean(),
                row.max_memory_mb.mean(),
                row.sink_tuples,
                row.traversal_ms.mean(),
                row.provenance_bytes,
                row.network_bytes,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(query: &str, cfg: &str, throughput: f64, latency: f64) -> RunMeasurement {
        let mut r = RunMeasurement::new(query, cfg);
        r.throughput = MetricCell::from_samples(&[throughput]);
        r.latency_ms = MetricCell::from_samples(&[latency]);
        r.avg_memory_mb = MetricCell::from_samples(&[4.0]);
        r.max_memory_mb = MetricCell::from_samples(&[6.0]);
        r.sink_tuples = 10.0;
        r
    }

    #[test]
    fn table_renders_relative_changes_against_np() {
        let mut table = FigureTable::new("Figure 12");
        table.push(row("Q1", "NP", 50_000.0, 100.0));
        table.push(row("Q1", "GL", 48_000.0, 103.0));
        table.push(row("Q1", "BL", 3_000.0, 900.0));
        let text = table.render();
        assert!(text.contains("Figure 12"));
        assert!(text.contains("-4.0%"));
        assert!(text.contains("-94.0%"));
        assert!(text.contains("+3.0%"));
        assert_eq!(table.rows().len(), 3);
    }

    #[test]
    fn missing_np_row_renders_dashes() {
        let mut table = FigureTable::new("partial");
        table.push(row("Q2", "GL", 10.0, 1.0));
        let text = table.render();
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let mut table = FigureTable::new("csv");
        table.push(row("Q1", "NP", 1.0, 2.0));
        table.push(row("Q1", "GL", 3.0, 4.0));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("query,configuration"));
        assert!(csv.contains("Q1,GL,3.00"));
    }

    #[test]
    fn metric_cell_from_samples() {
        let cell = MetricCell::from_samples(&[1.0, 3.0]);
        assert_eq!(cell.mean(), 2.0);
        assert_eq!(MetricCell::default().mean(), 0.0);
    }
}
