//! Ring-buffer event tracing with pluggable subscribers.
//!
//! Runtime components emit structured [`TraceEvent`]s (operator start/stop,
//! barrier alignment, recovery attempts, link faults, one-time warnings) into a
//! process-wide [`Tracer`] instead of writing ad-hoc `eprintln!` lines. The tracer
//! keeps a bounded ring of recent events for post-hoc inspection and fans each
//! event out to registered [`TraceSubscriber`]s; tests subscribe to assert on
//! emission counts, and the control endpoint can expose the ring.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

/// Capacity of the ring of recent events kept by a [`Tracer`].
const RING_CAPACITY: usize = 1024;

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, unique within the emitting tracer.
    pub seq: u64,
    /// Event kind, e.g. `"operator-start"`, `"operator-panic"`,
    /// `"batch-budget-over-allocation"`, `"recovery-attempt"`.
    pub kind: &'static str,
    /// What the event is about (operator name, channel key, link name).
    pub target: String,
    /// Human-readable detail.
    pub message: String,
}

/// Receives every event emitted by a tracer it is subscribed to. Implementations
/// must be cheap and non-blocking — they run inline on the emitting thread.
pub trait TraceSubscriber: Send + Sync {
    /// Called once per emitted event.
    fn on_event(&self, event: &TraceEvent);
}

/// The event tracer (see the module docs). Usually accessed through
/// [`Tracer::global`]; tests may build private instances with [`Tracer::new`].
pub struct Tracer {
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    once: Mutex<HashSet<(&'static str, String)>>,
    subscribers: RwLock<Vec<Arc<dyn TraceSubscriber>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer with no subscribers.
    pub fn new() -> Self {
        Tracer {
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
            once: Mutex::new(HashSet::new()),
            subscribers: RwLock::new(Vec::new()),
        }
    }

    /// The process-wide tracer runtime components emit into.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Registers a subscriber for all subsequent events.
    pub fn subscribe(&self, subscriber: Arc<dyn TraceSubscriber>) {
        self.subscribers.write().push(subscriber);
    }

    /// Emits an event: appends it to the ring (evicting the oldest when full) and
    /// notifies every subscriber.
    pub fn emit(&self, kind: &'static str, target: impl Into<String>, message: impl Into<String>) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            target: target.into(),
            message: message.into(),
        };
        {
            let mut ring = self.ring.lock();
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(event.clone());
        }
        for sub in self.subscribers.read().iter() {
            sub.on_event(&event);
        }
    }

    /// Emits the event only the first time this `(kind, target)` pair is seen —
    /// the replacement for one-shot `eprintln!` warnings. Returns whether the
    /// event was emitted.
    pub fn emit_once(
        &self,
        kind: &'static str,
        target: impl Into<String>,
        message: impl Into<String>,
    ) -> bool {
        let target = target.into();
        if !self.once.lock().insert((kind, target.clone())) {
            return false;
        }
        self.emit(kind, target, message);
        true
    }

    /// The most recent events, oldest first (bounded by the ring capacity).
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().cloned().collect()
    }
}

/// A subscriber that counts events matching a `(kind, target)` pair — the
/// building block for "emitted exactly once" assertions in tests.
pub struct CountingSubscriber {
    kind: &'static str,
    target: String,
    hits: AtomicU64,
}

impl CountingSubscriber {
    /// Counts events whose kind and target equal the given pair.
    pub fn new(kind: &'static str, target: impl Into<String>) -> Arc<Self> {
        Arc::new(CountingSubscriber {
            kind,
            target: target.into(),
            hits: AtomicU64::new(0),
        })
    }

    /// Number of matching events seen so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

impl TraceSubscriber for CountingSubscriber {
    fn on_event(&self, event: &TraceEvent) {
        if event.kind == self.kind && event.target == self.target {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_records_and_notifies() {
        let tracer = Tracer::new();
        let sub = CountingSubscriber::new("operator-start", "agg");
        tracer.subscribe(sub.clone());
        tracer.emit("operator-start", "agg", "spawned");
        tracer.emit("operator-start", "src", "spawned");
        assert_eq!(sub.hits(), 1);
        let recent = tracer.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].kind, "operator-start");
        assert_eq!(recent[0].target, "agg");
        assert!(recent[0].seq < recent[1].seq);
    }

    #[test]
    fn emit_once_deduplicates_by_kind_and_target() {
        let tracer = Tracer::new();
        let sub = CountingSubscriber::new("warn", "chan-a");
        tracer.subscribe(sub.clone());
        assert!(tracer.emit_once("warn", "chan-a", "first"));
        assert!(!tracer.emit_once("warn", "chan-a", "second"));
        assert!(tracer.emit_once("warn", "chan-b", "other target still fires"));
        assert_eq!(sub.hits(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let tracer = Tracer::new();
        for i in 0..(RING_CAPACITY + 10) {
            tracer.emit("tick", "t", format!("{i}"));
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), RING_CAPACITY);
        assert_eq!(recent[0].message, "10", "oldest events evicted");
    }
}
