//! # genealog-metrics — measurement infrastructure for the evaluation
//!
//! The paper's evaluation (§7) reports four metrics per query and configuration:
//! throughput (source tuples per second), latency (time between the latest
//! contributing source tuple and the sink tuple), memory footprint (average and
//! maximum) and the contribution-graph traversal time. This crate provides the
//! measurement machinery the benchmark harnesses use to reproduce those figures:
//!
//! * [`alloc::TrackingAllocator`] — a counting [`core::alloc::GlobalAlloc`] wrapper
//!   reporting live/peak heap bytes (the substitute for the JVM heap measurements of
//!   the original testbed).
//! * [`recorder`] — throughput, latency, traversal-time and memory-sample recorders.
//! * [`stats`] — means, standard deviations, 95 % confidence intervals, percentiles.
//! * [`report`] — figure-style tables (rows of NP/GL/BL per query) and CSV output.

// `alloc::TrackingAllocator` implements `GlobalAlloc`, which is inherently unsafe;
// everything else in the crate is forbidden from using unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod recorder;
pub mod report;
pub mod stats;

pub use alloc::TrackingAllocator;
pub use recorder::{LatencyRecorder, MemorySampler, ThroughputRecorder, TraversalRecorder};
pub use report::{FigureTable, MetricCell, RunMeasurement};
pub use stats::Summary;
