//! # genealog-metrics — measurement infrastructure for the evaluation
//!
//! The paper's evaluation (§7) reports four metrics per query and configuration:
//! throughput (source tuples per second), latency (time between the latest
//! contributing source tuple and the sink tuple), memory footprint (average and
//! maximum) and the contribution-graph traversal time. This crate provides the
//! measurement machinery the benchmark harnesses use to reproduce those figures:
//!
//! * [`alloc::TrackingAllocator`] — a counting [`core::alloc::GlobalAlloc`] wrapper
//!   reporting live/peak heap bytes (the substitute for the JVM heap measurements of
//!   the original testbed).
//! * [`recorder`] — throughput, latency, traversal-time and memory-sample recorders.
//! * [`stats`] — means, standard deviations, 95 % confidence intervals, percentiles.
//! * [`report`] — figure-style tables (rows of NP/GL/BL per query) and CSV output.
//!
//! Since PR 7 the crate also hosts the **live observability plane**:
//!
//! * [`registry`] — the lock-free, shard-aware [`MetricsRegistry`] of counters,
//!   gauges and log-scale latency histograms that operators publish into while a
//!   query runs, with Prometheus text exposition and a wire codec for folding
//!   remote SPE instances into one surface.
//! * [`trace`] — the ring-buffer event [`Tracer`] with pluggable subscribers that
//!   replaces ad-hoc `eprintln!` warnings.

// `alloc::TrackingAllocator` implements `GlobalAlloc`, which is inherently unsafe;
// everything else in the crate is forbidden from using unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod stats;
pub mod trace;

pub use alloc::TrackingAllocator;
pub use recorder::{LatencyRecorder, MemorySampler, ThroughputRecorder, TraversalRecorder};
pub use registry::{
    decode_samples, encode_samples, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    Sample, SampleValue,
};
pub use report::{FigureTable, MetricCell, RunMeasurement};
pub use stats::Summary;
pub use trace::{CountingSubscriber, TraceEvent, TraceSubscriber, Tracer};
