//! Recorders for the four evaluation metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::stats::{percentile, Summary};

/// Measures throughput: tuples processed per second over a measured interval.
#[derive(Debug)]
pub struct ThroughputRecorder {
    tuples: AtomicU64,
    started: Mutex<Option<Instant>>,
    finished: Mutex<Option<Instant>>,
}

impl Default for ThroughputRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputRecorder {
    /// Creates an idle recorder.
    pub fn new() -> Self {
        ThroughputRecorder {
            tuples: AtomicU64::new(0),
            started: Mutex::new(None),
            finished: Mutex::new(None),
        }
    }

    /// Marks the beginning of the measured interval.
    pub fn start(&self) {
        *self.started.lock() = Some(Instant::now());
    }

    /// Marks the end of the measured interval.
    pub fn finish(&self) {
        *self.finished.lock() = Some(Instant::now());
    }

    /// Records `n` processed tuples.
    pub fn add_tuples(&self, n: u64) {
        self.tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of tuples recorded so far.
    pub fn tuples(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    /// The measured interval (start to finish, or start to now if not finished).
    pub fn elapsed(&self) -> Duration {
        match (*self.started.lock(), *self.finished.lock()) {
            (Some(start), Some(end)) => end.duration_since(start),
            (Some(start), None) => start.elapsed(),
            _ => Duration::ZERO,
        }
    }

    /// Tuples per second over the measured interval.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.tuples() as f64 / secs
        }
    }
}

/// Collects per-tuple latency samples (nanoseconds).
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples_ns: Mutex<Vec<u64>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&self, latency_ns: u64) {
        self.samples_ns.lock().push(latency_ns);
    }

    /// Records a batch of samples (e.g. copied from a sink's statistics).
    pub fn record_all_ns(&self, samples: &[u64]) {
        self.samples_ns.lock().extend_from_slice(samples);
    }

    /// Number of samples collected.
    pub fn count(&self) -> usize {
        self.samples_ns.lock().len()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.summary_ms().mean
    }

    /// The `p`-th percentile latency in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let samples: Vec<f64> = self
            .samples_ns
            .lock()
            .iter()
            .map(|&ns| ns as f64 / 1e6)
            .collect();
        percentile(&samples, p)
    }

    /// Summary of the latency samples, in milliseconds.
    pub fn summary_ms(&self) -> Summary {
        let samples: Vec<f64> = self
            .samples_ns
            .lock()
            .iter()
            .map(|&ns| ns as f64 / 1e6)
            .collect();
        Summary::of(&samples)
    }
}

/// Collects contribution-graph traversal durations (the metric of Figure 14).
#[derive(Debug, Default)]
pub struct TraversalRecorder {
    samples_ns: Mutex<Vec<u64>>,
    graph_sizes: Mutex<Vec<usize>>,
}

impl TraversalRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one traversal: its duration and the number of originating tuples found.
    pub fn record(&self, duration: Duration, graph_size: usize) {
        self.samples_ns.lock().push(duration.as_nanos() as u64);
        self.graph_sizes.lock().push(graph_size);
    }

    /// Number of traversals recorded.
    pub fn count(&self) -> usize {
        self.samples_ns.lock().len()
    }

    /// Mean traversal time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.summary_ms().mean
    }

    /// Summary of traversal times in milliseconds.
    pub fn summary_ms(&self) -> Summary {
        let samples: Vec<f64> = self
            .samples_ns
            .lock()
            .iter()
            .map(|&ns| ns as f64 / 1e6)
            .collect();
        Summary::of(&samples)
    }

    /// Mean number of originating tuples per traversal (the contribution-graph size).
    pub fn mean_graph_size(&self) -> f64 {
        let sizes = self.graph_sizes.lock();
        if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        }
    }
}

/// Periodically samples a memory gauge (e.g. the tracking allocator's live bytes) and
/// reports the average and maximum over the run, as in Figures 12 and 13.
#[derive(Debug, Default)]
pub struct MemorySampler {
    samples: Mutex<Vec<usize>>,
}

impl MemorySampler {
    /// Creates an empty sampler.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one sample of the gauge.
    pub fn sample(&self, bytes: usize) {
        self.samples.lock().push(bytes);
    }

    /// Number of samples taken.
    pub fn count(&self) -> usize {
        self.samples.lock().len()
    }

    /// Average sampled memory, in megabytes.
    pub fn average_mb(&self) -> f64 {
        let samples = self.samples.lock();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().sum::<usize>() as f64 / samples.len() as f64 / (1024.0 * 1024.0)
    }

    /// Maximum sampled memory, in megabytes.
    pub fn max_mb(&self) -> f64 {
        self.samples.lock().iter().copied().max().unwrap_or(0) as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_recorder_measures_rate() {
        let rec = ThroughputRecorder::new();
        assert_eq!(rec.throughput(), 0.0);
        rec.start();
        rec.add_tuples(500);
        rec.add_tuples(500);
        std::thread::sleep(Duration::from_millis(20));
        rec.finish();
        assert_eq!(rec.tuples(), 1_000);
        let tput = rec.throughput();
        assert!(tput > 0.0);
        assert!(tput < 1_000.0 / 0.02 * 1.5, "rate bounded by elapsed time");
    }

    #[test]
    fn latency_recorder_aggregates_samples() {
        let rec = LatencyRecorder::new();
        rec.record_ns(1_000_000); // 1 ms
        rec.record_all_ns(&[2_000_000, 3_000_000]);
        assert_eq!(rec.count(), 3);
        assert!((rec.mean_ms() - 2.0).abs() < 1e-9);
        assert!((rec.percentile_ms(100.0) - 3.0).abs() < 1e-9);
        let summary = rec.summary_ms();
        assert_eq!(summary.count, 3);
        assert_eq!(summary.min, 1.0);
    }

    #[test]
    fn traversal_recorder_tracks_time_and_graph_size() {
        let rec = TraversalRecorder::new();
        rec.record(Duration::from_micros(100), 4);
        rec.record(Duration::from_micros(300), 8);
        assert_eq!(rec.count(), 2);
        assert!((rec.mean_ms() - 0.2).abs() < 1e-9);
        assert!((rec.mean_graph_size() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn memory_sampler_reports_average_and_max() {
        let sampler = MemorySampler::new();
        assert_eq!(sampler.average_mb(), 0.0);
        assert_eq!(sampler.max_mb(), 0.0);
        sampler.sample(1024 * 1024);
        sampler.sample(3 * 1024 * 1024);
        assert_eq!(sampler.count(), 2);
        assert!((sampler.average_mb() - 2.0).abs() < 1e-9);
        assert!((sampler.max_mb() - 3.0).abs() < 1e-9);
    }
}
