//! Live metrics registry: lock-free counters, gauges and log-scale histograms.
//!
//! Operators, channels, sources and the checkpoint path publish into a
//! [`MetricsRegistry`] continuously while a query runs; consumers (the runtime's
//! `QueryReport`, the embedded control endpoint's `/metrics` page) read a
//! point-in-time [`MetricsRegistry::snapshot`] of the same instruments. The hot path
//! is a relaxed atomic add — registration (the cold path) takes a mutex, reading
//! never blocks writers.
//!
//! Instruments are keyed by `(metric name, labels)`: asking for the same key twice
//! returns the same instrument, which is what makes the registry **shard-aware** —
//! every shard instance of a logical operator increments one shared counter, so the
//! registry needs no fold step when shards report.
//!
//! Remote SPE instances ship encoded snapshots over the wire
//! ([`MetricsRegistry::encode_snapshot`] / [`MetricsRegistry::install_remote`]);
//! the receiving registry folds the latest snapshot of every remote instance into
//! its own samples, so a query spanning instances reads as one surface. Installing
//! a newer snapshot *replaces* the instance's previous one (set-latest semantics),
//! making delivery idempotent under retries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of power-of-two histogram buckets: bucket `i` covers values whose
/// bit-length is `i` (bucket 0 holds the value 0), so `u64::MAX` lands in bucket 64.
const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter (relaxed atomic add on the hot path).
///
/// Counters are always live, even on a disabled registry: the runtime's
/// `QueryReport` is assembled from them, so they are the one instrument that cannot
/// be turned off.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge (relaxed atomic store on the hot path). Inert when minted by
/// a disabled registry.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    inert: bool,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if !self.inert {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-scale (power-of-two buckets) histogram for latency-style values.
///
/// `record` is two relaxed adds and one relaxed increment — no locks — which keeps
/// it viable on per-tuple paths. Quantiles are estimated from the bucket upper
/// bounds, which for power-of-two buckets means at most a 2x overestimate; the
/// approximation is the price of a fixed-size lock-free layout. Inert when minted
/// by a disabled registry.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    inert: bool,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            inert: false,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.inert {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable (bucket-wise sum) and able to
/// answer quantile queries, so distributed report folds keep working on snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the bucket holding
    /// the `ceil(q * count)`-th observation. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len().saturating_sub(1))
    }

    /// Folds `other` into this snapshot (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Label set of a sample: `(key, value)` pairs, sorted for deterministic output.
pub type Labels = Vec<(String, String)>;

/// The value of one sample in a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A last-value gauge reading.
    Gauge(u64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    fn fold(&mut self, other: &SampleValue) {
        match (self, other) {
            (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
            (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
            (SampleValue::Histogram(a), SampleValue::Histogram(b)) => a.merge(b),
            // Mismatched kinds under one key (a misbehaving remote): keep ours.
            _ => {}
        }
    }
}

/// One `(name, labels, value)` triple of a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `genealog_operator_tuples_in_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Labels,
    /// The reading.
    pub value: SampleValue,
}

type SampleKey = (String, Labels);
type CollectFn = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum CollectKind {
    Counter,
    Gauge,
}

/// The live metrics registry (see the module docs).
pub struct MetricsRegistry {
    enabled: bool,
    counters: Mutex<BTreeMap<SampleKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<SampleKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<SampleKey, Arc<Histogram>>>,
    collected: Mutex<BTreeMap<SampleKey, (CollectKind, CollectFn)>>,
    remotes: Mutex<BTreeMap<String, Vec<Sample>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

fn key(name: &str, labels: &[(&str, &str)]) -> SampleKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

impl MetricsRegistry {
    /// Creates an enabled registry.
    pub fn new() -> Arc<Self> {
        Self::with_enabled(true)
    }

    /// Creates a disabled registry: counters stay live (reports depend on them),
    /// but gauges and histograms are inert and collector closures are dropped.
    /// This is the "metrics off" mode the overhead benchmark sweeps against.
    pub fn disabled() -> Arc<Self> {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Arc<Self> {
        Arc::new(MetricsRegistry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            collected: Mutex::new(BTreeMap::new()),
            remotes: Mutex::new(BTreeMap::new()),
        })
    }

    /// Whether gauges, histograms and collectors are live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the counter registered under `(name, labels)`, creating it on first
    /// use. The same key always returns the same instrument.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry(key(name, labels))
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Returns the gauge registered under `(name, labels)`, creating it on first
    /// use (inert on a disabled registry).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let inert = !self.enabled;
        Arc::clone(
            self.gauges
                .lock()
                .entry(key(name, labels))
                .or_insert_with(|| {
                    Arc::new(Gauge {
                        value: AtomicU64::new(0),
                        inert,
                    })
                }),
        )
    }

    /// Returns the histogram registered under `(name, labels)`, creating it on
    /// first use (inert on a disabled registry).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let inert = !self.enabled;
        Arc::clone(
            self.histograms
                .lock()
                .entry(key(name, labels))
                .or_insert_with(|| {
                    Arc::new(Histogram {
                        inert,
                        ..Histogram::default()
                    })
                }),
        )
    }

    /// Registers a gauge whose value is computed at snapshot time by `f` — zero
    /// hot-path cost, ideal for readings that already exist as an atomic somewhere
    /// (queue depths, backend byte counters). Dropped on a disabled registry.
    pub fn gauge_fn(&self, name: &str, labels: &[(&str, &str)], f: CollectFn) {
        if self.enabled {
            self.collected
                .lock()
                .insert(key(name, labels), (CollectKind::Gauge, f));
        }
    }

    /// Registers a counter computed at snapshot time (see [`MetricsRegistry::gauge_fn`]).
    pub fn counter_fn(&self, name: &str, labels: &[(&str, &str)], f: CollectFn) {
        if self.enabled {
            self.collected
                .lock()
                .insert(key(name, labels), (CollectKind::Counter, f));
        }
    }

    /// The snapshot of the histogram under `(name, labels)`, if one was registered
    /// on this registry (local instruments only — remote samples are folded into
    /// [`MetricsRegistry::snapshot`]).
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        self.histograms
            .lock()
            .get(&key(name, labels))
            .map(|h| h.snapshot())
    }

    /// Installs (replacing any previous) the latest snapshot shipped by the remote
    /// instance `instance`. Folded into every subsequent [`MetricsRegistry::snapshot`].
    pub fn install_remote(&self, instance: &str, samples: Vec<Sample>) {
        self.remotes.lock().insert(instance.to_string(), samples);
    }

    /// Samples only the instruments registered locally (what
    /// [`MetricsRegistry::encode_snapshot`] ships): no collectors, no remotes.
    fn local_instrument_samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for ((name, labels), c) in self.counters.lock().iter() {
            out.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in self.gauges.lock().iter() {
            out.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in self.histograms.lock().iter() {
            out.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Histogram(h.snapshot()),
            });
        }
        out
    }

    /// Samples the collector closures (counter_fn / gauge_fn registrations).
    fn collector_samples(&self) -> Vec<Sample> {
        self.collected
            .lock()
            .iter()
            .map(|((name, labels), (kind, f))| {
                let v = f();
                Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match kind {
                        CollectKind::Counter => SampleValue::Counter(v),
                        CollectKind::Gauge => SampleValue::Gauge(v),
                    },
                }
            })
            .collect()
    }

    /// Everything this instance publishes itself: local instruments plus collector
    /// closures, but no remote snapshots. This is what [`Self::encode_snapshot`]
    /// ships, so chained installs can never double-fold a third instance.
    fn local_samples(&self) -> Vec<Sample> {
        let mut out = self.local_instrument_samples();
        out.extend(self.collector_samples());
        out
    }

    /// A point-in-time snapshot: every local instrument, every collector closure,
    /// and the latest snapshot of every remote instance, folded by `(name, labels)`
    /// (counters and gauges sum, histograms merge bucket-wise) and sorted.
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut folded: BTreeMap<SampleKey, SampleValue> = BTreeMap::new();
        let mut absorb = |sample: Sample| {
            folded
                .entry((sample.name, sample.labels))
                .and_modify(|v| v.fold(&sample.value))
                .or_insert(sample.value);
        };
        for sample in self.local_samples() {
            absorb(sample);
        }
        for samples in self.remotes.lock().values() {
            for sample in samples {
                absorb(sample.clone());
            }
        }
        folded
            .into_iter()
            .map(|((name, labels), value)| Sample {
                name,
                labels,
                value,
            })
            .collect()
    }

    /// Renders the snapshot in the Prometheus text exposition format (v0.0.4).
    /// Histograms are rendered as summaries with `quantile` labels (p50/p95/p99)
    /// plus `_sum` and `_count` series.
    pub fn render_prometheus(&self) -> String {
        let samples = self.snapshot();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &samples {
            if last_name != Some(sample.name.as_str()) {
                let kind = match sample.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(&sample.name);
                    out.push_str(&render_labels(&sample.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                SampleValue::Histogram(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&sample.name);
                        out.push_str(&render_labels(&sample.labels, Some(label)));
                        out.push_str(&format!(" {}\n", h.quantile(q)));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        render_labels(&sample.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Encodes everything this instance publishes (local instruments plus
    /// collector readings, no remotes) as a wire snapshot (little-endian framing,
    /// no external codec) for shipping to another instance's
    /// [`MetricsRegistry::install_remote`].
    pub fn encode_snapshot(&self) -> Vec<u8> {
        encode_samples(&self.local_samples())
    }
}

fn render_labels(labels: &Labels, quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

// --- wire snapshot codec ----------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(bytes.get(*at..*at + 8)?.try_into().ok()?);
    *at += 8;
    Some(v)
}

fn get_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(bytes.get(*at..*at + 4)?.try_into().ok()?);
    *at += 4;
    Some(v)
}

fn get_str(bytes: &[u8], at: &mut usize) -> Option<String> {
    let len = get_u32(bytes, at)? as usize;
    let s = std::str::from_utf8(bytes.get(*at..*at + len)?)
        .ok()?
        .to_string();
    *at += len;
    Some(s)
}

/// Encodes a sample list in the registry's wire snapshot format.
pub fn encode_samples(samples: &[Sample]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    for sample in samples {
        put_str(&mut out, &sample.name);
        out.extend_from_slice(&(sample.labels.len() as u32).to_le_bytes());
        for (k, v) in &sample.labels {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            SampleValue::Gauge(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            SampleValue::Histogram(h) => {
                out.push(2);
                out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
                for b in &h.buckets {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                out.extend_from_slice(&h.count.to_le_bytes());
                out.extend_from_slice(&h.sum.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a wire snapshot produced by [`encode_samples`] /
/// [`MetricsRegistry::encode_snapshot`]. Returns `None` on malformed input.
pub fn decode_samples(bytes: &[u8]) -> Option<Vec<Sample>> {
    let mut at = 0usize;
    let count = get_u32(bytes, &mut at)? as usize;
    let mut samples = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = get_str(bytes, &mut at)?;
        let label_count = get_u32(bytes, &mut at)? as usize;
        let mut labels = Vec::with_capacity(label_count.min(16));
        for _ in 0..label_count {
            let k = get_str(bytes, &mut at)?;
            let v = get_str(bytes, &mut at)?;
            labels.push((k, v));
        }
        let kind = *bytes.get(at)?;
        at += 1;
        let value = match kind {
            0 => SampleValue::Counter(get_u64(bytes, &mut at)?),
            1 => SampleValue::Gauge(get_u64(bytes, &mut at)?),
            2 => {
                let bucket_count = get_u32(bytes, &mut at)? as usize;
                if bucket_count > 1024 {
                    return None;
                }
                let mut buckets = Vec::with_capacity(bucket_count);
                for _ in 0..bucket_count {
                    buckets.push(get_u64(bytes, &mut at)?);
                }
                let count = get_u64(bytes, &mut at)?;
                let sum = get_u64(bytes, &mut at)?;
                SampleValue::Histogram(HistogramSnapshot {
                    buckets,
                    count,
                    sum,
                })
            }
            _ => return None,
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Some(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_instrument() {
        let r = MetricsRegistry::new();
        let a = r.counter("genealog_operator_tuples_in_total", &[("operator", "agg")]);
        let b = r.counter("genealog_operator_tuples_in_total", &[("operator", "agg")]);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "shard instances share one counter");
        let other = r.counter("genealog_operator_tuples_in_total", &[("operator", "src")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn disabled_registry_keeps_counters_but_inerts_the_rest() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("c_total", &[]);
        c.inc();
        assert_eq!(c.get(), 1);
        let g = r.gauge("g", &[]);
        g.set(9);
        assert_eq!(g.get(), 0, "disabled gauge is inert");
        let h = r.histogram("h_ns", &[]);
        h.record(100);
        assert!(h.snapshot().is_empty());
        r.gauge_fn("gf", &[], Arc::new(|| 42));
        assert!(!r.snapshot().iter().any(|s| s.name == "gf"));
    }

    #[test]
    fn histogram_quantiles_are_log_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum(), 101_106);
        // p50 → 3rd of 6 observations → the bucket of 3 → upper bound 3.
        assert_eq!(s.quantile(0.5), 3);
        // p99 → 6th observation → bucket of 100_000 (2^16..2^17) → 131071.
        assert_eq!(s.quantile(0.99), (1 << 17) - 1);
        assert_eq!(s.quantile(0.0), 1, "rank floors at the first observation");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let a = Histogram::default();
        a.record(5);
        let b = Histogram::default();
        b.record(5);
        b.record(7);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 17);
        assert_eq!(s.quantile(1.0), 7);
    }

    #[test]
    fn gauge_fn_is_sampled_at_snapshot_time() {
        let r = MetricsRegistry::new();
        let depth = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&depth);
        r.gauge_fn(
            "genealog_channel_queue_depth",
            &[("edge", "a->b")],
            Arc::new(move || probe.load(Ordering::Relaxed)),
        );
        depth.store(12, Ordering::Relaxed);
        let snap = r.snapshot();
        let sample = snap
            .iter()
            .find(|s| s.name == "genealog_channel_queue_depth")
            .expect("collector sampled");
        assert_eq!(sample.value, SampleValue::Gauge(12));
    }

    #[test]
    fn snapshot_round_trips_over_the_wire_and_folds_remotes() {
        let remote = MetricsRegistry::new();
        remote.counter("ops_total", &[("operator", "agg")]).add(10);
        remote.histogram("lat_ns", &[]).record(64);
        let bytes = remote.encode_snapshot();

        let origin = MetricsRegistry::new();
        origin.counter("ops_total", &[("operator", "agg")]).add(5);
        origin.install_remote("shard0", decode_samples(&bytes).expect("decodes"));
        // Installing a newer snapshot replaces the older one (idempotent delivery).
        origin.install_remote("shard0", decode_samples(&bytes).expect("decodes"));

        let snap = origin.snapshot();
        let counter = snap.iter().find(|s| s.name == "ops_total").unwrap();
        assert_eq!(counter.value, SampleValue::Counter(15));
        let hist = snap.iter().find(|s| s.name == "lat_ns").unwrap();
        match &hist.value {
            SampleValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(decode_samples(&bytes[..3]).is_none(), "truncated input");
    }

    #[test]
    fn prometheus_rendering_has_type_lines_labels_and_quantiles() {
        let r = MetricsRegistry::new();
        r.counter("genealog_operator_tuples_in_total", &[("operator", "agg")])
            .add(40);
        r.gauge("genealog_source_barrier_epoch", &[("operator", "src")])
            .set(3);
        r.histogram("genealog_sink_latency_ns", &[("operator", "sink")])
            .record(1500);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE genealog_operator_tuples_in_total counter"));
        assert!(text.contains("genealog_operator_tuples_in_total{operator=\"agg\"} 40"));
        assert!(text.contains("# TYPE genealog_source_barrier_epoch gauge"));
        assert!(text.contains("# TYPE genealog_sink_latency_ns summary"));
        assert!(text.contains("genealog_sink_latency_ns{operator=\"sink\",quantile=\"0.5\"} 2047"));
        assert!(text.contains("genealog_sink_latency_ns_count{operator=\"sink\"} 1"));
        assert!(text.contains("genealog_sink_latency_ns_sum{operator=\"sink\"} 1500"));
    }
}
