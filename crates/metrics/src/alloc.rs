//! A counting global allocator used to measure the memory footprint of a query run.
//!
//! The original evaluation measures the JVM heap of the process running each query;
//! the Rust equivalent is to count live heap bytes directly at the allocator. Install
//! the tracking allocator in a benchmark binary with:
//!
//! ```rust,ignore
//! use genealog_metrics::TrackingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: TrackingAllocator = TrackingAllocator::new();
//! ```
//!
//! and sample [`TrackingAllocator::live_bytes`] / reset-and-read
//! [`TrackingAllocator::peak_bytes`] around each experiment. The counters are plain
//! relaxed atomics, so the probe effect on throughput is negligible.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`GlobalAlloc`] wrapper around the system allocator that tracks live and peak
/// allocated bytes.
#[derive(Debug)]
pub struct TrackingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
    allocations: AtomicUsize,
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrackingAllocator {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        TrackingAllocator {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            allocations: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Highest value of [`TrackingAllocator::live_bytes`] observed since the last
    /// [`TrackingAllocator::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total number of allocations performed so far.
    pub fn allocation_count(&self) -> usize {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live value (call between experiments).
    pub fn reset_peak(&self) {
        self.peak.store(self.live_bytes(), Ordering::Relaxed);
    }

    fn record_alloc(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: all allocation work is delegated to `System`; this wrapper only maintains
// counters and never fabricates or alters pointers or layouts.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            self.record_dealloc(layout.size());
            self.record_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests exercise the counter logic directly (the test binary keeps the
    // default system allocator; the benchmark binaries install TrackingAllocator as
    // the global allocator).

    #[test]
    fn counters_track_alloc_and_dealloc() {
        let alloc = TrackingAllocator::new();
        alloc.record_alloc(100);
        alloc.record_alloc(50);
        assert_eq!(alloc.live_bytes(), 150);
        assert_eq!(alloc.peak_bytes(), 150);
        assert_eq!(alloc.allocation_count(), 2);
        alloc.record_dealloc(100);
        assert_eq!(alloc.live_bytes(), 50);
        assert_eq!(alloc.peak_bytes(), 150, "peak is sticky");
        alloc.reset_peak();
        assert_eq!(alloc.peak_bytes(), 50);
        alloc.record_alloc(10);
        assert_eq!(alloc.peak_bytes(), 60);
    }

    #[test]
    fn allocator_can_be_used_as_a_real_allocator() {
        // Smoke-test the GlobalAlloc implementation without installing it globally.
        let alloc = TrackingAllocator::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        // SAFETY: standard alloc/dealloc pairing with a valid layout.
        #[allow(unsafe_code)]
        unsafe {
            let ptr = alloc.alloc(layout);
            assert!(!ptr.is_null());
            assert_eq!(alloc.live_bytes(), 256);
            let ptr = alloc.realloc(ptr, layout, 512);
            assert!(!ptr.is_null());
            assert_eq!(alloc.live_bytes(), 512);
            let layout2 = Layout::from_size_align(512, 8).unwrap();
            alloc.dealloc(ptr, layout2);
        }
        assert_eq!(alloc.live_bytes(), 0);
        assert!(alloc.peak_bytes() >= 512);
    }
}
