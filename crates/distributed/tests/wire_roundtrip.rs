//! Wire-framing round-trip pins: whatever a Send operator frames, the Receive side
//! must decode back to the identical value — for random tuples, runs, watermarks and
//! tags — and the REMOTE tagging rule (§4.1: source tuples keep `SOURCE` across the
//! boundary, everything else becomes `REMOTE`) must hold for every provenance system.

use std::sync::Arc;

use proptest::prelude::*;

use genealog::{GeneaLog, GlMeta, OpKind};
use genealog_distributed::{
    TupleFrameBuilder, WireDecode, WireEncode, WireFrame, WireProvenance, WireTag, WireTuple,
};
use genealog_spe::provenance::{ProvenanceSystem, RemoteContext, SourceContext};
use genealog_spe::tuple::{GTuple, TupleId};
use genealog_spe::Timestamp;

type Payload = (u32, i64);

type RawTuple = ((u64, u64), (u32, u64, bool), (u32, i64));

fn wire_tuple(
    ((ts, stimulus), (origin, seq, was_source), (key, value)): RawTuple,
) -> WireTuple<Payload> {
    WireTuple {
        ts: Timestamp::from_millis(ts),
        stimulus,
        tag: WireTag {
            id: TupleId::new(origin, seq),
            was_source,
        },
        data: (key, value),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `WireTag` encode → decode identity for arbitrary ids and source flags.
    #[test]
    fn wire_tags_round_trip(origin in any::<u32>(), seq in any::<u64>(), was_source in any::<bool>()) {
        let tag = WireTag { id: TupleId::new(origin, seq), was_source };
        let decoded = WireTag::from_bytes(&tag.to_bytes()).expect("decode");
        prop_assert_eq!(decoded, tag);
    }

    /// Batch frames (runs of tuples) encode → decode to the identical run, for any
    /// run length including the empty run.
    #[test]
    fn tuple_frames_round_trip(
        raw in proptest::collection::vec(
            ((0u64..1 << 48, any::<u64>()), (any::<u32>(), any::<u64>(), any::<bool>()), (any::<u32>(), any::<i64>())),
            0..20,
        )
    ) {
        let run: Vec<WireTuple<Payload>> = raw.into_iter().map(wire_tuple).collect();
        let frame = WireFrame::Tuples(run);
        let decoded = WireFrame::<Payload>::from_bytes(&frame.to_bytes()).expect("decode");
        prop_assert_eq!(decoded, frame);
    }

    /// The Send operator's incremental frame builder produces byte-identical frames
    /// to encoding the equivalent `WireFrame::Tuples` value, so the builder cannot
    /// drift from the declarative codec.
    #[test]
    fn frame_builder_matches_declarative_encoding(
        raw in proptest::collection::vec(
            ((0u64..1 << 48, any::<u64>()), (any::<u32>(), any::<u64>(), any::<bool>()), (any::<u32>(), any::<i64>())),
            1..20,
        )
    ) {
        let run: Vec<WireTuple<Payload>> = raw.into_iter().map(wire_tuple).collect();
        let mut builder = TupleFrameBuilder::new();
        for t in &run {
            builder.push(t.ts, t.stimulus, t.tag, &t.data);
        }
        prop_assert_eq!(builder.len() as usize, run.len());
        let built = builder.take().expect("non-empty run");
        prop_assert!(builder.is_empty(), "take drains the builder");
        prop_assert_eq!(built, WireFrame::Tuples(run).to_bytes());
    }

    /// Watermark frames round-trip and are distinct from tuple frames.
    #[test]
    fn watermark_frames_round_trip(ts in 0u64..1 << 48) {
        let frame = WireFrame::<Payload>::Watermark(Timestamp::from_millis(ts));
        let decoded = WireFrame::<Payload>::from_bytes(&frame.to_bytes()).expect("decode");
        prop_assert_eq!(decoded, frame);
    }

    /// Random-truncated and randomly corrupted encodings of valid frames go
    /// through `WireFrame` decode without ever panicking: every strict prefix is
    /// a decode error, and a flipped byte either still parses (payload bytes) or
    /// errors out — there is no input that can crash the Receive path.
    #[test]
    fn truncated_and_corrupted_frames_decode_to_errors_not_panics(
        raw in proptest::collection::vec(
            ((0u64..1 << 48, any::<u64>()), (any::<u32>(), any::<u64>(), any::<bool>()), (any::<u32>(), any::<i64>())),
            0..8,
        ),
        cut_pick in any::<u32>(),
        corrupt_pick in any::<u32>(),
        flip in any::<u8>(),
    ) {
        let run: Vec<WireTuple<Payload>> = raw.into_iter().map(wire_tuple).collect();
        let bytes = WireFrame::Tuples(run).to_bytes();
        let cut = cut_pick as usize % bytes.len();
        prop_assert!(
            WireFrame::<Payload>::from_bytes(&bytes[..cut]).is_err(),
            "strict prefix of {cut}/{} bytes must be a decode error",
            bytes.len()
        );
        let mut corrupted = bytes.clone();
        let at = corrupt_pick as usize % corrupted.len();
        corrupted[at] ^= flip | 1;
        // Not asserted Ok or Err — a flipped payload byte legitimately decodes to
        // a different value. The assertion is that decode *returns*: a corrupt
        // length prefix must neither panic nor over-allocate.
        let _ = WireFrame::<Payload>::from_bytes(&corrupted);
    }

    /// The REMOTE tagging rule under GeneaLog: a source tuple crossing the boundary
    /// stays `SOURCE` and keeps its sender-side id; a derived tuple becomes `REMOTE`
    /// but also keeps its sender-side id (the MU join key of Definition 6.4).
    #[test]
    fn remote_tagging_rule_for_source_vs_derived(seq in any::<u64>(), v in any::<u32>()) {
        let gl = GeneaLog::for_instance(3);
        let ctx = SourceContext { source_id: 0, seq, ts: Timestamp::from_secs(1) };
        let source: Arc<GTuple<u32, GlMeta>> =
            Arc::new(GTuple::new(ctx.ts, 0, v, gl.source_meta(&ctx, &v)));
        let derived: Arc<GTuple<u32, GlMeta>> =
            Arc::new(GTuple::new(ctx.ts, 0, v, gl.map_meta(&source)));

        let source_tag = gl.wire_tag(&source);
        prop_assert!(source_tag.was_source);
        prop_assert_eq!(source_tag.id, source.meta.id);
        let derived_tag = gl.wire_tag(&derived);
        prop_assert!(!derived_tag.was_source);
        prop_assert_eq!(derived_tag.id, derived.meta.id);

        // What a Receive operator materialises from those tags: SOURCE survives the
        // boundary, everything else re-materialises as REMOTE.
        let receiver = GeneaLog::for_instance(4);
        let from_source = receiver.remote_meta(&RemoteContext {
            id: source_tag.id, ts: source.ts, was_source: source_tag.was_source,
        });
        prop_assert_eq!(from_source.kind, OpKind::Source);
        prop_assert_eq!(from_source.id, source.meta.id);
        let from_derived = receiver.remote_meta(&RemoteContext {
            id: derived_tag.id, ts: derived.ts, was_source: derived_tag.was_source,
        });
        prop_assert_eq!(from_derived.kind, OpKind::Remote);
        prop_assert_eq!(from_derived.id, derived.meta.id);
    }
}

/// End frames are a single tag byte and unknown tags are rejected.
#[test]
fn end_and_unknown_frames() {
    let end = WireFrame::<Payload>::End;
    assert_eq!(end.to_bytes(), vec![2]);
    assert_eq!(
        WireFrame::<Payload>::from_bytes(&[2]).expect("decode"),
        WireFrame::End
    );
    assert!(WireFrame::<Payload>::from_bytes(&[99]).is_err());
    assert!(WireFrame::<Payload>::from_bytes(&[]).is_err());
}

/// A truncated batch frame is rejected rather than silently shortened.
#[test]
fn truncated_tuple_frames_are_rejected() {
    let frame = WireFrame::Tuples(vec![wire_tuple(((1, 2), (3, 4, true), (5, 6)))]);
    let bytes = frame.to_bytes();
    for cut in 1..bytes.len() {
        assert!(
            WireFrame::<Payload>::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}
