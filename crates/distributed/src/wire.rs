//! A small, hand-written binary wire format.
//!
//! Tuples crossing an SPE-instance boundary are serialised into length-delimited
//! frames. The format is deliberately simple (little-endian fixed-width integers,
//! length-prefixed strings and sequences) — the point of the inter-process experiments
//! is the *volume* of data shipped per configuration, not codec sophistication, and a
//! local codec avoids pulling a serialisation framework into the dependency tree.

use std::fmt;

use genealog::OpKind;
use genealog::{SourceRecord, UnfoldedEvent, UpstreamEvent};
use genealog_spe::tuple::TupleId;
use genealog_spe::Timestamp;
use genealog_workloads::types::{
    AccidentAlert, AnomalyAlert, BlackoutAlert, DailyConsumption, MeterReading, PositionReport,
    StoppedCarCount,
};

/// Error produced when decoding a malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl WireError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// A cursor over a received frame.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over a frame.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, offset: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "needed {n} bytes, only {} remaining",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }
}

/// Types that can be written to a wire frame.
pub trait WireEncode {
    /// Appends the binary representation of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be read back from a wire frame.
pub trait WireDecode: Sized {
    /// Decodes a value from the reader, advancing it.
    ///
    /// # Errors
    /// Returns [`WireError`] if the frame is truncated or malformed.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: decodes a value from a full frame.
    ///
    /// # Errors
    /// Returns [`WireError`] if the frame is truncated or malformed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut reader = WireReader::new(bytes);
        Self::decode(&mut reader)
    }
}

macro_rules! impl_wire_int {
    ($($ty:ty),*) => {
        $(
            impl WireEncode for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl WireDecode for $ty {
                fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                    let bytes = reader.take(std::mem::size_of::<$ty>())?;
                    // `take` guarantees the width, but decode paths must never be
                    // able to panic on wire input: map the conversion instead.
                    let bytes = bytes
                        .try_into()
                        .map_err(|_| WireError::new("integer width mismatch"))?;
                    Ok(<$ty>::from_le_bytes(bytes))
                }
            }
        )*
    };
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(u8::decode(reader)? != 0)
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(reader)? as usize;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid utf-8"))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Some(value) => {
                true.encode(out);
                value.encode(out);
            }
            None => false.encode(out),
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        if bool::decode(reader)? {
            Ok(Some(T::decode(reader)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(reader)? as usize;
        // Every non-zero-sized element consumes at least one byte on the wire,
        // so a length prefix past the frame's remaining bytes can only be
        // corruption: fail fast instead of looping over it (the capacity below
        // is clamped for the same reason — never trust the prefix alone).
        if std::mem::size_of::<T>() != 0 && len > reader.remaining() {
            return Err(WireError::new(format!(
                "sequence length {len} exceeds the {} bytes remaining",
                reader.remaining()
            )));
        }
        let mut items = Vec::with_capacity(len.min(1_024));
        for _ in 0..len {
            items.push(T::decode(reader)?);
        }
        Ok(items)
    }
}

impl WireEncode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
}

impl WireDecode for () {
    fn decode(_reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

macro_rules! impl_wire_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: WireEncode),+> WireEncode for ($($name,)+) {
                fn encode(&self, out: &mut Vec<u8>) {
                    $(self.$idx.encode(out);)+
                }
            }
            impl<$($name: WireDecode),+> WireDecode for ($($name,)+) {
                fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                    Ok(($($name::decode(reader)?,)+))
                }
            }
        )+
    };
}

// Keyed payloads such as `(key, value)` readings cross shard-group links directly.
impl_wire_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl WireEncode for Timestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_millis().encode(out);
    }
}

impl WireDecode for Timestamp {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp::from_millis(u64::decode(reader)?))
    }
}

impl WireEncode for TupleId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.seq.encode(out);
    }
}

impl WireDecode for TupleId {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TupleId::new(u32::decode(reader)?, u64::decode(reader)?))
    }
}

impl WireEncode for OpKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            OpKind::Source => 0,
            OpKind::Map => 1,
            OpKind::Multiplex => 2,
            OpKind::Join => 3,
            OpKind::Aggregate => 4,
            OpKind::Remote => 5,
        };
        tag.encode(out);
    }
}

impl WireDecode for OpKind {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            0 => Ok(OpKind::Source),
            1 => Ok(OpKind::Map),
            2 => Ok(OpKind::Multiplex),
            3 => Ok(OpKind::Join),
            4 => Ok(OpKind::Aggregate),
            5 => Ok(OpKind::Remote),
            other => Err(WireError::new(format!("unknown OpKind tag {other}"))),
        }
    }
}

macro_rules! impl_wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl WireEncode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$field.encode(out);)+
            }
        }
        impl WireDecode for $ty {
            fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Self {
                    $($field: WireDecode::decode(reader)?,)+
                })
            }
        }
    };
}

impl_wire_struct!(PositionReport { car_id, speed, pos });
impl_wire_struct!(StoppedCarCount {
    car_id,
    count,
    distinct_pos,
    last_pos
});
impl_wire_struct!(AccidentAlert { pos, stopped_cars });
impl_wire_struct!(MeterReading {
    meter_id,
    consumption,
    hour_of_day
});
impl_wire_struct!(DailyConsumption { meter_id, total });
impl_wire_struct!(BlackoutAlert { zero_meters });
impl_wire_struct!(AnomalyAlert {
    meter_id,
    consumption_diff
});

impl<S: WireEncode> WireEncode for SourceRecord<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ts.encode(out);
        self.id.encode(out);
        self.data.encode(out);
    }
}

impl<S: WireDecode> WireDecode for SourceRecord<S> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SourceRecord {
            ts: Timestamp::decode(reader)?,
            id: TupleId::decode(reader)?,
            data: S::decode(reader)?,
        })
    }
}

impl<T: WireEncode, S: WireEncode> WireEncode for UnfoldedEvent<T, S> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sink_ts.encode(out);
        self.sink_id.encode(out);
        self.sink_data.encode(out);
        self.origin_kind.encode(out);
        self.origin_ts.encode(out);
        self.origin_id.encode(out);
        self.origin_data.encode(out);
    }
}

impl<T: WireDecode, S: WireDecode> WireDecode for UnfoldedEvent<T, S> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(UnfoldedEvent {
            sink_ts: Timestamp::decode(reader)?,
            sink_id: TupleId::decode(reader)?,
            sink_data: T::decode(reader)?,
            origin_kind: OpKind::decode(reader)?,
            origin_ts: Timestamp::decode(reader)?,
            origin_id: TupleId::decode(reader)?,
            origin_data: Option::<S>::decode(reader)?,
        })
    }
}

impl<S: WireEncode> WireEncode for UpstreamEvent<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sink_id.encode(out);
        self.sink_ts.encode(out);
        self.origin_kind.encode(out);
        self.origin_ts.encode(out);
        self.origin_id.encode(out);
        self.origin_data.encode(out);
    }
}

impl<S: WireDecode> WireDecode for UpstreamEvent<S> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(UpstreamEvent {
            sink_id: TupleId::decode(reader)?,
            sink_ts: Timestamp::decode(reader)?,
            origin_kind: OpKind::decode(reader)?,
            origin_ts: Timestamp::decode(reader)?,
            origin_id: TupleId::decode(reader)?,
            origin_data: Option::<S>::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(513u16);
        round_trip(70_000u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip("hello ⚡".to_string());
        round_trip(Option::<u32>::None);
        round_trip(Some(9u32));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Timestamp::from_secs(120));
        round_trip(TupleId::new(3, 99));
    }

    #[test]
    fn op_kinds_round_trip() {
        for kind in [
            OpKind::Source,
            OpKind::Map,
            OpKind::Multiplex,
            OpKind::Join,
            OpKind::Aggregate,
            OpKind::Remote,
        ] {
            round_trip(kind);
        }
    }

    #[test]
    fn workload_schemas_round_trip() {
        round_trip(PositionReport {
            car_id: 7,
            speed: 0,
            pos: 42,
        });
        round_trip(StoppedCarCount {
            car_id: 7,
            count: 4,
            distinct_pos: 1,
            last_pos: 42,
        });
        round_trip(AccidentAlert {
            pos: 10,
            stopped_cars: 2,
        });
        round_trip(MeterReading {
            meter_id: 3,
            consumption: 11,
            hour_of_day: 0,
        });
        round_trip(DailyConsumption {
            meter_id: 3,
            total: 264,
        });
        round_trip(BlackoutAlert { zero_meters: 8 });
        round_trip(AnomalyAlert {
            meter_id: 5,
            consumption_diff: 11_760,
        });
    }

    #[test]
    fn unfolded_events_round_trip() {
        round_trip(UnfoldedEvent::<StoppedCarCount, PositionReport> {
            sink_ts: Timestamp::from_secs(60),
            sink_id: TupleId::new(1, 2),
            sink_data: StoppedCarCount {
                car_id: 1,
                count: 4,
                distinct_pos: 1,
                last_pos: 9,
            },
            origin_kind: OpKind::Remote,
            origin_ts: Timestamp::from_secs(30),
            origin_id: TupleId::new(0, 5),
            origin_data: None,
        });
        round_trip(UpstreamEvent::<PositionReport> {
            sink_id: TupleId::new(0, 5),
            sink_ts: Timestamp::from_secs(30),
            origin_kind: OpKind::Source,
            origin_ts: Timestamp::from_secs(1),
            origin_id: TupleId::new(0, 1),
            origin_data: Some(PositionReport {
                car_id: 1,
                speed: 0,
                pos: 9,
            }),
        });
        round_trip(SourceRecord::<MeterReading> {
            ts: Timestamp::from_hours(3),
            id: TupleId::new(2, 2),
            data: MeterReading {
                meter_id: 1,
                consumption: 10,
                hour_of_day: 3,
            },
        });
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = TupleId::new(1, 2).to_bytes();
        assert!(TupleId::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(u32::from_bytes(&[1, 2]).is_err());
        let err = OpKind::from_bytes(&[99]).unwrap_err();
        assert!(err.to_string().contains("unknown OpKind"));
    }

    #[test]
    fn corrupt_sequence_lengths_fail_fast() {
        // A length prefix claiming 4 billion elements in a 4-byte frame must be
        // rejected on the prefix alone, without looping or allocating for it.
        let err = Vec::<u64>::from_bytes(&u32::MAX.to_le_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "got: {err}");
        // A plausible-but-wrong length still errors out on the missing element.
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        1u8.encode(&mut buf);
        assert!(Vec::<u8>::from_bytes(&buf).is_err());
    }

    #[test]
    fn decoding_consumes_exactly_the_encoded_bytes() {
        let mut buf = Vec::new();
        7u32.encode(&mut buf);
        "x".to_string().encode(&mut buf);
        let mut reader = WireReader::new(&buf);
        assert_eq!(u32::decode(&mut reader).unwrap(), 7);
        assert_eq!(String::decode(&mut reader).unwrap(), "x");
        assert_eq!(reader.remaining(), 0);
    }
}
