//! Three-instance deployments of the evaluation queries (Figures 7, 9C, 10C, 11C).
//!
//! Each deployment runs three independent engine runtimes ("SPE instances"):
//!
//! 1. **Instance 1** — the query's Source and first processing stage; under GeneaLog it
//!    also hosts a single-stream unfolder whose unfolded stream is shipped to the
//!    provenance instance.
//! 2. **Instance 2** — the remaining processing stage and the data Sink; under GeneaLog
//!    it hosts the unfolder of the delivering stream feeding the Sink.
//! 3. **Instance 3** — the provenance instance: under GeneaLog it runs the multi-stream
//!    unfolder (MU) that stitches the two unfolded streams together and persists the
//!    complete provenance; under the baseline it merely receives the source streams the
//!    baseline has to ship.
//!
//! All three functions block until the deployment has drained and return a
//! [`DistributedOutcome`] with the per-instance reports, the alerts, the captured
//! provenance and the per-link traffic counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use genealog_control::json;
use genealog_metrics::{decode_samples, MetricsRegistry};
use genealog_spe::logical::{LogicalPlan, LogicalStream};
use genealog_spe::operator::sink::{CollectedStream, SinkStats};
use genealog_spe::operator::source::{SourceConfig, SourceGenerator};
use genealog_spe::provenance::{NoProvenance, ProvenanceSystem};
use genealog_spe::query::{NodeId, NodeKind, Query, QueryConfig, ShardPlacement, StreamRef};
use genealog_spe::runtime::{QueryCompletion, QueryHandle, QueryReport};
use genealog_spe::tuple::TupleData;
use genealog_spe::{Duration, SpeError, Timestamp};

use genealog::{
    attach_multi_unfolder, attach_unfolder, GeneaLog, GlMeta, SourceRecord, UnfoldedEvent,
    UnfoldedTuple, UpstreamEvent,
};
use genealog_baseline::AriadneBaseline;

use crate::endpoint::{ReceiveOp, SendOp, WireProvenance};
use crate::fault::{FaultySender, LinkFaults};
use crate::network::{FrameSink, FrameSource, LinkStats, NetworkConfig, SharedLink, SimulatedLink};
use crate::wire::{WireDecode, WireEncode};

/// Adds a Send operator shipping `stream` onto `link` (extension of the query
/// builder), returning the node id of the endpoint.
pub fn add_send<T, P, L>(
    q: &mut Query<P>,
    name: &str,
    stream: StreamRef<T, P::Meta>,
    link: L,
) -> NodeId
where
    T: TupleData + WireEncode,
    P: WireProvenance,
    L: FrameSink,
{
    let node = q.add_node(name, NodeKind::Custom("send"));
    let rx = q.attach_input(stream, node);
    let op = SendOp::new(name, rx, link, q.provenance().clone());
    q.set_operator(node, Box::new(op));
    node
}

/// Adds a Receive operator materialising the stream arriving on `link`.
pub fn add_receive<T, P, L>(q: &mut Query<P>, name: &str, link: L) -> StreamRef<T, P::Meta>
where
    T: TupleData + WireDecode,
    P: genealog_spe::provenance::ProvenanceSystem,
    L: FrameSource,
{
    let node = q.add_node(name, NodeKind::Custom("receive"));
    let (slot, stream) = q.new_output_stream(node, format!("{name}.out"));
    let op = ReceiveOp::new(name, link, slot, q.provenance().clone())
        .with_checkpoints(q.checkpoint_handle());
    q.set_operator(node, Box::new(op));
    stream
}

/// Terminates a [`LogicalStream`] with a Send endpoint shipping it onto `link`
/// (the logical-plan counterpart of [`add_send`]; the endpoint is spliced in at
/// lowering time).
pub fn send_stream<T, P, L>(stream: LogicalStream<P, T>, name: &str, link: L)
where
    T: TupleData + WireEncode,
    P: WireProvenance,
    L: FrameSink,
{
    let owned = name.to_string();
    stream.raw_sink(name, move |q, s| {
        add_send(q, &owned, s, link);
    });
}

/// Roots a [`LogicalStream`] at a Receive endpoint materialising the stream
/// arriving on `link` (the logical-plan counterpart of [`add_receive`]).
pub fn receive_stream<T, P, L>(plan: &LogicalPlan<P>, name: &str, link: L) -> LogicalStream<P, T>
where
    T: TupleData + WireDecode,
    P: ProvenanceSystem,
    L: FrameSource,
{
    let owned = name.to_string();
    plan.extend_source(name, "receive", move |q| add_receive(q, &owned, link))
}

/// The provenance of one sink tuple as captured at the provenance instance.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord<D, S> {
    /// Unique id of the sink tuple.
    pub sink_id: genealog_spe::tuple::TupleId,
    /// Timestamp of the sink tuple.
    pub sink_ts: Timestamp,
    /// Payload of the sink tuple.
    pub sink_data: D,
    /// The contributing source tuples.
    pub sources: Vec<SourceRecord<S>>,
}

/// Result of a completed distributed run.
#[derive(Debug)]
pub struct DistributedOutcome<D, S> {
    /// Per-instance execution reports (instance 1, instance 2, provenance instance).
    pub reports: Vec<QueryReport>,
    /// The alerts received by the data Sink on instance 2.
    pub alerts: Vec<(Timestamp, D)>,
    /// Latency statistics of the data Sink.
    pub sink_stats: Arc<SinkStats>,
    /// The per-sink-tuple provenance assembled at the provenance instance (empty for
    /// the NP and BL configurations).
    pub provenance: Vec<ProvenanceRecord<D, S>>,
    /// Bytes shipped on the instance-1 → instance-2 data link.
    pub data_link_bytes: u64,
    /// Bytes shipped on the links towards the provenance instance.
    pub provenance_link_bytes: u64,
}

impl<D, S> DistributedOutcome<D, S> {
    /// Total source tuples injected by instance 1.
    pub fn source_tuples(&self) -> u64 {
        self.reports
            .first()
            .map(QueryReport::source_tuples)
            .unwrap_or(0)
    }

    /// Total bytes shipped over the simulated network.
    pub fn total_network_bytes(&self) -> u64 {
        self.data_link_bytes + self.provenance_link_bytes
    }
}

/// Groups a stream of unfolded events into one [`ProvenanceRecord`] per sink tuple,
/// preserving the order in which sink tuples first appeared.
pub fn group_provenance<D, S>(events: Vec<UnfoldedEvent<D, S>>) -> Vec<ProvenanceRecord<D, S>>
where
    D: TupleData,
    S: TupleData,
{
    let mut order: Vec<genealog_spe::tuple::TupleId> = Vec::new();
    let mut groups: std::collections::HashMap<
        genealog_spe::tuple::TupleId,
        ProvenanceRecord<D, S>,
    > = std::collections::HashMap::new();
    for event in events {
        let entry = groups.entry(event.sink_id).or_insert_with(|| {
            order.push(event.sink_id);
            ProvenanceRecord {
                sink_id: event.sink_id,
                sink_ts: event.sink_ts,
                sink_data: event.sink_data.clone(),
                sources: Vec::new(),
            }
        });
        if let Some(record) = event.source_record() {
            entry.sources.push(record);
        }
    }
    order
        .into_iter()
        .filter_map(|id| groups.remove(&id))
        .collect()
}

// ---------------------------------------------------------------------------
// Distributed shard groups: spanning the Partition exchange across SPE instances
// ---------------------------------------------------------------------------

/// The physical links wiring one remote shard to its originating instance, as
/// built by a [`ShardTransport`].
///
/// The forward link carries the shard's partitioned sub-stream origin → remote;
/// the return link is multiplexed into `back_channels` logical channels
/// remote → origin. Channel index semantics are fixed by the shard-group
/// builders: channel 0 is the shard's result stream, channel 1 (GeneaLog groups
/// only) the unfolded provenance stream, and the last channel the instance's
/// live metrics snapshots.
pub struct ShardWiring {
    /// Origin-side sender of the forward link.
    pub forward_tx: Box<dyn FrameSink>,
    /// Remote-side receiver of the forward link.
    pub forward_rx: Box<dyn FrameSource>,
    /// Traffic counters of the forward link.
    pub forward_stats: Arc<LinkStats>,
    /// Remote-side senders of the return link's channels, in channel order.
    pub back_txs: Vec<Box<dyn FrameSink>>,
    /// Origin-side receivers of the return link's channels, in channel order.
    pub back_rxs: Vec<Box<dyn FrameSource>>,
    /// Traffic counters of the (shared) return link.
    pub back_stats: Arc<LinkStats>,
}

/// The transport seam of the distributed shard-group builders: everything above
/// it — wire framing, sequence numbers, provenance stitching, metrics
/// shipping — is transport-agnostic, so swapping [`SimulatedTransport`] for the
/// TCP transport (or anything else that moves frames) changes no bytes.
pub trait ShardTransport {
    /// Builds the forward and return links of shard `shard`, the return link
    /// multiplexed into `back_channels` channels.
    ///
    /// # Errors
    /// Returns an error when the transport cannot establish the links (e.g. a
    /// socket transport failing to connect).
    fn shard_links(&self, shard: usize, back_channels: usize) -> Result<ShardWiring, SpeError>;
}

/// The in-process [`ShardTransport`]: a [`SimulatedLink`] per direction with the
/// configured bandwidth/latency model, exactly what the shard-group builders
/// wired before the transport seam existed.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedTransport {
    network: NetworkConfig,
}

impl SimulatedTransport {
    /// A transport with the given link characteristics.
    pub fn new(network: NetworkConfig) -> Self {
        SimulatedTransport { network }
    }
}

impl ShardTransport for SimulatedTransport {
    fn shard_links(&self, _shard: usize, back_channels: usize) -> Result<ShardWiring, SpeError> {
        let (forward_tx, forward_rx, forward_stats) = SimulatedLink::new(self.network);
        let (back_txs, back_rxs, back_stats) = SharedLink::new(back_channels, self.network);
        Ok(ShardWiring {
            forward_tx: Box::new(forward_tx),
            forward_rx: Box::new(forward_rx),
            forward_stats,
            back_txs: back_txs
                .into_iter()
                .map(|tx| Box::new(tx) as Box<dyn FrameSink>)
                .collect(),
            back_rxs: back_rxs
                .into_iter()
                .map(|rx| Box::new(rx) as Box<dyn FrameSource>)
                .collect(),
            back_stats,
        })
    }
}

/// Traffic counters of the links connecting one remote shard to its originating
/// instance.
#[derive(Debug, Clone)]
pub struct ShardLinks {
    /// Traffic origin → remote (the shard's partitioned sub-stream).
    pub forward: Arc<LinkStats>,
    /// Traffic remote → origin (the shard results; for groups built with
    /// [`remote_shard_group_gl`] the unfolded provenance events share this same
    /// physical link, multiplexed — [`remote_shard_group`] ships results only).
    pub back: Arc<LinkStats>,
}

/// The remote SPE instances hosting the shards of one distributed shard group.
///
/// Returned by [`remote_shard_group`] / [`remote_shard_group_gl`] alongside the
/// [`ShardPlacement`]s to hand to
/// `Query::sharded_aggregate_placed`. After the originating query has drained, call
/// [`RemoteShardGroup::wait`] to join the remote instances and fold their reports
/// into the origin's with
/// [`QueryReport::merge_distributed`](genealog_spe::runtime::QueryReport).
pub struct RemoteShardGroup {
    handles: Vec<QueryHandle>,
    links: Vec<ShardLinks>,
    shippers: Vec<MetricsShipper>,
    metrics_rxs: Vec<Box<dyn FrameSource>>,
    pumps: Vec<JoinHandle<()>>,
}

/// The thread continuously shipping one remote instance's metrics registry over a
/// channel of its return link, plus the flag that asks it for a final snapshot.
pub(crate) struct MetricsShipper {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl MetricsShipper {
    /// Asks the shipper for its final snapshot and joins the thread.
    pub(crate) fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

/// Spawns the shipper thread of one remote instance: every ~20 ms (and once more
/// after the instance has drained, so the last shipment carries the final counter
/// values) it encodes the instance's registry and pushes it onto `link`.
///
/// The shipper's lifetime is tied to the *engine*, not to [`RemoteShardGroup::wait`]:
/// `link` is a sender clone of the shared physical return link, and the origin's
/// ingress detects a dead remote instance by that link closing. A shipper that kept
/// its sender alive after the engine tore down (e.g. a severed data channel failing
/// the remote mid-stream) would hold the link open forever and the originating
/// query — and with it the whole recovery path — would wedge waiting for an
/// end-of-stream that can no longer arrive.
pub(crate) fn spawn_metrics_shipper<L: FrameSink>(
    registry: Arc<MetricsRegistry>,
    link: L,
    engine: QueryCompletion,
) -> MetricsShipper {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_in_thread = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        while !stop_in_thread.load(Ordering::Relaxed) && !engine.is_finished() {
            if !link.send_frame(registry.encode_snapshot()) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Final snapshot, then drop the sender so the physical link can close.
        let _ = link.send_frame(registry.encode_snapshot());
    });
    MetricsShipper { stop, thread }
}

impl RemoteShardGroup {
    /// Assembles a group from already-wired parts. The `spe-node` client path
    /// uses this with no local handles or shippers: the queries run in the node
    /// processes, so `wait` only drains the metrics pumps.
    pub(crate) fn from_parts(
        handles: Vec<QueryHandle>,
        links: Vec<ShardLinks>,
        shippers: Vec<MetricsShipper>,
        metrics_rxs: Vec<Box<dyn FrameSource>>,
    ) -> Self {
        RemoteShardGroup {
            handles,
            links,
            shippers,
            metrics_rxs,
            pumps: Vec::new(),
        }
    }

    /// Streams the remote instances' registry snapshots into `registry` (normally
    /// the originating query's, see `Query::registry`): shard `i` installs as
    /// remote instance `{name}[i]`, making the spanning shard group one live
    /// metrics surface at the origin. The pump threads drain until the shard
    /// links close; [`RemoteShardGroup::wait`] joins them, so after it returns the
    /// registry holds every shard's final snapshot.
    pub fn stream_metrics_into(&mut self, name: &str, registry: &Arc<MetricsRegistry>) {
        for (i, link) in self.links.iter().enumerate() {
            link.forward
                .export_dropped_frames(registry, &format!("{name}[{i}].forward"));
            link.back
                .export_dropped_frames(registry, &format!("{name}[{i}].back"));
        }
        for (i, rx) in self.metrics_rxs.drain(..).enumerate() {
            let registry = Arc::clone(registry);
            let key = format!("{name}[{i}]");
            self.pumps.push(std::thread::spawn(move || {
                while let Some(frame) = rx.recv_frame() {
                    if let Some(samples) = decode_samples(&frame) {
                        registry.install_remote(&key, samples);
                    }
                }
            }));
        }
    }

    /// Number of remote SPE instances in the group.
    pub fn instances(&self) -> usize {
        self.handles.len()
    }

    /// Per-shard link statistics, in shard order.
    pub fn links(&self) -> &[ShardLinks] {
        &self.links
    }

    /// Total bytes shipped from the originating instance to the remote shards.
    pub fn forward_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.forward.bytes()).sum()
    }

    /// Total bytes shipped from the remote shards back to the originating instance.
    pub fn back_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.back.bytes()).sum()
    }

    /// Waits for every remote instance to drain and returns their reports, in shard
    /// order.
    ///
    /// # Errors
    /// Returns the first remote instance's engine error encountered.
    pub fn wait(self) -> Result<Vec<QueryReport>, SpeError> {
        let reports: Result<Vec<QueryReport>, SpeError> =
            self.handles.into_iter().map(QueryHandle::wait).collect();
        // The remote queries have drained: ask each shipper for its final snapshot,
        // then join the pumps (they stop once the shard links close), so the
        // origin's registry reads the shards' final counters after this returns.
        for shipper in self.shippers {
            shipper.stop();
        }
        drop(self.metrics_rxs);
        for pump in self.pumps {
            let _ = pump.join();
        }
        reports
    }
}

/// What [`remote_shard_group`] hands back: the per-shard placements for the
/// originating query and the handle joining the remote instances.
pub type ShardGroupDeployment<P, I, O> = (Vec<ShardPlacement<P, I, O>>, RemoteShardGroup);

/// The placement that splices one remote shard into the originating query: egress
/// Send onto the forward link, ingress Receive from the return link, both tagged
/// into per-endpoint shard groups so the runtime folds their reports across the
/// group. Shared by [`remote_shard_group`] and [`remote_shard_group_gl`] so the
/// two paths cannot drift apart.
pub(crate) fn splice_remote_shard<P, I, O, S, R>(
    name: &str,
    instances: usize,
    forward_tx: S,
    return_rx: R,
) -> ShardPlacement<P, I, O>
where
    P: WireProvenance,
    I: TupleData + WireEncode,
    O: TupleData + WireDecode,
    S: FrameSink,
    R: FrameSource,
{
    let group_name = name.to_string();
    ShardPlacement::remote(
        move |q: &mut Query<P>, idx: usize, shard: StreamRef<I, P::Meta>| {
            let egress = add_send(q, &format!("{group_name}.egress[{idx}]"), shard, forward_tx);
            q.set_shard_group(egress, format!("{group_name}.egress"), instances);
            let stream: StreamRef<O, P::Meta> =
                add_receive(q, &format!("{group_name}.ingress[{idx}]"), return_rx);
            q.set_shard_group(
                stream.producer(),
                format!("{group_name}.ingress"),
                instances,
            );
            stream
        },
    )
}

/// Builds the remote SPE instances of a distributed shard group and the matching
/// [`ShardPlacement`]s for the originating query.
///
/// For each of the `instances` shards this spawns a dedicated SPE instance running
/// `ReceiveOp → (the plan built by `build`) → SendOp`, connected to the origin by a
/// forward and a return [`SimulatedLink`]. The returned placements splice each shard
/// into the origin's Partition exchange: the shard's partitioned sub-stream leaves
/// through an instrumented Send (`{name}.egress[i]`), and the remote results re-enter
/// through a Receive (`{name}.ingress[i]`) feeding the provenance-safe fan-in.
///
/// `provenance` is called once per instance so each remote engine gets its own id
/// namespace (e.g. `GeneaLog::for_instance`); `build` should name the shard operator
/// with the group's logical name (the same in every instance) so
/// [`QueryReport::merge_distributed`](genealog_spe::runtime::QueryReport) folds the
/// per-instance reports into one operator with an `instances` count, exactly like a
/// local shard group.
///
/// # Errors
/// Propagates deployment errors from the remote instances.
pub fn remote_shard_group<P, I, O, PF, B>(
    name: &str,
    instances: usize,
    network: NetworkConfig,
    config: QueryConfig,
    provenance: PF,
    build: B,
) -> Result<ShardGroupDeployment<P, I, O>, SpeError>
where
    P: WireProvenance,
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    PF: Fn(usize) -> P,
    B: Fn(&mut Query<P>, usize, StreamRef<I, P::Meta>) -> StreamRef<O, P::Meta>,
{
    remote_shard_group_over(
        name,
        instances,
        &SimulatedTransport::new(network),
        config,
        provenance,
        build,
    )
}

/// [`remote_shard_group`] over an explicit [`ShardTransport`] — the same wiring,
/// provenance semantics and metrics shipping, with the physical links supplied by
/// `transport` (e.g. `TcpLoopbackTransport` for real sockets) instead of the
/// in-process [`SimulatedLink`].
///
/// # Errors
/// Propagates link-establishment errors from the transport and deployment errors
/// from the remote instances.
pub fn remote_shard_group_over<P, I, O, PF, B>(
    name: &str,
    instances: usize,
    transport: &dyn ShardTransport,
    config: QueryConfig,
    provenance: PF,
    build: B,
) -> Result<ShardGroupDeployment<P, I, O>, SpeError>
where
    P: WireProvenance,
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    PF: Fn(usize) -> P,
    B: Fn(&mut Query<P>, usize, StreamRef<I, P::Meta>) -> StreamRef<O, P::Meta>,
{
    assert!(instances > 0, "a shard group needs at least one instance");
    let mut placements = Vec::with_capacity(instances);
    let mut handles = Vec::with_capacity(instances);
    let mut links = Vec::with_capacity(instances);
    let mut shippers = Vec::with_capacity(instances);
    let mut metrics_rxs = Vec::with_capacity(instances);
    for i in 0..instances {
        // One physical return link, two multiplexed channels: shard results and the
        // instance's live metrics snapshots.
        let ShardWiring {
            forward_tx,
            forward_rx,
            forward_stats,
            mut back_txs,
            mut back_rxs,
            back_stats,
        } = transport.shard_links(i, 2)?;
        let metrics_tx = back_txs.pop().expect("two channels");
        let data_tx = back_txs.pop().expect("two channels");
        let metrics_rx = back_rxs.pop().expect("two channels");
        let data_rx = back_rxs.pop().expect("two channels");

        let mut remote = Query::with_config(provenance(i), config);
        let received: StreamRef<I, P::Meta> =
            add_receive(&mut remote, &format!("{name}.recv"), forward_rx);
        let out = build(&mut remote, i, received);
        add_send(&mut remote, &format!("{name}.send"), out, data_tx);
        let handle = remote.deploy()?;
        if handle.registry().is_enabled() {
            shippers.push(spawn_metrics_shipper(
                handle.registry(),
                metrics_tx,
                handle.completion(),
            ));
        }
        handles.push(handle);

        placements.push(splice_remote_shard(name, instances, forward_tx, data_rx));
        links.push(ShardLinks {
            forward: forward_stats,
            back: back_stats,
        });
        metrics_rxs.push(metrics_rx);
    }
    Ok((
        placements,
        RemoteShardGroup {
            handles,
            links,
            shippers,
            metrics_rxs,
            pumps: Vec::new(),
        },
    ))
}

/// A distributed shard group under **GeneaLog**: the placements, the remote
/// instances, and the per-shard provenance streams needed to stitch lineage across
/// the REMOTE boundary (see [`attach_shard_provenance_sink`]).
pub struct GlShardGroup<I, O> {
    /// Placements for `Query::sharded_aggregate_placed` on the originating query.
    pub placements: Vec<ShardPlacement<GeneaLog, I, O>>,
    /// The remote instances and link counters.
    pub group: RemoteShardGroup,
    /// Per-shard receivers of the remote instances' unfolded provenance streams
    /// (`UpstreamEvent<I>` frames, multiplexed onto the shards' return links).
    pub provenance_links: Vec<Box<dyn FrameSource>>,
}

/// [`remote_shard_group`] under **GeneaLog**, with cross-boundary provenance.
///
/// Each remote instance additionally runs a single-stream unfolder on its shard
/// output and ships the unfolded stream — mapped to [`UpstreamEvent`]s keyed by the
/// delivering tuple's id — back to the origin on a second channel of the shard's
/// return link (multiplexed, [`SharedLink`]). The origin resolves the REMOTE
/// originating tuples of its own unfolded sink stream against these upstream streams
/// with the multi-stream unfolder (Definition 6.4), which is what makes the
/// distributed shard group's contribution sets identical to the single-instance
/// plan's.
///
/// Remote instance `i` uses the GeneaLog id namespace `first_instance + i`; the
/// originating query must use a different one.
///
/// # Errors
/// Propagates deployment errors from the remote instances.
pub fn remote_shard_group_gl<I, O, B>(
    name: &str,
    instances: usize,
    first_instance: u32,
    network: NetworkConfig,
    config: QueryConfig,
    build: B,
) -> Result<GlShardGroup<I, O>, SpeError>
where
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    B: Fn(&mut Query<GeneaLog>, usize, StreamRef<I, GlMeta>) -> StreamRef<O, GlMeta>,
{
    remote_shard_group_gl_with_faults(
        name,
        instances,
        |i| GeneaLog::for_instance(first_instance + i as u32),
        network,
        config,
        |_| LinkFaults::none(),
        build,
    )
}

/// [`remote_shard_group_gl`] over an explicit [`ShardTransport`]: identical
/// provenance stitching and metrics shipping, with the shard links supplied by the
/// transport instead of the in-process [`SimulatedLink`].
///
/// # Errors
/// Propagates link-establishment errors from the transport and deployment errors
/// from the remote instances.
pub fn remote_shard_group_gl_over<I, O, B>(
    name: &str,
    instances: usize,
    first_instance: u32,
    transport: &dyn ShardTransport,
    config: QueryConfig,
    build: B,
) -> Result<GlShardGroup<I, O>, SpeError>
where
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    B: Fn(&mut Query<GeneaLog>, usize, StreamRef<I, GlMeta>) -> StreamRef<O, GlMeta>,
{
    remote_shard_group_gl_with_faults_over(
        name,
        instances,
        |i| GeneaLog::for_instance(first_instance + i as u32),
        transport,
        config,
        |_| LinkFaults::none(),
        build,
    )
}

/// [`remote_shard_group_gl`] with frame faults injected on the remote → origin data
/// channel of selected shards.
///
/// `faults` is called once per shard index; the returned [`LinkFaults`] decorate the
/// shard's return-link data channel with a [`FaultySender`]. A severed channel
/// surfaces at the origin's ingress as a mid-stream close, a dropped frame as a
/// sequence gap — both fail the originating query into the recovery path, which is
/// exactly what the fault-injection tests drive. Pass `|_| LinkFaults::none()` (or
/// use [`remote_shard_group_gl`]) for a healthy deployment.
///
/// `systems` supplies the [`GeneaLog`] instance for each shard index instead of the
/// plain `first_instance` namespace offset of [`remote_shard_group_gl`]. Recovery
/// drivers need this: tuple ids must stay unique across restart attempts (the
/// checkpointed provenance prefix is grouped by sink tuple id, so a rebuilt engine
/// that restarts its id counter at zero could collide with ids already persisted by
/// the failed attempt). Passing clones of one long-lived system per shard keeps the
/// shared id counter monotone across attempts.
///
/// # Errors
/// Propagates deployment errors from the remote instances.
#[allow(clippy::too_many_arguments)]
pub fn remote_shard_group_gl_with_faults<I, O, B, FF, SF>(
    name: &str,
    instances: usize,
    systems: SF,
    network: NetworkConfig,
    config: QueryConfig,
    faults: FF,
    build: B,
) -> Result<GlShardGroup<I, O>, SpeError>
where
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    B: Fn(&mut Query<GeneaLog>, usize, StreamRef<I, GlMeta>) -> StreamRef<O, GlMeta>,
    FF: Fn(usize) -> LinkFaults,
    SF: Fn(usize) -> GeneaLog,
{
    remote_shard_group_gl_with_faults_over(
        name,
        instances,
        systems,
        &SimulatedTransport::new(network),
        config,
        faults,
        build,
    )
}

/// [`remote_shard_group_gl_with_faults`] over an explicit [`ShardTransport`].
///
/// Frame faults injected through `faults` decorate the data channel *above* the
/// transport, so they compose with whatever failure modes the transport itself has
/// (a TCP transport can additionally kill sockets underneath the mux — see
/// `TcpLoopbackTransport::with_return_kill`).
///
/// # Errors
/// Propagates link-establishment errors from the transport and deployment errors
/// from the remote instances.
#[allow(clippy::too_many_arguments)]
pub fn remote_shard_group_gl_with_faults_over<I, O, B, FF, SF>(
    name: &str,
    instances: usize,
    systems: SF,
    transport: &dyn ShardTransport,
    config: QueryConfig,
    faults: FF,
    build: B,
) -> Result<GlShardGroup<I, O>, SpeError>
where
    I: TupleData + WireEncode + WireDecode,
    O: TupleData + WireEncode + WireDecode,
    B: Fn(&mut Query<GeneaLog>, usize, StreamRef<I, GlMeta>) -> StreamRef<O, GlMeta>,
    FF: Fn(usize) -> LinkFaults,
    SF: Fn(usize) -> GeneaLog,
{
    assert!(instances > 0, "a shard group needs at least one instance");
    let mut placements = Vec::with_capacity(instances);
    let mut handles = Vec::with_capacity(instances);
    let mut links = Vec::with_capacity(instances);
    let mut provenance_links = Vec::with_capacity(instances);
    let mut shippers = Vec::with_capacity(instances);
    let mut metrics_rxs = Vec::with_capacity(instances);
    for i in 0..instances {
        // One physical return link, three multiplexed channels: shard results, the
        // unfolded provenance stream, and the instance's live metrics snapshots.
        let ShardWiring {
            forward_tx,
            forward_rx,
            forward_stats,
            mut back_txs,
            mut back_rxs,
            back_stats,
        } = transport.shard_links(i, 3)?;
        let metrics_tx = back_txs.pop().expect("three channels");
        let provenance_tx = back_txs.pop().expect("three channels");
        let data_tx = back_txs.pop().expect("three channels");
        let metrics_rx = back_rxs.pop().expect("three channels");
        let provenance_rx = back_rxs.pop().expect("three channels");
        let data_rx = back_rxs.pop().expect("three channels");

        let mut remote = Query::with_config(systems(i), config);
        let received: StreamRef<I, GlMeta> =
            add_receive(&mut remote, &format!("{name}.recv"), forward_rx);
        let out = build(&mut remote, i, received);
        let (to_send, unfolded) = attach_unfolder(&mut remote, &format!("{name}.su"), out);
        let data_tx = FaultySender::new(data_tx, faults(i));
        add_send(&mut remote, &format!("{name}.send"), to_send, data_tx);
        let events = remote.map_one(
            &format!("{name}.su.events"),
            unfolded,
            |u: &UnfoldedTuple<O>| u.to_event::<I>().to_upstream(),
        );
        add_send(
            &mut remote,
            &format!("{name}.send.prov"),
            events,
            provenance_tx,
        );
        let handle = remote.deploy()?;
        if handle.registry().is_enabled() {
            shippers.push(spawn_metrics_shipper(
                handle.registry(),
                metrics_tx,
                handle.completion(),
            ));
        }
        handles.push(handle);

        placements.push(splice_remote_shard(name, instances, forward_tx, data_rx));
        links.push(ShardLinks {
            forward: forward_stats,
            back: back_stats,
        });
        provenance_links.push(provenance_rx);
        metrics_rxs.push(metrics_rx);
    }
    Ok(GlShardGroup {
        placements,
        group: RemoteShardGroup {
            handles,
            links,
            shippers,
            metrics_rxs,
            pumps: Vec::new(),
        },
        provenance_links,
    })
}

/// Collects the stitched provenance of a query whose plan contains distributed shard
/// groups (the output of [`attach_shard_provenance_sink`]).
#[derive(Debug, Clone)]
pub struct ShardProvenanceCollector<O, S> {
    collected: CollectedStream<UnfoldedEvent<O, S>, GlMeta>,
}

impl<O: TupleData, S: TupleData> ShardProvenanceCollector<O, S> {
    /// Number of unfolded events collected (one per sink-tuple/source-tuple pair).
    pub fn event_count(&self) -> usize {
        self.collected.len()
    }

    /// The per-sink-tuple provenance, in sink order.
    pub fn records(&self) -> Vec<ProvenanceRecord<O, S>> {
        group_provenance(
            self.collected
                .tuples()
                .iter()
                .map(|t| t.data.clone())
                .collect(),
        )
    }

    /// Resolves a control-endpoint provenance query against the stitched shard
    /// provenance: parses `sink_id` (`origin#seq` or `origin-seq`) and renders that
    /// sink tuple's contribution set as JSON. This backs the
    /// [`genealog_control::ProvenanceQuery`] implementation, so the collector of a
    /// spanning shard group plugs directly into
    /// [`ControlPlane::with_provenance`](genealog_control::ControlPlane::with_provenance).
    pub fn contribution_json(&self, sink_id: &str) -> Option<String> {
        let id = genealog_spe::tuple::TupleId::parse(sink_id)?;
        let record = self.records().into_iter().find(|r| r.sink_id == id)?;
        Some(json::object([
            (
                "sink",
                json::object([
                    ("id", json::string(&record.sink_id.to_string())),
                    ("ts_ms", record.sink_ts.as_millis().to_string()),
                    ("data", json::string(&format!("{:?}", record.sink_data))),
                ]),
            ),
            ("source_count", record.sources.len().to_string()),
            (
                "sources",
                json::array(record.sources.iter().map(|s| {
                    json::object([
                        ("id", json::string(&s.id.to_string())),
                        ("ts_ms", s.ts.as_millis().to_string()),
                        ("data", json::string(&format!("{:?}", s.data))),
                    ])
                })),
            ),
        ]))
    }
}

impl<O, S> genealog_control::ProvenanceQuery for ShardProvenanceCollector<O, S>
where
    O: TupleData,
    S: TupleData,
{
    fn contribution_set(&self, sink_id: &str) -> Option<String> {
        self.contribution_json(sink_id)
    }
}

/// Attaches a provenance sink that stitches GeneaLog lineage across the REMOTE
/// boundaries of distributed shard groups.
///
/// The origin's own unfolded stream terminates at REMOTE originating tuples for
/// every sink tuple that crossed back from a remote shard; this helper resolves them
/// with the multi-stream unfolder of §6 against the remote instances' unfolded
/// streams (`provenance_links`, from [`GlShardGroup`]), so the collected records
/// carry the actual source tuples — identical to what
/// `genealog::attach_provenance_sink` reports for the equivalent single-instance
/// plan. Local shards' lineage needs no stitching (their chain pointers never left
/// the process) and passes the unfolder through unchanged, so mixed local/remote
/// groups work too.
///
/// `upstream_window` is the MU join window: it must cover the maximum time distance
/// between a sink tuple and the upstream delivering tuples contributing to it (the
/// sum of the plan's stateful window sizes, §6.1).
///
/// Returns the pass-through copy of `stream` (connect it to the query's Sink) and
/// the collector.
///
/// # Panics
/// Panics if `provenance_links` is empty (with no remote shard there is no REMOTE
/// boundary; use `genealog::attach_provenance_sink` instead).
pub fn attach_shard_provenance_sink<O, S, R>(
    q: &mut Query<GeneaLog>,
    name: &str,
    stream: StreamRef<O, GlMeta>,
    provenance_links: Vec<R>,
    upstream_window: Duration,
) -> (StreamRef<O, GlMeta>, ShardProvenanceCollector<O, S>)
where
    O: TupleData,
    S: TupleData + WireEncode + WireDecode,
    R: FrameSource,
{
    let collected = CollectedStream::new();
    let passthrough = attach_shard_provenance_into(
        q,
        name,
        stream,
        provenance_links,
        upstream_window,
        collected.clone(),
    );
    (passthrough, ShardProvenanceCollector { collected })
}

/// [`attach_shard_provenance_sink`] for the declarative logical-plan API: the
/// unfolder, the MU and the stitched-provenance sink are spliced in behind the
/// [`LogicalStream`] at lowering time. The collector is populated once the lowered
/// query runs.
///
/// # Panics
/// Panics (at lowering) if `provenance_links` is empty.
pub fn logical_shard_provenance_sink<O, S, R>(
    stream: LogicalStream<GeneaLog, O>,
    name: &str,
    provenance_links: Vec<R>,
    upstream_window: Duration,
) -> (LogicalStream<GeneaLog, O>, ShardProvenanceCollector<O, S>)
where
    O: TupleData,
    S: TupleData + WireEncode + WireDecode,
    R: FrameSource,
{
    let collected: CollectedStream<UnfoldedEvent<O, S>, GlMeta> = CollectedStream::new();
    let copy = collected.clone();
    let owned = name.to_string();
    let passthrough = stream.raw(&format!("{name}-stitch"), move |q, s| {
        attach_shard_provenance_into(q, &owned, s, provenance_links, upstream_window, copy)
    });
    (passthrough, ShardProvenanceCollector { collected })
}

/// Core of the stitched-provenance attachment, sinking the complete unfolded
/// stream into a caller-provided collection.
fn attach_shard_provenance_into<O, S, R>(
    q: &mut Query<GeneaLog>,
    name: &str,
    stream: StreamRef<O, GlMeta>,
    provenance_links: Vec<R>,
    upstream_window: Duration,
    collected: CollectedStream<UnfoldedEvent<O, S>, GlMeta>,
) -> StreamRef<O, GlMeta>
where
    O: TupleData,
    S: TupleData + WireEncode + WireDecode,
    R: FrameSource,
{
    assert!(
        !provenance_links.is_empty(),
        "stitching requires at least one remote provenance stream"
    );
    q.note_provenance_collector();
    let (passthrough, unfolded) = attach_unfolder(q, name, stream);
    let derived = q.map_one(
        &format!("{name}.events"),
        unfolded,
        |u: &UnfoldedTuple<O>| u.to_event::<S>(),
    );
    let upstreams = provenance_links
        .into_iter()
        .enumerate()
        .map(|(i, link)| {
            add_receive::<UpstreamEvent<S>, _, _>(q, &format!("{name}.upstream[{i}]"), link)
        })
        .collect();
    let complete = attach_multi_unfolder(q, name, derived, upstreams, upstream_window);
    q.collecting_sink_into(&format!("{name}.sink"), complete, &collected);
    passthrough
}

/// Renders the query graphs of several SPE instances as one DOT digraph with one
/// cluster per instance, making the process boundaries of a distributed deployment
/// visible.
///
/// Each entry is `(label, fragment)` where the fragment comes from
/// `Query::to_dot_fragment` rendered with a prefix unique to that instance (e.g.
/// `i0_`, `i1_`, …); Send/Receive endpoints are already drawn with a distinct shape
/// by the fragment renderer.
pub fn instances_dot(instances: &[(String, String)]) -> String {
    let mut dot = String::from("digraph deployment {\n  rankdir=LR;\n");
    for (i, (label, fragment)) in instances.iter().enumerate() {
        let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
        dot.push_str(&format!(
            "  subgraph cluster_{i} {{\n  label=\"{escaped}\";\n  style=dashed;\n"
        ));
        dot.push_str(fragment);
        dot.push_str("  }\n");
    }
    dot.push_str("}\n");
    dot
}

/// Deploys a two-stage query over three SPE instances with **GeneaLog** provenance
/// (the GL rows of Figure 13), blocking until completion.
///
/// Each instance's plan is built on the declarative [`LogicalPlan`] builder (the
/// planner owns fusion and channel budgets per instance); `stage1`/`stage2` remain
/// physical-layer callbacks — they receive the lowered [`Query`] and the lowered
/// input stream — so the existing workload stage builders plug in unchanged.
/// `provenance_window` is the MU join window (the sum of the query's stateful window
/// sizes, §6.1).
///
/// # Errors
/// Propagates any engine deployment or runtime error from the three instances.
#[allow(clippy::too_many_arguments)]
pub fn deploy_distributed_genealog<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    provenance_window: Duration,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(&mut Query<GeneaLog>, StreamRef<S, GlMeta>) -> StreamRef<D1, GlMeta> + 'static,
    F2: FnOnce(&mut Query<GeneaLog>, StreamRef<D1, GlMeta>) -> StreamRef<D2, GlMeta> + 'static,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);
    let (up_tx, up_rx, up_stats) = SimulatedLink::new(network);
    let (derived_tx, derived_rx, derived_stats) = SimulatedLink::new(network);

    // --- Instance 1: Source + stage 1 + SU + Sends -------------------------------
    let plan1 = LogicalPlan::new(GeneaLog::for_instance(1));
    let n1 = name.to_string();
    plan1
        .source_with(&format!("{name}-source"), generator, source_config)
        .raw(&format!("{name}-stage1"), move |q, s| stage1(q, s))
        .raw_sink(&format!("{name}-i1-ship"), move |q, s| {
            let (data_stream, unfolded1) = attach_unfolder(q, &format!("{n1}-i1"), s);
            add_send(q, &format!("{n1}-i1-send-data"), data_stream, data_tx);
            let upstream_events = q.map_one(
                &format!("{n1}-i1-upstream"),
                unfolded1,
                |u: &genealog::UnfoldedTuple<D1>| u.to_event::<S>().to_upstream(),
            );
            add_send(q, &format!("{n1}-i1-send-upstream"), upstream_events, up_tx);
        });

    // --- Instance 2: Receive + stage 2 + data Sink + SU + Send -------------------
    let plan2 = LogicalPlan::new(GeneaLog::for_instance(2));
    let n2 = name.to_string();
    let received: LogicalStream<GeneaLog, D1> =
        receive_stream(&plan2, &format!("{name}-i2-receive"), data_rx);
    let data_sink = received
        .raw(&format!("{name}-stage2"), move |q, s| stage2(q, s))
        .raw(&format!("{name}-i2-su"), move |q, s| {
            let (to_sink, unfolded2) = attach_unfolder(q, &format!("{n2}-i2"), s);
            let derived_events = q.map_one(
                &format!("{n2}-i2-derived"),
                unfolded2,
                |u: &genealog::UnfoldedTuple<D2>| u.to_event::<S>(),
            );
            add_send(
                q,
                &format!("{n2}-i2-send-derived"),
                derived_events,
                derived_tx,
            );
            to_sink
        })
        .collecting_sink(&format!("{name}-data-sink"));

    // --- Instance 3: Receives + MU + provenance Sink ------------------------------
    let plan3 = LogicalPlan::new(NoProvenance);
    let n3 = name.to_string();
    let upstream: LogicalStream<NoProvenance, UpstreamEvent<S>> =
        receive_stream(&plan3, &format!("{name}-i3-receive-upstream"), up_rx);
    let derived: LogicalStream<NoProvenance, UnfoldedEvent<D2, S>> =
        receive_stream(&plan3, &format!("{name}-i3-receive-derived"), derived_rx);
    let provenance_sink = derived
        .raw_with(upstream, &format!("{name}-i3-mu"), move |q, d, u| {
            attach_multi_unfolder(q, &format!("{n3}-i3"), d, vec![u], provenance_window)
        })
        .collecting_sink(&format!("{name}-provenance-sink"));

    // --- Run all three instances to completion -----------------------------------
    let handles = vec![plan1.deploy()?, plan2.deploy()?, plan3.deploy()?];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    let provenance = group_provenance(
        provenance_sink
            .tuples()
            .iter()
            .map(|t| t.data.clone())
            .collect(),
    );
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance,
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: up_stats.bytes() + derived_stats.bytes(),
    })
}

/// Deploys a two-stage query over two SPE instances with **no provenance**
/// (the NP rows of Figure 13), blocking until completion. Both instances are built
/// on the declarative [`LogicalPlan`] builder (see [`deploy_distributed_genealog`]).
///
/// # Errors
/// Propagates any engine deployment or runtime error.
pub fn deploy_distributed_noprov<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(&mut Query<NoProvenance>, StreamRef<S, ()>) -> StreamRef<D1, ()> + 'static,
    F2: FnOnce(&mut Query<NoProvenance>, StreamRef<D1, ()>) -> StreamRef<D2, ()> + 'static,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);

    let plan1 = LogicalPlan::new(NoProvenance);
    let stage1_out = plan1
        .source_with(&format!("{name}-source"), generator, source_config)
        .raw(&format!("{name}-stage1"), move |q, s| stage1(q, s));
    send_stream(stage1_out, &format!("{name}-i1-send-data"), data_tx);

    let plan2 = LogicalPlan::new(NoProvenance);
    let received: LogicalStream<NoProvenance, D1> =
        receive_stream(&plan2, &format!("{name}-i2-receive"), data_rx);
    let data_sink = received
        .raw(&format!("{name}-stage2"), move |q, s| stage2(q, s))
        .collecting_sink(&format!("{name}-data-sink"));

    let handles = vec![plan1.deploy()?, plan2.deploy()?];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance: Vec::new(),
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: 0,
    })
}

/// Deploys a two-stage query over three SPE instances with the **Ariadne-style
/// baseline** (the BL rows of Figure 13), blocking until completion.
///
/// Annotation-based provenance needs the source payloads next to the annotated sink
/// tuples, so — as in the paper's baseline deployment — the entire source stream is
/// additionally shipped to the provenance instance, which is what makes the network
/// the baseline's bottleneck. The provenance instance merely persists the forwarded
/// source stream; no complete provenance stream is produced (the paper reports the
/// same behaviour: "the system produces very little or no provenance data").
///
/// # Errors
/// Propagates any engine deployment or runtime error.
pub fn deploy_distributed_baseline<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(
            &mut Query<AriadneBaseline>,
            StreamRef<S, genealog_baseline::BlMeta>,
        ) -> StreamRef<D1, genealog_baseline::BlMeta>
        + 'static,
    F2: FnOnce(
            &mut Query<AriadneBaseline>,
            StreamRef<D1, genealog_baseline::BlMeta>,
        ) -> StreamRef<D2, genealog_baseline::BlMeta>
        + 'static,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);
    let (source_tx, source_rx, source_stats) = SimulatedLink::new(network);

    let plan1 = LogicalPlan::new(AriadneBaseline::new());
    let branches = plan1
        .source_with(&format!("{name}-source"), generator, source_config)
        .multiplex(&format!("{name}-i1-mux"), 2);
    let mut branches = branches.into_iter();
    let to_query = branches.next().expect("two branches");
    let to_provenance = branches.next().expect("two branches");
    let stage1_out = to_query.raw(&format!("{name}-stage1"), move |q, s| stage1(q, s));
    send_stream(stage1_out, &format!("{name}-i1-send-data"), data_tx);
    // The baseline has to make the raw source stream available wherever provenance is
    // materialised, so the whole stream crosses the network.
    send_stream(to_provenance, &format!("{name}-i1-send-sources"), source_tx);

    let plan2 = LogicalPlan::new(AriadneBaseline::new());
    let received: LogicalStream<AriadneBaseline, D1> =
        receive_stream(&plan2, &format!("{name}-i2-receive"), data_rx);
    let data_sink = received
        .raw(&format!("{name}-stage2"), move |q, s| stage2(q, s))
        .collecting_sink(&format!("{name}-data-sink"));

    // Instance 3: persist the forwarded source stream (the baseline's provenance store).
    let plan3 = LogicalPlan::new(NoProvenance);
    let forwarded: LogicalStream<NoProvenance, S> =
        receive_stream(&plan3, &format!("{name}-i3-receive-sources"), source_rx);
    let _store = forwarded.collecting_sink(&format!("{name}-source-store"));

    let handles = vec![plan1.deploy()?, plan2.deploy()?, plan3.deploy()?];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance: Vec::new(),
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: source_stats.bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
    use genealog_workloads::queries::{q1_provenance_window, q1_stage1, q1_stage2};
    use genealog_workloads::types::{PositionReport, StoppedCarCount};

    fn lr_config() -> LinearRoadConfig {
        LinearRoadConfig {
            cars: 30,
            rounds: 20,
            ..LinearRoadConfig::default()
        }
    }

    #[test]
    fn distributed_q1_with_genealog_captures_full_provenance() {
        let config = lr_config();
        let generator = LinearRoadGenerator::new(config);
        let expected_cars: std::collections::BTreeSet<u32> =
            generator.breakdown_cars().into_iter().collect();

        let outcome = deploy_distributed_genealog::<
            _,
            StoppedCarCount,
            StoppedCarCount,
            PositionReport,
            _,
            _,
        >(
            "q1",
            generator,
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            q1_provenance_window(),
            NetworkConfig::unlimited(),
        )
        .expect("distributed deployment");

        assert!(!outcome.alerts.is_empty());
        let alert_cars: std::collections::BTreeSet<u32> =
            outcome.alerts.iter().map(|(_, a)| a.car_id).collect();
        assert_eq!(alert_cars, expected_cars);

        // Every alert has a complete provenance record of 4 zero-speed source reports.
        assert_eq!(outcome.provenance.len(), outcome.alerts.len());
        for record in &outcome.provenance {
            assert_eq!(record.sources.len(), 4, "Q1 provenance is 4 source tuples");
            assert!(record
                .sources
                .iter()
                .all(|s| s.data.speed == 0 && s.data.car_id == record.sink_data.car_id));
        }
        assert!(outcome.data_link_bytes > 0);
        assert!(outcome.provenance_link_bytes > 0);
        assert_eq!(outcome.reports.len(), 3);
        assert!(outcome.source_tuples() > 0);
    }

    #[test]
    fn distributed_q1_noprov_and_baseline_agree_on_alerts() {
        let config = lr_config();

        let np =
            deploy_distributed_noprov::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
                "q1-np",
                LinearRoadGenerator::new(config),
                SourceConfig::default(),
                q1_stage1,
                q1_stage2,
                NetworkConfig::unlimited(),
            )
            .expect("np deployment");

        let bl = deploy_distributed_baseline::<
            _,
            StoppedCarCount,
            StoppedCarCount,
            PositionReport,
            _,
            _,
        >(
            "q1-bl",
            LinearRoadGenerator::new(config),
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            NetworkConfig::unlimited(),
        )
        .expect("bl deployment");

        assert_eq!(np.alerts, bl.alerts);
        assert!(np.provenance.is_empty());
        // The baseline ships the whole source stream to the provenance node.
        let source_tuples = config.total_reports();
        assert!(bl.provenance_link_bytes >= source_tuples * 8);
        assert!(bl.provenance_link_bytes > np.total_network_bytes());
    }
}
