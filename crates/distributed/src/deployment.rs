//! Three-instance deployments of the evaluation queries (Figures 7, 9C, 10C, 11C).
//!
//! Each deployment runs three independent engine runtimes ("SPE instances"):
//!
//! 1. **Instance 1** — the query's Source and first processing stage; under GeneaLog it
//!    also hosts a single-stream unfolder whose unfolded stream is shipped to the
//!    provenance instance.
//! 2. **Instance 2** — the remaining processing stage and the data Sink; under GeneaLog
//!    it hosts the unfolder of the delivering stream feeding the Sink.
//! 3. **Instance 3** — the provenance instance: under GeneaLog it runs the multi-stream
//!    unfolder (MU) that stitches the two unfolded streams together and persists the
//!    complete provenance; under the baseline it merely receives the source streams the
//!    baseline has to ship.
//!
//! All three functions block until the deployment has drained and return a
//! [`DistributedOutcome`] with the per-instance reports, the alerts, the captured
//! provenance and the per-link traffic counters.

use std::sync::Arc;

use genealog_spe::operator::sink::SinkStats;
use genealog_spe::operator::source::{SourceConfig, SourceGenerator};
use genealog_spe::provenance::NoProvenance;
use genealog_spe::query::{NodeKind, Query, StreamRef};
use genealog_spe::runtime::QueryReport;
use genealog_spe::tuple::TupleData;
use genealog_spe::{Duration, SpeError, Timestamp};

use genealog::{
    attach_multi_unfolder, attach_unfolder, GeneaLog, GlMeta, SourceRecord, UnfoldedEvent,
    UpstreamEvent,
};
use genealog_baseline::AriadneBaseline;

use crate::endpoint::{ReceiveOp, SendOp, WireProvenance};
use crate::network::{NetworkConfig, SimulatedLink};
use crate::wire::{WireDecode, WireEncode};

/// Adds a Send operator shipping `stream` onto `link` (extension of the query builder).
pub fn add_send<T, P>(
    q: &mut Query<P>,
    name: &str,
    stream: StreamRef<T, P::Meta>,
    link: crate::network::LinkSender,
) where
    T: TupleData + WireEncode,
    P: WireProvenance,
{
    let node = q.add_node(name, NodeKind::Custom("send"));
    let rx = q.attach_input(stream, node);
    let op = SendOp::new(name, rx, link, q.provenance().clone());
    q.set_operator(node, Box::new(op));
}

/// Adds a Receive operator materialising the stream arriving on `link`.
pub fn add_receive<T, P>(
    q: &mut Query<P>,
    name: &str,
    link: crate::network::LinkReceiver,
) -> StreamRef<T, P::Meta>
where
    T: TupleData + WireDecode,
    P: genealog_spe::provenance::ProvenanceSystem,
{
    let node = q.add_node(name, NodeKind::Custom("receive"));
    let (slot, stream) = q.new_output_stream(node, format!("{name}.out"));
    let op = ReceiveOp::new(name, link, slot, q.provenance().clone());
    q.set_operator(node, Box::new(op));
    stream
}

/// The provenance of one sink tuple as captured at the provenance instance.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord<D, S> {
    /// Timestamp of the sink tuple.
    pub sink_ts: Timestamp,
    /// Payload of the sink tuple.
    pub sink_data: D,
    /// The contributing source tuples.
    pub sources: Vec<SourceRecord<S>>,
}

/// Result of a completed distributed run.
#[derive(Debug)]
pub struct DistributedOutcome<D, S> {
    /// Per-instance execution reports (instance 1, instance 2, provenance instance).
    pub reports: Vec<QueryReport>,
    /// The alerts received by the data Sink on instance 2.
    pub alerts: Vec<(Timestamp, D)>,
    /// Latency statistics of the data Sink.
    pub sink_stats: Arc<SinkStats>,
    /// The per-sink-tuple provenance assembled at the provenance instance (empty for
    /// the NP and BL configurations).
    pub provenance: Vec<ProvenanceRecord<D, S>>,
    /// Bytes shipped on the instance-1 → instance-2 data link.
    pub data_link_bytes: u64,
    /// Bytes shipped on the links towards the provenance instance.
    pub provenance_link_bytes: u64,
}

impl<D, S> DistributedOutcome<D, S> {
    /// Total source tuples injected by instance 1.
    pub fn source_tuples(&self) -> u64 {
        self.reports
            .first()
            .map(QueryReport::source_tuples)
            .unwrap_or(0)
    }

    /// Total bytes shipped over the simulated network.
    pub fn total_network_bytes(&self) -> u64 {
        self.data_link_bytes + self.provenance_link_bytes
    }
}

fn group_provenance<D, S>(events: Vec<UnfoldedEvent<D, S>>) -> Vec<ProvenanceRecord<D, S>>
where
    D: TupleData,
    S: TupleData,
{
    let mut order: Vec<genealog_spe::tuple::TupleId> = Vec::new();
    let mut groups: std::collections::HashMap<
        genealog_spe::tuple::TupleId,
        ProvenanceRecord<D, S>,
    > = std::collections::HashMap::new();
    for event in events {
        let entry = groups.entry(event.sink_id).or_insert_with(|| {
            order.push(event.sink_id);
            ProvenanceRecord {
                sink_ts: event.sink_ts,
                sink_data: event.sink_data.clone(),
                sources: Vec::new(),
            }
        });
        if let Some(record) = event.source_record() {
            entry.sources.push(record);
        }
    }
    order
        .into_iter()
        .filter_map(|id| groups.remove(&id))
        .collect()
}

/// Deploys a two-stage query over three SPE instances with **GeneaLog** provenance
/// (the GL rows of Figure 13), blocking until completion.
///
/// `stage1` builds the operators of instance 1 (fed by the Source), `stage2` those of
/// instance 2 (fed by the tuples received from instance 1); `provenance_window` is the
/// MU join window (the sum of the query's stateful window sizes, §6.1).
///
/// # Errors
/// Propagates any engine deployment or runtime error from the three instances.
#[allow(clippy::too_many_arguments)]
pub fn deploy_distributed_genealog<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    provenance_window: Duration,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(&mut Query<GeneaLog>, StreamRef<S, GlMeta>) -> StreamRef<D1, GlMeta>,
    F2: FnOnce(&mut Query<GeneaLog>, StreamRef<D1, GlMeta>) -> StreamRef<D2, GlMeta>,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);
    let (up_tx, up_rx, up_stats) = SimulatedLink::new(network);
    let (derived_tx, derived_rx, derived_stats) = SimulatedLink::new(network);

    // --- Instance 1: Source + stage 1 + SU + Sends -------------------------------
    let mut instance1 = Query::new(GeneaLog::for_instance(1));
    let source = instance1.source_with(&format!("{name}-source"), generator, source_config);
    let stage1_out = stage1(&mut instance1, source);
    let (data_stream, unfolded1) =
        attach_unfolder(&mut instance1, &format!("{name}-i1"), stage1_out);
    add_send(
        &mut instance1,
        &format!("{name}-i1-send-data"),
        data_stream,
        data_tx,
    );
    let upstream_events = instance1.map_one(
        &format!("{name}-i1-upstream"),
        unfolded1,
        |u: &genealog::UnfoldedTuple<D1>| u.to_event::<S>().to_upstream(),
    );
    add_send(
        &mut instance1,
        &format!("{name}-i1-send-upstream"),
        upstream_events,
        up_tx,
    );

    // --- Instance 2: Receive + stage 2 + data Sink + SU + Send -------------------
    let mut instance2 = Query::new(GeneaLog::for_instance(2));
    let received: StreamRef<D1, GlMeta> =
        add_receive(&mut instance2, &format!("{name}-i2-receive"), data_rx);
    let stage2_out = stage2(&mut instance2, received);
    let (to_sink, unfolded2) = attach_unfolder(&mut instance2, &format!("{name}-i2"), stage2_out);
    let data_sink = instance2.collecting_sink(&format!("{name}-data-sink"), to_sink);
    let derived_events = instance2.map_one(
        &format!("{name}-i2-derived"),
        unfolded2,
        |u: &genealog::UnfoldedTuple<D2>| u.to_event::<S>(),
    );
    add_send(
        &mut instance2,
        &format!("{name}-i2-send-derived"),
        derived_events,
        derived_tx,
    );

    // --- Instance 3: Receives + MU + provenance Sink ------------------------------
    let mut instance3 = Query::new(NoProvenance);
    let upstream: StreamRef<UpstreamEvent<S>, ()> = add_receive(
        &mut instance3,
        &format!("{name}-i3-receive-upstream"),
        up_rx,
    );
    let derived: StreamRef<UnfoldedEvent<D2, S>, ()> = add_receive(
        &mut instance3,
        &format!("{name}-i3-receive-derived"),
        derived_rx,
    );
    let complete = attach_multi_unfolder(
        &mut instance3,
        &format!("{name}-i3"),
        derived,
        vec![upstream],
        provenance_window,
    );
    let provenance_sink = instance3.collecting_sink(&format!("{name}-provenance-sink"), complete);

    // --- Run all three instances to completion -----------------------------------
    let handles = vec![
        instance1.deploy()?,
        instance2.deploy()?,
        instance3.deploy()?,
    ];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    let provenance = group_provenance(
        provenance_sink
            .tuples()
            .iter()
            .map(|t| t.data.clone())
            .collect(),
    );
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance,
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: up_stats.bytes() + derived_stats.bytes(),
    })
}

/// Deploys a two-stage query over two SPE instances with **no provenance**
/// (the NP rows of Figure 13), blocking until completion.
///
/// # Errors
/// Propagates any engine deployment or runtime error.
pub fn deploy_distributed_noprov<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(&mut Query<NoProvenance>, StreamRef<S, ()>) -> StreamRef<D1, ()>,
    F2: FnOnce(&mut Query<NoProvenance>, StreamRef<D1, ()>) -> StreamRef<D2, ()>,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);

    let mut instance1 = Query::new(NoProvenance);
    let source = instance1.source_with(&format!("{name}-source"), generator, source_config);
    let stage1_out = stage1(&mut instance1, source);
    add_send(
        &mut instance1,
        &format!("{name}-i1-send-data"),
        stage1_out,
        data_tx,
    );

    let mut instance2 = Query::new(NoProvenance);
    let received: StreamRef<D1, ()> =
        add_receive(&mut instance2, &format!("{name}-i2-receive"), data_rx);
    let stage2_out = stage2(&mut instance2, received);
    let data_sink = instance2.collecting_sink(&format!("{name}-data-sink"), stage2_out);

    let handles = vec![instance1.deploy()?, instance2.deploy()?];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance: Vec::new(),
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: 0,
    })
}

/// Deploys a two-stage query over three SPE instances with the **Ariadne-style
/// baseline** (the BL rows of Figure 13), blocking until completion.
///
/// Annotation-based provenance needs the source payloads next to the annotated sink
/// tuples, so — as in the paper's baseline deployment — the entire source stream is
/// additionally shipped to the provenance instance, which is what makes the network
/// the baseline's bottleneck. The provenance instance merely persists the forwarded
/// source stream; no complete provenance stream is produced (the paper reports the
/// same behaviour: "the system produces very little or no provenance data").
///
/// # Errors
/// Propagates any engine deployment or runtime error.
pub fn deploy_distributed_baseline<G, D1, D2, S, F1, F2>(
    name: &str,
    generator: G,
    source_config: SourceConfig,
    stage1: F1,
    stage2: F2,
    network: NetworkConfig,
) -> Result<DistributedOutcome<D2, S>, SpeError>
where
    G: SourceGenerator<Item = S>,
    S: TupleData + WireEncode + WireDecode,
    D1: TupleData + WireEncode + WireDecode,
    D2: TupleData + WireEncode + WireDecode,
    F1: FnOnce(
        &mut Query<AriadneBaseline>,
        StreamRef<S, genealog_baseline::BlMeta>,
    ) -> StreamRef<D1, genealog_baseline::BlMeta>,
    F2: FnOnce(
        &mut Query<AriadneBaseline>,
        StreamRef<D1, genealog_baseline::BlMeta>,
    ) -> StreamRef<D2, genealog_baseline::BlMeta>,
{
    let (data_tx, data_rx, data_stats) = SimulatedLink::new(network);
    let (source_tx, source_rx, source_stats) = SimulatedLink::new(network);

    let mut instance1 = Query::new(AriadneBaseline::new());
    let source = instance1.source_with(&format!("{name}-source"), generator, source_config);
    let branches = instance1.multiplex(&format!("{name}-i1-mux"), source, 2);
    let mut branches = branches.into_iter();
    let to_query = branches.next().expect("two branches");
    let to_provenance = branches.next().expect("two branches");
    let stage1_out = stage1(&mut instance1, to_query);
    add_send(
        &mut instance1,
        &format!("{name}-i1-send-data"),
        stage1_out,
        data_tx,
    );
    // The baseline has to make the raw source stream available wherever provenance is
    // materialised, so the whole stream crosses the network.
    add_send(
        &mut instance1,
        &format!("{name}-i1-send-sources"),
        to_provenance,
        source_tx,
    );

    let mut instance2 = Query::new(AriadneBaseline::new());
    let received: StreamRef<D1, genealog_baseline::BlMeta> =
        add_receive(&mut instance2, &format!("{name}-i2-receive"), data_rx);
    let stage2_out = stage2(&mut instance2, received);
    let data_sink = instance2.collecting_sink(&format!("{name}-data-sink"), stage2_out);

    // Instance 3: persist the forwarded source stream (the baseline's provenance store).
    let mut instance3 = Query::new(NoProvenance);
    let forwarded: StreamRef<S, ()> = add_receive(
        &mut instance3,
        &format!("{name}-i3-receive-sources"),
        source_rx,
    );
    let _store = instance3.collecting_sink(&format!("{name}-source-store"), forwarded);

    let handles = vec![
        instance1.deploy()?,
        instance2.deploy()?,
        instance3.deploy()?,
    ];
    let mut reports = Vec::with_capacity(handles.len());
    for handle in handles {
        reports.push(handle.wait()?);
    }

    let alerts = data_sink
        .tuples()
        .iter()
        .map(|t| (t.ts, t.data.clone()))
        .collect();
    Ok(DistributedOutcome {
        reports,
        alerts,
        sink_stats: Arc::clone(data_sink.stats()),
        provenance: Vec::new(),
        data_link_bytes: data_stats.bytes(),
        provenance_link_bytes: source_stats.bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
    use genealog_workloads::queries::{q1_provenance_window, q1_stage1, q1_stage2};
    use genealog_workloads::types::{PositionReport, StoppedCarCount};

    fn lr_config() -> LinearRoadConfig {
        LinearRoadConfig {
            cars: 30,
            rounds: 20,
            ..LinearRoadConfig::default()
        }
    }

    #[test]
    fn distributed_q1_with_genealog_captures_full_provenance() {
        let config = lr_config();
        let generator = LinearRoadGenerator::new(config);
        let expected_cars: std::collections::BTreeSet<u32> =
            generator.breakdown_cars().into_iter().collect();

        let outcome = deploy_distributed_genealog::<
            _,
            StoppedCarCount,
            StoppedCarCount,
            PositionReport,
            _,
            _,
        >(
            "q1",
            generator,
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            q1_provenance_window(),
            NetworkConfig::unlimited(),
        )
        .expect("distributed deployment");

        assert!(!outcome.alerts.is_empty());
        let alert_cars: std::collections::BTreeSet<u32> =
            outcome.alerts.iter().map(|(_, a)| a.car_id).collect();
        assert_eq!(alert_cars, expected_cars);

        // Every alert has a complete provenance record of 4 zero-speed source reports.
        assert_eq!(outcome.provenance.len(), outcome.alerts.len());
        for record in &outcome.provenance {
            assert_eq!(record.sources.len(), 4, "Q1 provenance is 4 source tuples");
            assert!(record
                .sources
                .iter()
                .all(|s| s.data.speed == 0 && s.data.car_id == record.sink_data.car_id));
        }
        assert!(outcome.data_link_bytes > 0);
        assert!(outcome.provenance_link_bytes > 0);
        assert_eq!(outcome.reports.len(), 3);
        assert!(outcome.source_tuples() > 0);
    }

    #[test]
    fn distributed_q1_noprov_and_baseline_agree_on_alerts() {
        let config = lr_config();

        let np =
            deploy_distributed_noprov::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
                "q1-np",
                LinearRoadGenerator::new(config),
                SourceConfig::default(),
                q1_stage1,
                q1_stage2,
                NetworkConfig::unlimited(),
            )
            .expect("np deployment");

        let bl = deploy_distributed_baseline::<
            _,
            StoppedCarCount,
            StoppedCarCount,
            PositionReport,
            _,
            _,
        >(
            "q1-bl",
            LinearRoadGenerator::new(config),
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            NetworkConfig::unlimited(),
        )
        .expect("bl deployment");

        assert_eq!(np.alerts, bl.alerts);
        assert!(np.provenance.is_empty());
        // The baseline ships the whole source stream to the provenance node.
        let source_tuples = config.total_reports();
        assert!(bl.provenance_link_bytes >= source_tuples * 8);
        assert!(bl.provenance_link_bytes > np.total_network_bytes());
    }
}
