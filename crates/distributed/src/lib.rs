//! # genealog-distributed — inter-process provenance deployments (§6)
//!
//! The paper's inter-process evaluation runs every query on three Odroid boards
//! connected by a 100 Mbps switch: two boards process the data, the third receives and
//! persists the provenance stream. This crate reproduces that setup with three *SPE
//! instances* — independent engine runtimes that share no memory — connected by a
//! byte-level wire protocol over a simulated network link:
//!
//! * [`wire`] — a small hand-written binary codec ([`wire::WireEncode`] /
//!   [`wire::WireDecode`]); tuples crossing an instance boundary are serialised, so no
//!   `Arc` (and therefore no GeneaLog pointer) survives the crossing, exactly the
//!   constraint §6 starts from.
//! * [`network`] — [`network::SimulatedLink`]: a byte pipe with configurable bandwidth
//!   and propagation latency plus per-link byte/frame counters (used to compare how
//!   much GL and BL ship over the network).
//! * [`endpoint`] — the Send and Receive operators of §2; Receive re-materialises
//!   tuples and tags them through the provenance system's `remote_meta` hook (`REMOTE`
//!   kind, or `SOURCE` for forwarded source tuples).
//! * [`deployment`] — the three-instance deployments of Figures 7, 9C, 10C and 11C for
//!   Q1–Q4 under NP, GL and BL, wiring the single-stream unfolders on instances 1–2
//!   and the multi-stream unfolder on instance 3 — plus the **distributed shard
//!   group** helpers ([`deployment::remote_shard_group`],
//!   [`deployment::remote_shard_group_gl`]) that span a key-partitioned operator's
//!   Partition exchange across SPE instances, with the provenance stitched back
//!   together by [`deployment::attach_shard_provenance_sink`].
//! * [`fault`] — controlled failure injection ([`fault::FaultySender`],
//!   [`fault::FaultPlan`]): dropped, duplicated, delayed and severed frames, plus
//!   the fire-once triggers the recovery tests use to kill a shard thread on the
//!   first attempt only.
//! * [`tcp`] — a real TCP transport behind the same [`network::FrameSink`] /
//!   [`network::FrameSource`] traits: length-delimited frames, connect-with-backoff
//!   and bounded reconnect on broken pipes. Swapping it for the simulated link via
//!   [`deployment::ShardTransport`] changes no bytes on the wire above the framing
//!   layer.
//! * [`node`] — the `spe-node` worker protocol: a process that accepts a serialised
//!   remote-shard deployment over a socket and hosts the shards of one group,
//!   shipping results, provenance and metrics back over the multiplexed connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod endpoint;
pub mod fault;
pub mod network;
pub mod node;
pub mod tcp;
pub mod wire;

pub use deployment::{
    attach_shard_provenance_sink, deploy_distributed_baseline, deploy_distributed_genealog,
    deploy_distributed_noprov, group_provenance, instances_dot, remote_shard_group,
    remote_shard_group_gl, remote_shard_group_gl_over, remote_shard_group_gl_with_faults,
    remote_shard_group_gl_with_faults_over, remote_shard_group_over, DistributedOutcome,
    GlShardGroup, ProvenanceRecord, RemoteShardGroup, ShardGroupDeployment, ShardLinks,
    ShardProvenanceCollector, ShardTransport, ShardWiring, SimulatedTransport,
};
pub use endpoint::{
    ReceiveOp, SendOp, TupleFrameBuilder, WireFrame, WireProvenance, WireTag, WireTuple,
};
pub use fault::{FaultPlan, FaultySender, LinkFaults, OneShot};
pub use network::{
    FrameSink, FrameSource, LinkStats, MuxReceiver, MuxSender, NetworkConfig, SharedLink,
    SimulatedLink,
};
pub use node::{
    connect_gl_node_group, run_node, run_node_with_state, serve_node_connection,
    serve_node_connection_with_state, NodeDeployment, NodeReading, NodeStores, ShardOpSpec, ACK,
};
pub use tcp::{
    TcpLink, TcpLoopbackTransport, TcpReceiver, TcpSender, TcpSeverHandle, MAX_FRAME_BYTES,
};
pub use wire::{WireDecode, WireEncode, WireError};
