//! The `spe-node` worker protocol: real multi-process shard hosting.
//!
//! A node is a long-lived process listening on a TCP port. The originating
//! query's side ([`connect_gl_node_group`]) dials each node, sends one
//! [`NodeDeployment`] frame describing which shards of a group the node should
//! host, and the same socket then becomes the multiplexed data plane of the
//! deployment — no second connection, no shared filesystem.
//!
//! # Wire protocol
//!
//! Every frame is length-delimited exactly like the [`tcp`](crate::tcp)
//! transport (little-endian `u32` length + payload). On a fresh connection:
//!
//! 1. client → node: one [`NodeDeployment`] (via [`WireEncode`]);
//! 2. node → client: the [`ACK`] frame;
//! 3. both directions switch to the [`SharedLink`] channel-prefix mux.
//!
//! With `k` hosted shards the channel layout is, in the client → node
//! direction, channel `j` = shard `j`'s partitioned sub-stream; in the node →
//! client direction, channel `j` = shard `j`'s results, channel `k + j` =
//! shard `j`'s unfolded provenance stream and channel `2k + j` = shard `j`'s
//! metrics snapshots — the same per-shard triple that
//! [`remote_shard_group_gl`](crate::deployment::remote_shard_group_gl) wires
//! in-process.
//!
//! A node connection that drops mid-deployment severs every hosted shard's
//! links at once (the accepted socket has nowhere to re-dial), which the
//! origin's Receive operators surface as a mid-stream close — the
//! `run_with_recovery` path, exactly like a simulated sever.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use genealog::{attach_unfolder, GeneaLog, GlMeta, GlWindowPersister, UnfoldedTuple};
use genealog_metrics::{decode_samples, MetricsRegistry, Tracer};
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::query::{Query, QueryConfig, StreamRef};
use genealog_spe::runtime::QueryReport;
use genealog_spe::state::{CheckpointConfig, CheckpointStore, InMemoryBackend, StateBackend};
use genealog_spe::{SpeError, WindowSpec};
use genealog_store::{DurableBackend, ScopedBackend, StoreOptions};
use parking_lot::Mutex;

use crate::deployment::{
    add_receive, add_send, spawn_metrics_shipper, splice_remote_shard, GlShardGroup,
    RemoteShardGroup, ShardLinks,
};
use crate::network::{FrameSink, FrameSource, LinkStats, SharedLink};
use crate::tcp::{
    apply_socket_options, read_frame, write_frame, ReadOutcome, TcpReceiver, TcpSender,
};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader};
use crate::NetworkConfig;

/// The node's answer to a well-formed [`NodeDeployment`] frame.
pub const ACK: &[u8] = b"genealog-node ok";

/// The payload type `spe-node` shards process: `(key, value)` readings, the
/// same shape as the distributed shard-group test workloads.
pub type NodeReading = (u32, i64);

/// The windowed operator a node runs on each hosted shard, chosen from a small
/// catalogue of serialisable specs (a node cannot receive closures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOpSpec {
    /// Per-key sum over a sliding window of `size_ms` / `slide_ms`.
    SumAggregate {
        /// Window size in milliseconds.
        size_ms: u64,
        /// Window slide in milliseconds.
        slide_ms: u64,
    },
    /// `filter(value % 3 != 0) → map(value * 2)` ahead of the same per-key
    /// windowed sum — the staged shape of the fused-shard equivalence tests.
    FilteredScaledSum {
        /// Window size in milliseconds.
        size_ms: u64,
        /// Window slide in milliseconds.
        slide_ms: u64,
    },
}

impl ShardOpSpec {
    fn window(&self) -> Result<WindowSpec, SpeError> {
        let (size_ms, slide_ms) = match *self {
            ShardOpSpec::SumAggregate { size_ms, slide_ms }
            | ShardOpSpec::FilteredScaledSum { size_ms, slide_ms } => (size_ms, slide_ms),
        };
        WindowSpec::new(
            genealog_spe::Duration::from_millis(size_ms),
            genealog_spe::Duration::from_millis(slide_ms),
        )
    }

    /// Splices the spec'd operator into a node-side query.
    fn build(
        &self,
        q: &mut Query<GeneaLog>,
        name: &str,
        input: StreamRef<NodeReading, GlMeta>,
    ) -> Result<StreamRef<NodeReading, GlMeta>, SpeError> {
        let spec = self.window()?;
        let staged = match self {
            ShardOpSpec::SumAggregate { .. } => input,
            ShardOpSpec::FilteredScaledSum { .. } => {
                let kept = q.filter("keep", input, |r: &NodeReading| r.1 % 3 != 0);
                q.map_one("scale", kept, |r: &NodeReading| (r.0, r.1 * 2))
            }
        };
        Ok(q.aggregate(
            name,
            staged,
            spec,
            |r: &NodeReading| r.0,
            |w: &WindowView<'_, u32, NodeReading, GlMeta>| {
                (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
            },
        ))
    }
}

impl WireEncode for ShardOpSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            ShardOpSpec::SumAggregate { size_ms, slide_ms } => {
                0u8.encode(out);
                size_ms.encode(out);
                slide_ms.encode(out);
            }
            ShardOpSpec::FilteredScaledSum { size_ms, slide_ms } => {
                1u8.encode(out);
                size_ms.encode(out);
                slide_ms.encode(out);
            }
        }
    }
}

impl WireDecode for ShardOpSpec {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = u8::decode(reader)?;
        let size_ms = u64::decode(reader)?;
        let slide_ms = u64::decode(reader)?;
        match tag {
            0 => Ok(ShardOpSpec::SumAggregate { size_ms, slide_ms }),
            1 => Ok(ShardOpSpec::FilteredScaledSum { size_ms, slide_ms }),
            other => Err(WireError::new(format!("unknown shard op tag {other}"))),
        }
    }
}

/// Everything a node needs to host its slice of one distributed shard group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDeployment {
    /// Logical name of the shard group (used for operator names, shard-group
    /// report folding and the node's metrics keys).
    pub group: String,
    /// Global shard indices this node hosts, in the channel order of the
    /// connection's mux.
    pub shards: Vec<u32>,
    /// Total number of shards in the group, across all nodes.
    pub total_shards: u32,
    /// GeneaLog id-namespace base: shard `g` runs under instance
    /// `first_instance + g`. The origin must use a namespace outside
    /// `first_instance..first_instance + total_shards`.
    pub first_instance: u32,
    /// Whether the node's engines fuse adjacent stateless stages.
    pub fusion: bool,
    /// The operator every shard runs.
    pub op: ShardOpSpec,
    /// Barrier interval (tuples per epoch) of the originating query's
    /// checkpointing; `None` deploys without checkpoint participation. The
    /// hosted engines commit their window state against the node's own store —
    /// durable when the node runs with a state directory.
    pub checkpoint_interval: Option<u64>,
    /// The origin-pinned epoch the hosted shards must restore to before
    /// processing (a recovery re-deployment); `None` is a fresh start, which
    /// wipes any leftover on-disk state for the group.
    pub restore_epoch: Option<u64>,
}

impl WireEncode for NodeDeployment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.group.encode(out);
        self.shards.encode(out);
        self.total_shards.encode(out);
        self.first_instance.encode(out);
        self.fusion.encode(out);
        self.op.encode(out);
        self.checkpoint_interval.encode(out);
        self.restore_epoch.encode(out);
    }
}

impl WireDecode for NodeDeployment {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let deployment = NodeDeployment {
            group: String::decode(reader)?,
            shards: Vec::decode(reader)?,
            total_shards: u32::decode(reader)?,
            first_instance: u32::decode(reader)?,
            fusion: bool::decode(reader)?,
            op: ShardOpSpec::decode(reader)?,
            checkpoint_interval: Option::decode(reader)?,
            restore_epoch: Option::decode(reader)?,
        };
        if deployment.shards.is_empty() {
            return Err(WireError::new("a node deployment must host shards"));
        }
        if deployment
            .shards
            .iter()
            .any(|&g| g >= deployment.total_shards)
        {
            return Err(WireError::new(format!(
                "shard index out of range for a {}-shard group",
                deployment.total_shards
            )));
        }
        if deployment.checkpoint_interval == Some(0) {
            return Err(WireError::new("checkpoint interval must be positive"));
        }
        if deployment.restore_epoch.is_some() && deployment.checkpoint_interval.is_none() {
            return Err(WireError::new(
                "a restore epoch requires checkpointing to be enabled",
            ));
        }
        Ok(deployment)
    }
}

/// Discard half used where the mux only runs in one direction over a socket:
/// the node never *sends* on the client → node mux, and never *receives* on
/// the node → client one.
#[derive(Clone)]
struct NullSink;

impl FrameSink for NullSink {
    fn send_frame(&self, _frame: Vec<u8>) -> bool {
        false
    }
}

struct NullSource;

impl FrameSource for NullSource {
    fn recv_frame(&self) -> Option<Vec<u8>> {
        None
    }
}

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

fn runtime(err: impl std::fmt::Display) -> io::Error {
    io::Error::other(err.to_string())
}

/// The durable checkpoint stores a node process currently has open, shared
/// between the serving loop and the binary's signal handler so a SIGTERM can
/// flush every manifest before the process exits.
#[derive(Debug, Default, Clone)]
pub struct NodeStores {
    stores: Arc<Mutex<Vec<Arc<DurableBackend>>>>,
}

impl NodeStores {
    /// Creates an empty store registry.
    pub fn new() -> Self {
        NodeStores::default()
    }

    /// Registers `store`, replacing any previously-open store of the same
    /// directory (a group re-deployed on the same node).
    fn register(&self, store: Arc<DurableBackend>) {
        let mut stores = self.stores.lock();
        stores.retain(|s| s.dir() != store.dir());
        stores.push(store);
    }

    /// Flushes every open store's segment and manifest (marking a clean
    /// shutdown); returns how many stores flushed successfully.
    pub fn flush_all(&self) -> usize {
        let stores = self.stores.lock();
        let mut flushed = 0;
        for store in stores.iter() {
            match store.flush() {
                Ok(()) => flushed += 1,
                Err(err) => Tracer::global().emit(
                    "store-flush-failed",
                    "spe-node",
                    format!("flushing {} failed: {err}", store.dir().display()),
                ),
            }
        }
        flushed
    }

    /// A JSON array of per-store status objects (the control endpoint's
    /// `/store` payload).
    pub fn status_json(&self) -> String {
        let stores = self.stores.lock();
        let items: Vec<String> = stores.iter().map(|s| s.status_json()).collect();
        format!("[{}]", items.join(","))
    }
}

/// Serves one deployment connection: reads the [`NodeDeployment`] frame,
/// acknowledges it, hosts the requested shards until they drain, and returns
/// their reports in hosted-shard order.
///
/// The hosted engines' registries are mirrored into `registry` (the node's
/// long-lived registry, normally the one behind its control endpoint) as
/// remote instances keyed `{group}[{shard}]`, so `GET /metrics` on the node
/// shows the live counters of everything it hosts.
///
/// # Errors
/// Fails on a malformed handshake or socket setup. A shard engine failing
/// mid-deployment (e.g. its links severed) is *not* an error here: the failure
/// already propagated to the origin through the closed links, the node stays
/// up, and the failed shard's report is simply absent from the result.
pub fn serve_node_connection(
    stream: TcpStream,
    registry: &Arc<MetricsRegistry>,
    network: NetworkConfig,
) -> io::Result<Vec<QueryReport>> {
    serve_node_connection_with_state(stream, registry, network, None, &NodeStores::new())
}

/// [`serve_node_connection`] with a checkpoint-state directory: when the
/// deployment asks for checkpointing and `state_dir` is set, every hosted
/// engine commits its window state — provenance included, byte-encoded through
/// [`GlWindowPersister`] — into a [`DurableBackend`] at
/// `state_dir/<group>` (incremental snapshots on), scoped per shard so a
/// killed-and-restarted node re-joins from **its own disk**. A deployment
/// carrying a `restore_epoch` restores the hosted engines to that
/// origin-pinned cut before processing; a fresh deployment wipes the group's
/// leftover state first.
///
/// Without a `state_dir` the engines fall back to per-deployment in-memory
/// stores (barrier alignment still works; nothing survives the process — the
/// analyzer's GL014 diagnostic flags this combination at the origin).
///
/// # Errors
/// Fails on a malformed handshake, socket setup, or an unopenable store
/// directory (see [`serve_node_connection`] for what is *not* an error).
pub fn serve_node_connection_with_state(
    stream: TcpStream,
    registry: &Arc<MetricsRegistry>,
    network: NetworkConfig,
    state_dir: Option<&Path>,
    stores: &NodeStores,
) -> io::Result<Vec<QueryReport>> {
    let mut stream = stream;
    apply_socket_options(&stream, &network)?;
    let frame = match read_frame(&mut stream)? {
        ReadOutcome::Frame(frame) => frame,
        ReadOutcome::Goodbye => return Ok(Vec::new()),
    };
    let deployment = NodeDeployment::from_bytes(&frame).map_err(invalid)?;
    write_frame(&mut stream, ACK)?;

    let durable = match (state_dir, deployment.checkpoint_interval) {
        (Some(root), Some(_)) => {
            let dir = root.join(&deployment.group);
            if deployment.restore_epoch.is_none() {
                // A fresh deployment must not resurrect an earlier run's state.
                let _ = std::fs::remove_dir_all(&dir);
            }
            let backend =
                DurableBackend::open_with(&dir, StoreOptions::incremental()).map_err(runtime)?;
            backend.publish_metrics(registry);
            stores.register(Arc::clone(&backend));
            Tracer::global().emit(
                "node-store-open",
                &deployment.group,
                format!(
                    "durable checkpoint store at {} (restore epoch {:?}, latest complete {:?})",
                    backend.dir().display(),
                    deployment.restore_epoch,
                    backend.latest_complete_epoch(),
                ),
            );
            Some(backend)
        }
        _ => None,
    };

    let k = deployment.shards.len();
    let (tx, _tx_stats) = TcpSender::from_stream(stream.try_clone()?, None, network);
    let rx = TcpReceiver::from_stream(stream, None, network);
    let recv_stats = Arc::new(LinkStats::default());
    recv_stats.export_dropped_frames(registry, &format!("{}.node", deployment.group));
    // Client → node: one receiver per hosted shard (the senders go unused).
    let (_unused_txs, forward_rxs) = SharedLink::over(k, NullSink, rx, Arc::clone(&recv_stats));
    // Node → client: data, provenance and metrics channels per hosted shard
    // (the receivers go unused).
    let (back_txs, _unused_rxs) = SharedLink::over(3 * k, tx, NullSource, recv_stats);

    let mut handles = Vec::with_capacity(k);
    let mut shippers = Vec::with_capacity(k);
    let mut mirrors = Vec::with_capacity(k);
    for (j, forward_rx) in forward_rxs.into_iter().enumerate() {
        let global = deployment.shards[j];
        let group = deployment.group.as_str();
        let gl = GeneaLog::for_instance(deployment.first_instance + global);
        let config = QueryConfig::default()
            .with_fusion(deployment.fusion)
            .with_metrics(true);
        let mut q = Query::with_config(gl, config);
        if let Some(interval) = deployment.checkpoint_interval {
            // Each hosted engine gets its own checkpoint store (its barrier
            // alignment is engine-local) over a shard-scoped view of the
            // node's one durable backend, so same-named participants of
            // different shards stay distinct on disk.
            let backend: Arc<dyn StateBackend> = match &durable {
                Some(shared) => ScopedBackend::new(Arc::clone(shared), format!("shard{global}")),
                None => Arc::new(InMemoryBackend::new()),
            };
            let store = CheckpointStore::new(backend);
            if let Some(epoch) = deployment.restore_epoch {
                store.restore_to(epoch);
            }
            q.set_checkpoints(
                CheckpointConfig::new(interval, store)
                    .with_window_persister::<u32, NodeReading, GlMeta>(Arc::new(
                        GlWindowPersister::<u32, NodeReading, NodeReading>::new(),
                    )),
            );
        }
        let received: StreamRef<NodeReading, GlMeta> =
            add_receive(&mut q, &format!("{group}.recv"), forward_rx);
        let out = deployment
            .op
            .build(&mut q, group, received)
            .map_err(invalid)?;
        let (to_send, unfolded) = attach_unfolder(&mut q, &format!("{group}.su"), out);
        add_send(
            &mut q,
            &format!("{group}.send"),
            to_send,
            back_txs[j].clone(),
        );
        let events = q.map_one(
            &format!("{group}.su.events"),
            unfolded,
            |u: &UnfoldedTuple<NodeReading>| u.to_event::<NodeReading>().to_upstream(),
        );
        add_send(
            &mut q,
            &format!("{group}.send.prov"),
            events,
            back_txs[k + j].clone(),
        );
        let handle = q.deploy().map_err(runtime)?;
        shippers.push(spawn_metrics_shipper(
            handle.registry(),
            back_txs[2 * k + j].clone(),
            handle.completion(),
        ));
        // Mirror the engine's registry into the node's own, so the node's
        // control endpoint exposes what it hosts while it runs.
        let completion = handle.completion();
        let engine_registry = handle.registry();
        let node_registry = Arc::clone(registry);
        let key = format!("{group}[{global}]");
        mirrors.push(std::thread::spawn(move || loop {
            if let Some(samples) = decode_samples(&engine_registry.encode_snapshot()) {
                node_registry.install_remote(&key, samples);
            }
            if completion.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }));
        handles.push(handle);
    }
    // The queries own their mux sender clones; dropping ours lets the goodbye
    // sentinel fire once the last shipper finishes.
    drop(back_txs);

    let mut reports = Vec::with_capacity(k);
    for (j, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(report) => reports.push(report),
            Err(err) => Tracer::global().emit(
                "node-shard-failed",
                format!("{}[{}]", deployment.group, deployment.shards[j]),
                format!("hosted shard failed: {err}"),
            ),
        }
    }
    for shipper in shippers {
        shipper.stop();
    }
    for mirror in mirrors {
        let _ = mirror.join();
    }
    Ok(reports)
}

/// Runs a node's accept loop: every connection is served to completion with
/// [`serve_node_connection`], sequentially. `max_deployments` bounds how many
/// connections are served before returning (`None` = forever) — the `--once`
/// flag of the `spe-node` binary.
///
/// # Errors
/// Fails if the listener breaks. Per-connection handshake errors are traced
/// and skipped; a node outlives a misbehaving client.
pub fn run_node(
    listener: TcpListener,
    registry: &Arc<MetricsRegistry>,
    network: NetworkConfig,
    max_deployments: Option<usize>,
) -> io::Result<()> {
    run_node_with_state(
        listener,
        registry,
        network,
        max_deployments,
        None,
        &NodeStores::new(),
    )
}

/// [`run_node`] with a checkpoint-state directory: deployments that ask for
/// checkpointing persist into `state_dir` (see
/// [`serve_node_connection_with_state`]), and every opened store is registered
/// on `stores` so the binary's SIGTERM handler can flush manifests.
///
/// # Errors
/// Fails if the listener breaks; per-connection errors are traced and skipped.
pub fn run_node_with_state(
    listener: TcpListener,
    registry: &Arc<MetricsRegistry>,
    network: NetworkConfig,
    max_deployments: Option<usize>,
    state_dir: Option<&Path>,
    stores: &NodeStores,
) -> io::Result<()> {
    for (served, stream) in listener.incoming().enumerate() {
        match stream
            .and_then(|s| serve_node_connection_with_state(s, registry, network, state_dir, stores))
        {
            Ok(_) => {}
            Err(err) => {
                Tracer::global().emit("node-connection-failed", "spe-node", err.to_string());
            }
        }
        if max_deployments.is_some_and(|max| served + 1 >= max) {
            break;
        }
    }
    Ok(())
}

fn dial(addr: SocketAddr, config: &NetworkConfig) -> io::Result<TcpStream> {
    let mut backoff = config.reconnect_backoff;
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect_timeout(&addr, config.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(err) if attempt >= config.reconnect_attempts => return Err(err),
            Err(_) => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff = backoff.checked_mul(2).unwrap_or(backoff);
            }
        }
    }
}

fn client_error(err: impl std::fmt::Display) -> SpeError {
    SpeError::Runtime {
        operator: "spe-node-client".into(),
        message: err.to_string(),
    }
}

/// Dials the `spe-node` processes of a distributed GeneaLog shard group and
/// returns the same [`GlShardGroup`] the in-process builders produce: the
/// placements (in global shard order) for `place`/`sharded_aggregate_placed`,
/// the group handle for metrics streaming, and the per-shard provenance links
/// for [`logical_shard_provenance_sink`](crate::deployment::logical_shard_provenance_sink).
///
/// `nodes` maps each node address to the global shard indices it hosts; the
/// lists must partition `0..total_shards` of `deployment_for(node)`. The
/// deployment sent to node `n` is `template` with its `shards` replaced by
/// `n`'s list. Calling [`RemoteShardGroup::wait`] on the result joins no local
/// engines (they run in the node processes) but drains the metrics pumps.
///
/// # Errors
/// Fails when a node cannot be reached within the configured
/// connect/reconnect budget, rejects the handshake, or the shard lists do not
/// partition the group.
pub fn connect_gl_node_group(
    template: &NodeDeployment,
    nodes: &[(SocketAddr, Vec<u32>)],
    network: NetworkConfig,
) -> Result<GlShardGroup<NodeReading, NodeReading>, SpeError> {
    let total = template.total_shards as usize;
    let mut seen = vec![false; total];
    for (_, shards) in nodes {
        for &g in shards {
            let slot = seen
                .get_mut(g as usize)
                .ok_or_else(|| client_error(format!("shard {g} out of range")))?;
            if std::mem::replace(slot, true) {
                return Err(client_error(format!("shard {g} assigned twice")));
            }
        }
    }
    if seen.iter().any(|hosted| !hosted) {
        return Err(client_error(format!(
            "the node shard lists must partition 0..{total}"
        )));
    }

    let mut placements: Vec<Option<_>> = (0..total).map(|_| None).collect();
    let mut links: Vec<Option<ShardLinks>> = (0..total).map(|_| None).collect();
    let mut provenance_links: Vec<Option<Box<dyn FrameSource>>> =
        (0..total).map(|_| None).collect();
    let mut metrics_rxs: Vec<Option<Box<dyn FrameSource>>> = (0..total).map(|_| None).collect();
    for (addr, shards) in nodes {
        let k = shards.len();
        let deployment = NodeDeployment {
            shards: shards.clone(),
            ..template.clone()
        };
        let mut stream = dial(*addr, &network).map_err(client_error)?;
        apply_socket_options(&stream, &network).map_err(client_error)?;
        write_frame(&mut stream, &deployment.to_bytes()).map_err(client_error)?;
        match read_frame(&mut stream).map_err(client_error)? {
            ReadOutcome::Frame(ack) if ack == ACK => {}
            ReadOutcome::Frame(_) => {
                return Err(client_error(format!("node {addr} sent a malformed ack")))
            }
            ReadOutcome::Goodbye => {
                return Err(client_error(format!(
                    "node {addr} closed during the handshake"
                )))
            }
        }
        let (tx, forward_stats) =
            TcpSender::from_stream(stream.try_clone().map_err(client_error)?, None, network);
        let rx = TcpReceiver::from_stream(stream, None, network);
        let back_stats = Arc::new(LinkStats::default());
        // Client → node: one sender per hosted shard (the receivers go unused).
        let (forward_txs, _unused_rxs) =
            SharedLink::over(k, tx, NullSource, Arc::clone(&back_stats));
        // Node → client: data, provenance and metrics per hosted shard (the
        // senders go unused).
        let (_unused_txs, back_rxs) =
            SharedLink::over(3 * k, NullSink, rx, Arc::clone(&back_stats));
        let mut back_rxs = back_rxs.into_iter();
        let data_rxs: Vec<_> = back_rxs.by_ref().take(k).collect();
        let prov_rxs: Vec<_> = back_rxs.by_ref().take(k).collect();
        let m_rxs: Vec<_> = back_rxs.collect();
        for (((&g, forward_tx), (data_rx, prov_rx)), metrics_rx) in shards
            .iter()
            .zip(forward_txs)
            .zip(data_rxs.into_iter().zip(prov_rxs))
            .zip(m_rxs)
        {
            let g = g as usize;
            placements[g] = Some(splice_remote_shard::<
                GeneaLog,
                NodeReading,
                NodeReading,
                _,
                _,
            >(&template.group, total, forward_tx, data_rx));
            links[g] = Some(ShardLinks {
                forward: Arc::clone(&forward_stats),
                back: Arc::clone(&back_stats),
            });
            provenance_links[g] = Some(Box::new(prov_rx) as Box<dyn FrameSource>);
            metrics_rxs[g] = Some(Box::new(metrics_rx) as Box<dyn FrameSource>);
        }
    }

    Ok(GlShardGroup {
        placements: placements
            .into_iter()
            .map(|p| p.expect("partition checked"))
            .collect(),
        group: RemoteShardGroup::from_parts(
            Vec::new(),
            links
                .into_iter()
                .map(|l| l.expect("partition checked"))
                .collect(),
            Vec::new(),
            metrics_rxs
                .into_iter()
                .map(|rx| rx.expect("partition checked"))
                .collect(),
        ),
        provenance_links: provenance_links
            .into_iter()
            .map(|rx| rx.expect("partition checked"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_deployments_round_trip_on_the_wire() {
        let deployment = NodeDeployment {
            group: "sum".into(),
            shards: vec![0, 2],
            total_shards: 3,
            first_instance: 1,
            fusion: true,
            op: ShardOpSpec::FilteredScaledSum {
                size_ms: 8_000,
                slide_ms: 4_000,
            },
            checkpoint_interval: Some(5),
            restore_epoch: Some(3),
        };
        let decoded = NodeDeployment::from_bytes(&deployment.to_bytes()).expect("decode");
        assert_eq!(decoded, deployment);
    }

    #[test]
    fn corrupt_node_deployments_are_rejected() {
        let deployment = NodeDeployment {
            group: "sum".into(),
            shards: vec![0],
            total_shards: 1,
            first_instance: 1,
            fusion: false,
            op: ShardOpSpec::SumAggregate {
                size_ms: 1_000,
                slide_ms: 1_000,
            },
            checkpoint_interval: None,
            restore_epoch: None,
        };
        let bytes = deployment.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                NodeDeployment::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Out-of-range shard indices and unknown op tags are semantic errors.
        let out_of_range = NodeDeployment {
            shards: vec![5],
            ..deployment.clone()
        };
        assert!(NodeDeployment::from_bytes(&out_of_range.to_bytes()).is_err());
        let mut bad_op = deployment.to_bytes();
        // u8 op tag + two u64 op fields + the two encoded-None option bytes.
        let op_tag_at = bad_op.len() - 19;
        bad_op[op_tag_at] = 9;
        assert!(NodeDeployment::from_bytes(&bad_op).is_err());
        // A zero checkpoint interval and a restore epoch without checkpointing
        // are semantic errors too.
        let zero_interval = NodeDeployment {
            checkpoint_interval: Some(0),
            ..deployment.clone()
        };
        assert!(NodeDeployment::from_bytes(&zero_interval.to_bytes()).is_err());
        let orphan_restore = NodeDeployment {
            restore_epoch: Some(2),
            ..deployment.clone()
        };
        assert!(NodeDeployment::from_bytes(&orphan_restore.to_bytes()).is_err());
    }
}
