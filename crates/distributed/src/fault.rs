//! Fault injection for distributed deployments.
//!
//! The recovery path of the checkpoint protocol is only trustworthy if it is
//! exercised against the failures it claims to mask. This module provides the
//! controlled failure modes the fault-injection tests drive:
//!
//! * [`LinkFaults`] + [`FaultySender`] — a [`FrameSink`] decorator that drops,
//!   duplicates, delays or severs frames at chosen positions in the stream. A
//!   dropped frame surfaces downstream as a sequence gap, a severed link as a
//!   close without the end-of-stream marker; both push the receiving query into
//!   the recovery path. Duplicated frames must be absorbed silently by the
//!   receiver's sequence numbers.
//! * [`OneShot`] — a fire-once trigger shared between recovery attempts, so an
//!   injected fault (a panicking closure, a severed link) hits the first attempt
//!   and lets the rebuilt deployment run clean.
//! * [`FaultPlan`] — the harness-level description: which shard to kill at which
//!   tuple, and which link faults to arm, on the first attempt only.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::network::FrameSink;

/// Frame-level faults to inject on one link, by frame index (0-based, counted at
/// the faulty sender).
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    /// Frames to drop silently (the sender believes they were delivered).
    pub drop_frames: Vec<u64>,
    /// Frames to deliver twice.
    pub duplicate_frames: Vec<u64>,
    /// Frames to delay by [`LinkFaults::delay`] before delivery.
    pub delay_frames: Vec<u64>,
    /// How long a delayed frame is held back.
    pub delay: Duration,
    /// Sever the link just before this frame would be sent: the underlying
    /// sender is dropped, so the receiver sees the link close mid-stream.
    pub sever_before: Option<u64>,
}

impl LinkFaults {
    /// No faults at all (the decorator becomes a pass-through).
    pub fn none() -> Self {
        LinkFaults::default()
    }

    /// Returns the faults with the given frame indices dropped.
    pub fn dropping(mut self, frames: impl IntoIterator<Item = u64>) -> Self {
        self.drop_frames.extend(frames);
        self
    }

    /// Returns the faults with the given frame indices duplicated.
    pub fn duplicating(mut self, frames: impl IntoIterator<Item = u64>) -> Self {
        self.duplicate_frames.extend(frames);
        self
    }

    /// Returns the faults with the given frame indices delayed by `delay`.
    pub fn delaying(mut self, frames: impl IntoIterator<Item = u64>, delay: Duration) -> Self {
        self.delay_frames.extend(frames);
        self.delay = delay;
        self
    }

    /// Returns the faults with the link severed just before frame `frame`.
    pub fn severing_before(mut self, frame: u64) -> Self {
        self.sever_before = Some(frame);
        self
    }

    /// True if this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop_frames.is_empty()
            && self.duplicate_frames.is_empty()
            && self.delay_frames.is_empty()
            && self.sever_before.is_none()
    }
}

/// A [`FrameSink`] decorator that applies [`LinkFaults`] to the frames passing
/// through it.
///
/// Severing drops the wrapped sender, which is exactly what a crashed peer
/// process does to a connection: the receiving side sees the stream close
/// without its end-of-stream marker and errors out into recovery.
pub struct FaultySender<L> {
    inner: Mutex<Option<L>>,
    faults: LinkFaults,
    sent: AtomicU64,
}

impl<L: FrameSink> FaultySender<L> {
    /// Wraps a sender with the given fault plan.
    pub fn new(inner: L, faults: LinkFaults) -> Self {
        FaultySender {
            inner: Mutex::new(Some(inner)),
            faults,
            sent: AtomicU64::new(0),
        }
    }

    /// Number of frames that reached this decorator so far.
    pub fn observed(&self) -> u64 {
        self.sent.load(Ordering::SeqCst)
    }
}

impl<L: FrameSink> FrameSink for FaultySender<L> {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        let index = self.sent.fetch_add(1, Ordering::SeqCst);
        if self.faults.sever_before == Some(index) {
            // Drop the underlying sender: from here on the link is dead and the
            // receiver observes a mid-stream close.
            self.inner.lock().take();
            return false;
        }
        if self.faults.drop_frames.contains(&index) {
            // Lost on the wire. Report success: a real sender does not know the
            // frame vanished; the receiver's sequence numbers flag the gap.
            return true;
        }
        if self.faults.delay_frames.contains(&index) {
            std::thread::sleep(self.faults.delay);
        }
        let guard = self.inner.lock();
        let Some(inner) = guard.as_ref() else {
            return false;
        };
        if self.faults.duplicate_frames.contains(&index) && !inner.send_frame(frame.clone()) {
            return false;
        }
        inner.send_frame(frame)
    }
}

/// A fire-once trigger.
///
/// Injected faults are shared between recovery attempts through an
/// `Arc<OneShot>`: the first attempt fires the fault, every rebuilt attempt
/// finds it disarmed and runs clean — which is what "the link was
/// re-established" or "the replacement thread stays up" means in the simulated
/// world.
#[derive(Debug, Default)]
pub struct OneShot {
    armed: AtomicBool,
}

impl OneShot {
    /// Creates an armed trigger.
    pub fn armed() -> Arc<Self> {
        Arc::new(OneShot {
            armed: AtomicBool::new(true),
        })
    }

    /// Fires the trigger. Returns `true` exactly once.
    pub fn fire(&self) -> bool {
        self.armed.swap(false, Ordering::SeqCst)
    }

    /// True while the trigger has not fired yet.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }
}

/// The harness-level fault description for one recovered run.
///
/// All faults target the **first** attempt; [`FaultPlan::link_faults_for_attempt`]
/// hands later attempts an empty plan, modelling a fault that does not recur
/// after recovery (the crashed thread is replaced, the severed link
/// re-established).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Kill this shard (by index) ...
    pub kill_shard: usize,
    /// ... after it has processed this many tuples, by panicking its thread.
    pub kill_at_tuple: Option<u64>,
    /// Frame faults to arm on the remote links of attempt 0.
    pub link: LinkFaults,
}

impl FaultPlan {
    /// A plan that kills shard `shard` after `tuples` processed tuples.
    pub fn kill_shard_at(shard: usize, tuples: u64) -> Self {
        FaultPlan {
            kill_shard: shard,
            kill_at_tuple: Some(tuples),
            link: LinkFaults::none(),
        }
    }

    /// A plan that applies `faults` to the remote links.
    pub fn with_link_faults(faults: LinkFaults) -> Self {
        FaultPlan {
            link: faults,
            ..FaultPlan::default()
        }
    }

    /// The link faults to apply on the given recovery attempt: the configured
    /// plan on attempt 0, nothing afterwards.
    pub fn link_faults_for_attempt(&self, attempt: usize) -> LinkFaults {
        if attempt == 0 {
            self.link.clone()
        } else {
            LinkFaults::none()
        }
    }

    /// True if this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.kill_at_tuple.is_none() && self.link.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A sink recording every frame it accepted.
    #[derive(Clone, Default)]
    struct RecordingSink {
        frames: Arc<StdMutex<Vec<Vec<u8>>>>,
    }

    impl FrameSink for RecordingSink {
        fn send_frame(&self, frame: Vec<u8>) -> bool {
            self.frames.lock().unwrap().push(frame);
            true
        }
    }

    #[test]
    fn drops_duplicates_and_severs_at_the_requested_indices() {
        let sink = RecordingSink::default();
        let frames = Arc::clone(&sink.frames);
        let faulty = FaultySender::new(
            sink,
            LinkFaults::none()
                .dropping([1])
                .duplicating([2])
                .severing_before(4),
        );
        assert!(faulty.send_frame(vec![0])); // delivered
        assert!(faulty.send_frame(vec![1])); // dropped, reported as delivered
        assert!(faulty.send_frame(vec![2])); // duplicated
        assert!(faulty.send_frame(vec![3])); // delivered
        assert!(!faulty.send_frame(vec![4])); // severed
        assert!(!faulty.send_frame(vec![5])); // link stays dead
        assert_eq!(
            *frames.lock().unwrap(),
            vec![vec![0], vec![2], vec![2], vec![3]]
        );
        assert_eq!(faulty.observed(), 6);
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let trigger = OneShot::armed();
        assert!(trigger.is_armed());
        assert!(trigger.fire());
        assert!(!trigger.fire());
        assert!(!trigger.is_armed());
    }

    #[test]
    fn fault_plan_targets_attempt_zero_only() {
        let plan = FaultPlan::with_link_faults(LinkFaults::none().severing_before(3));
        assert!(!plan.is_none());
        assert_eq!(plan.link_faults_for_attempt(0).sever_before, Some(3));
        assert!(plan.link_faults_for_attempt(1).is_none());
        assert!(FaultPlan::default().is_none());
        let kill = FaultPlan::kill_shard_at(2, 50);
        assert_eq!(kill.kill_shard, 2);
        assert_eq!(kill.kill_at_tuple, Some(50));
    }
}
