//! The Send and Receive operators (§2) connecting SPE instances over a link.
//!
//! Send serialises every stream element into a wire frame and pushes it onto the link;
//! Receive deserialises frames and re-materialises tuples in the receiving instance,
//! asking the local provenance system for their metadata through the `remote_meta`
//! hook — the received tuple is tagged `REMOTE` unless it was a source tuple at the
//! sending side, exactly as the paper's instrumented Send prescribes (§4.1).

use std::sync::Arc;

use genealog_spe::channel::{OutputSlot, StreamReceiver};
use genealog_spe::error::SpeError;
use genealog_spe::operator::{Operator, OperatorStats};
use genealog_spe::provenance::{NoProvenance, ProvenanceSystem, RemoteContext};
use genealog_spe::tuple::{Element, GTuple, TupleData, TupleId};
use genealog_spe::Timestamp;

use genealog::{GeneaLog, GlMeta, OpKind};
use genealog_baseline::{AriadneBaseline, BlMeta};

use crate::network::{LinkReceiver, LinkSender};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader};

/// The provenance-dependent information a Send operator attaches to each frame: the
/// tuple's unique id and whether it is (still) a source tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireTag {
    /// Unique id of the tuple in the sending instance.
    pub id: TupleId,
    /// Whether the tuple is a source tuple (kept as `SOURCE` across the boundary).
    pub was_source: bool,
}

/// Extension of [`ProvenanceSystem`] for systems whose tuples can cross instance
/// boundaries: extracts the [`WireTag`] the Send operator transmits.
pub trait WireProvenance: ProvenanceSystem {
    /// The wire tag of a tuple about to be sent.
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, Self::Meta>>) -> WireTag;
}

impl WireProvenance for NoProvenance {
    fn wire_tag<T: TupleData>(&self, _tuple: &Arc<GTuple<T, ()>>) -> WireTag {
        WireTag::default()
    }
}

impl WireProvenance for GeneaLog {
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, GlMeta>>) -> WireTag {
        // Multiplex copies are logical duplicates of their input tuple; for
        // cross-instance identity the id of the (transitively) copied tuple is used,
        // so that the id transmitted by Send matches the id recorded by the
        // single-stream unfolder that shares the same Multiplex (Definition 6.4's
        // join key).
        let mut id = tuple.meta.id;
        let mut kind = tuple.meta.kind;
        let mut cursor = tuple.meta.u1.clone();
        while kind == OpKind::Multiplex {
            match cursor {
                Some(origin) => {
                    id = origin.id();
                    kind = origin.kind();
                    cursor = origin.u1();
                }
                None => break,
            }
        }
        WireTag {
            id,
            was_source: kind == OpKind::Source,
        }
    }
}

impl WireProvenance for AriadneBaseline {
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, BlMeta>>) -> WireTag {
        // The baseline has no per-tuple id; re-root the annotation at the first
        // contributor (the distributed baseline ships whole source streams anyway).
        WireTag {
            id: tuple.meta.contributors.first().copied().unwrap_or_default(),
            was_source: tuple.meta.len() == 1,
        }
    }
}

const FRAME_TUPLE: u8 = 0;
const FRAME_WATERMARK: u8 = 1;
const FRAME_END: u8 = 2;

fn encode_tuple_frame<T: WireEncode>(
    ts: Timestamp,
    stimulus: u64,
    tag: WireTag,
    data: &T,
) -> Vec<u8> {
    let mut frame = Vec::with_capacity(64);
    FRAME_TUPLE.encode(&mut frame);
    ts.encode(&mut frame);
    stimulus.encode(&mut frame);
    tag.id.encode(&mut frame);
    tag.was_source.encode(&mut frame);
    data.encode(&mut frame);
    frame
}

fn encode_watermark_frame(ts: Timestamp) -> Vec<u8> {
    let mut frame = Vec::with_capacity(16);
    FRAME_WATERMARK.encode(&mut frame);
    ts.encode(&mut frame);
    frame
}

fn encode_end_frame() -> Vec<u8> {
    vec![FRAME_END]
}

/// A decoded incoming frame.
#[derive(Debug)]
enum DecodedFrame<T> {
    Tuple {
        ts: Timestamp,
        stimulus: u64,
        tag: WireTag,
        data: T,
    },
    Watermark(Timestamp),
    End,
}

fn decode_frame<T: WireDecode>(bytes: &[u8]) -> Result<DecodedFrame<T>, WireError> {
    let mut reader = WireReader::new(bytes);
    match u8::decode(&mut reader)? {
        FRAME_TUPLE => Ok(DecodedFrame::Tuple {
            ts: Timestamp::decode(&mut reader)?,
            stimulus: u64::decode(&mut reader)?,
            tag: WireTag {
                id: TupleId::decode(&mut reader)?,
                was_source: bool::decode(&mut reader)?,
            },
            data: T::decode(&mut reader)?,
        }),
        FRAME_WATERMARK => Ok(DecodedFrame::Watermark(Timestamp::decode(&mut reader)?)),
        FRAME_END => Ok(DecodedFrame::End),
        other => Err(WireError {
            message: format!("unknown frame tag {other}"),
        }),
    }
}

/// The Send operator: serialises a stream onto a link towards another SPE instance.
pub struct SendOp<T, P: ProvenanceSystem> {
    name: String,
    input: StreamReceiver<T, P::Meta>,
    link: LinkSender,
    provenance: P,
}

impl<T, P> SendOp<T, P>
where
    T: TupleData + WireEncode,
    P: WireProvenance,
{
    /// Creates a Send operator writing to `link`.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, P::Meta>,
        link: LinkSender,
        provenance: P,
    ) -> Self {
        SendOp {
            name: name.into(),
            input,
            link,
            provenance,
        }
    }
}

impl<T, P> Operator for SendOp<T, P>
where
    T: TupleData + WireEncode,
    P: WireProvenance,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut stats = OperatorStats::new(self.name.clone());
        loop {
            match self.input.recv() {
                Element::Tuple(tuple) => {
                    stats.tuples_in += 1;
                    let tag = self.provenance.wire_tag(&tuple);
                    let frame = encode_tuple_frame(tuple.ts, tuple.stimulus, tag, &tuple.data);
                    if !self.link.send(frame) {
                        return Ok(stats);
                    }
                    stats.tuples_out += 1;
                }
                Element::Watermark(ts) => {
                    if !self.link.send(encode_watermark_frame(ts)) {
                        return Ok(stats);
                    }
                }
                Element::End => {
                    let _ = self.link.send(encode_end_frame());
                    return Ok(stats);
                }
            }
        }
    }
}

/// The Receive operator: materialises a stream arriving from another SPE instance.
pub struct ReceiveOp<T, P: ProvenanceSystem> {
    name: String,
    link: LinkReceiver,
    output: OutputSlot<T, P::Meta>,
    provenance: P,
}

impl<T, P> ReceiveOp<T, P>
where
    T: TupleData + WireDecode,
    P: ProvenanceSystem,
{
    /// Creates a Receive operator reading from `link`.
    pub fn new(
        name: impl Into<String>,
        link: LinkReceiver,
        output: OutputSlot<T, P::Meta>,
        provenance: P,
    ) -> Self {
        ReceiveOp {
            name: name.into(),
            link,
            output,
            provenance,
        }
    }
}

impl<T, P> Operator for ReceiveOp<T, P>
where
    T: TupleData + WireDecode,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let mut stats = OperatorStats::new(self.name.clone());
        while let Some(frame) = self.link.recv() {
            let decoded = decode_frame::<T>(&frame).map_err(|err| SpeError::Runtime {
                operator: self.name.clone(),
                message: err.to_string(),
            })?;
            match decoded {
                DecodedFrame::Tuple {
                    ts,
                    stimulus,
                    tag,
                    data,
                } => {
                    stats.tuples_in += 1;
                    let meta = self.provenance.remote_meta(&RemoteContext {
                        id: tag.id,
                        ts,
                        was_source: tag.was_source,
                    });
                    let tuple = Arc::new(GTuple::new(ts, stimulus, data, meta));
                    if out.send_tuple(tuple).is_err() {
                        return Ok(stats);
                    }
                    stats.tuples_out += 1;
                }
                DecodedFrame::Watermark(ts) => {
                    if out.send_watermark(ts).is_err() {
                        return Ok(stats);
                    }
                }
                DecodedFrame::End => break,
            }
        }
        let _ = out.send_end();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkConfig, SimulatedLink};
    use genealog_spe::channel::stream_channel;
    use genealog_spe::provenance::SourceContext;

    fn gl_source_tuple(gl: &GeneaLog, ts: u64, v: u32) -> Arc<GTuple<u32, GlMeta>> {
        let ctx = SourceContext {
            source_id: 0,
            seq: 0,
            ts: Timestamp::from_secs(ts),
        };
        let meta = gl.source_meta(&ctx, &v);
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 5, v, meta))
    }

    #[test]
    fn send_receive_round_trip_preserves_data_watermarks_and_ids() {
        let gl_sender = GeneaLog::for_instance(1);
        let gl_receiver = GeneaLog::for_instance(2);
        let (link_tx, link_rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());

        // Sending side: a source tuple and a derived tuple.
        let (in_tx, in_rx) = stream_channel::<u32, GlMeta>(16);
        let source_tuple = gl_source_tuple(&gl_sender, 1, 10);
        let derived = Arc::new(GTuple::new(
            Timestamp::from_secs(2),
            6,
            20u32,
            gl_sender.map_meta(&source_tuple),
        ));
        let derived_id = derived.meta.id;
        in_tx
            .send(Element::Tuple(Arc::clone(&source_tuple)))
            .unwrap();
        in_tx.send(Element::Tuple(derived)).unwrap();
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(2)))
            .unwrap();
        in_tx.send(Element::End).unwrap();
        let send = SendOp::new("send", in_rx, link_tx, gl_sender);
        let send_stats = Box::new(send).run().unwrap();
        assert_eq!(send_stats.tuples_out, 2);
        assert!(stats.bytes() > 0);

        // Receiving side.
        let slot = OutputSlot::<u32, GlMeta>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, gl_receiver);
        let recv_stats = Box::new(receive).run().unwrap();
        assert_eq!(recv_stats.tuples_out, 2);

        // First tuple was a source tuple: it stays SOURCE across the boundary.
        let first = out_rx.recv();
        let first = first.as_tuple().unwrap().clone();
        assert_eq!(first.data, 10);
        assert_eq!(first.meta.kind, OpKind::Source);
        assert_eq!(first.stimulus, 5, "stimulus travels for latency accounting");
        // Second was derived: it becomes REMOTE, keeping the sender-side id.
        let second = out_rx.recv();
        let second = second.as_tuple().unwrap().clone();
        assert_eq!(second.meta.kind, OpKind::Remote);
        assert_eq!(second.meta.id, derived_id);
        assert!(matches!(out_rx.recv(), Element::Watermark(_)));
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn receive_with_no_provenance_and_dropped_sender_terminates() {
        let (link_tx, link_rx, _stats) = SimulatedLink::new(NetworkConfig::unlimited());
        drop(link_tx);
        let slot = OutputSlot::<u32, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(4);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, NoProvenance);
        let stats = Box::new(receive).run().unwrap();
        assert_eq!(stats.tuples_in, 0);
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn corrupt_frames_produce_a_runtime_error() {
        let (link_tx, link_rx, _stats) = SimulatedLink::new(NetworkConfig::unlimited());
        link_tx.send(vec![99, 1, 2, 3]);
        let slot = OutputSlot::<u32, ()>::new();
        let (out_tx, _out_rx) = stream_channel(4);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, NoProvenance);
        let err = Box::new(receive).run().unwrap_err();
        assert!(matches!(err, SpeError::Runtime { .. }));
    }

    #[test]
    fn wire_tags_reflect_each_provenance_system() {
        let np_tuple: Arc<GTuple<u32, ()>> =
            Arc::new(GTuple::new(Timestamp::from_secs(1), 0, 1, ()));
        assert_eq!(NoProvenance.wire_tag(&np_tuple), WireTag::default());

        let gl = GeneaLog::for_instance(4);
        let gl_tuple = gl_source_tuple(&gl, 1, 1);
        let tag = gl.wire_tag(&gl_tuple);
        assert_eq!(tag.id.origin, 4);
        assert!(tag.was_source);

        let bl = AriadneBaseline::new();
        let bl_tuple: Arc<GTuple<u32, BlMeta>> = Arc::new(GTuple::new(
            Timestamp::from_secs(1),
            0,
            1,
            BlMeta::source(TupleId::new(9, 3)),
        ));
        let tag = bl.wire_tag(&bl_tuple);
        assert_eq!(tag.id, TupleId::new(9, 3));
        assert!(tag.was_source);
    }
}
