//! The Send and Receive operators (§2) connecting SPE instances over a link.
//!
//! Send serialises every stream element into a wire frame and pushes it onto the link;
//! Receive deserialises frames and re-materialises tuples in the receiving instance,
//! asking the local provenance system for their metadata through the `remote_meta`
//! hook — the received tuple is tagged `REMOTE` unless it was a source tuple at the
//! sending side, exactly as the paper's instrumented Send prescribes (§4.1).
//!
//! The framing is **batch-aware**: Send drains its input in batches (the engine's
//! batched transport, PR 1) and packs each run of consecutive data tuples into one
//! [`WireFrame::Tuples`] frame, so the per-frame overhead of the link (channel send,
//! simulated store-and-forward, per-frame latency) is amortised over the batch, just
//! as the in-process channels amortise their synchronisation cost. Watermarks and the
//! end-of-stream marker flush the pending run and travel as frames of their own,
//! preserving the engine's ordering semantics across the wire.
//!
//! Both operators are generic over the frame transport ([`FrameSink`] /
//! [`FrameSource`]), so a stream can have a link of its own or share a multiplexed
//! one ([`SharedLink`](crate::network::SharedLink)).

use std::sync::Arc;

use genealog_spe::channel::{OutputSlot, StreamReceiver};
use genealog_spe::error::SpeError;
use genealog_spe::metrics::{OpCounters, OpMetrics};
use genealog_spe::operator::{Operator, OperatorStats};
use genealog_spe::provenance::{NoProvenance, ProvenanceSystem, RemoteContext};
use genealog_spe::state::CheckpointHandle;
use genealog_spe::tuple::{Element, GTuple, TupleData, TupleId};
use genealog_spe::Timestamp;

use genealog::{GeneaLog, GlMeta, OpKind};
use genealog_baseline::{AriadneBaseline, BlMeta};

use crate::network::{FrameSink, FrameSource, LinkReceiver, LinkSender};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader};

/// The provenance-dependent information a Send operator attaches to each frame: the
/// tuple's unique id and whether it is (still) a source tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireTag {
    /// Unique id of the tuple in the sending instance.
    pub id: TupleId,
    /// Whether the tuple is a source tuple (kept as `SOURCE` across the boundary).
    pub was_source: bool,
}

/// Extension of [`ProvenanceSystem`] for systems whose tuples can cross instance
/// boundaries: extracts the [`WireTag`] the Send operator transmits.
pub trait WireProvenance: ProvenanceSystem {
    /// The wire tag of a tuple about to be sent.
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, Self::Meta>>) -> WireTag;
}

impl WireProvenance for NoProvenance {
    fn wire_tag<T: TupleData>(&self, _tuple: &Arc<GTuple<T, ()>>) -> WireTag {
        WireTag::default()
    }
}

impl WireProvenance for GeneaLog {
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, GlMeta>>) -> WireTag {
        // Multiplex copies are logical duplicates of their input tuple; for
        // cross-instance identity the id of the (transitively) copied tuple is used,
        // so that the id transmitted by Send matches the id recorded by the
        // single-stream unfolder that shares the same Multiplex (Definition 6.4's
        // join key).
        let mut id = tuple.meta.id;
        let mut kind = tuple.meta.kind;
        let mut cursor = tuple.meta.u1.clone();
        while kind == OpKind::Multiplex {
            match cursor {
                Some(origin) => {
                    id = origin.id();
                    kind = origin.kind();
                    cursor = origin.u1();
                }
                None => break,
            }
        }
        WireTag {
            id,
            was_source: kind == OpKind::Source,
        }
    }
}

impl WireProvenance for AriadneBaseline {
    fn wire_tag<T: TupleData>(&self, tuple: &Arc<GTuple<T, BlMeta>>) -> WireTag {
        // The baseline has no per-tuple id; re-root the annotation at the first
        // contributor (the distributed baseline ships whole source streams anyway).
        WireTag {
            id: tuple.meta.contributors.first().copied().unwrap_or_default(),
            was_source: tuple.meta.len() == 1,
        }
    }
}

impl WireEncode for WireTag {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.was_source.encode(out);
    }
}

impl WireDecode for WireTag {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WireTag {
            id: TupleId::decode(reader)?,
            was_source: bool::decode(reader)?,
        })
    }
}

const FRAME_TUPLES: u8 = 0;
const FRAME_WATERMARK: u8 = 1;
const FRAME_END: u8 = 2;
const FRAME_BARRIER: u8 = 3;

/// One data tuple as shipped inside a [`WireFrame::Tuples`] frame: the attributes
/// that cross the instance boundary (no `Arc`, no provenance pointers — exactly the
/// constraint §6 starts from).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple<T> {
    /// Logical timestamp of the tuple.
    pub ts: Timestamp,
    /// Stimulus instant, forwarded for end-to-end latency accounting.
    pub stimulus: u64,
    /// The provenance wire tag (sender-side id + source flag).
    pub tag: WireTag,
    /// The payload.
    pub data: T,
}

impl<T: WireEncode> WireEncode for WireTuple<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ts.encode(out);
        self.stimulus.encode(out);
        self.tag.encode(out);
        self.data.encode(out);
    }
}

impl<T: WireDecode> WireDecode for WireTuple<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WireTuple {
            ts: Timestamp::decode(reader)?,
            stimulus: u64::decode(reader)?,
            tag: WireTag::decode(reader)?,
            data: T::decode(reader)?,
        })
    }
}

/// One frame of the inter-instance framing: a *run* of consecutive data tuples
/// (batch-aware framing), a watermark, or the end-of-stream marker.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame<T> {
    /// A run of data tuples sharing one frame.
    Tuples(Vec<WireTuple<T>>),
    /// A watermark; always framed alone so it is never reordered.
    Watermark(Timestamp),
    /// An epoch barrier; framed alone like a watermark, so the checkpoint cut
    /// crosses the instance boundary at its exact stream position.
    Barrier(u64),
    /// The end-of-stream marker.
    End,
}

impl<T: WireEncode> WireEncode for WireFrame<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireFrame::Tuples(run) => {
                FRAME_TUPLES.encode(out);
                run.encode(out);
            }
            WireFrame::Watermark(ts) => {
                FRAME_WATERMARK.encode(out);
                ts.encode(out);
            }
            WireFrame::Barrier(epoch) => {
                FRAME_BARRIER.encode(out);
                epoch.encode(out);
            }
            WireFrame::End => FRAME_END.encode(out),
        }
    }
}

impl<T: WireDecode> WireDecode for WireFrame<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(reader)? {
            FRAME_TUPLES => Ok(WireFrame::Tuples(Vec::<WireTuple<T>>::decode(reader)?)),
            FRAME_WATERMARK => Ok(WireFrame::Watermark(Timestamp::decode(reader)?)),
            FRAME_BARRIER => Ok(WireFrame::Barrier(u64::decode(reader)?)),
            FRAME_END => Ok(WireFrame::End),
            other => Err(WireError {
                message: format!("unknown frame tag {other}"),
            }),
        }
    }
}

/// Incrementally builds a [`WireFrame::Tuples`] frame without materialising the run.
///
/// The Send operator appends tuples straight out of its input batches (no
/// intermediate `WireTuple` allocation, no payload clone) and takes the finished
/// frame when the run is flushed. The byte layout is identical to encoding the
/// equivalent `WireFrame::Tuples` value, which the wire round-trip tests pin.
#[derive(Debug, Default)]
pub struct TupleFrameBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl TupleFrameBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TupleFrameBuilder::default()
    }

    /// Appends one tuple to the pending run.
    pub fn push<T: WireEncode>(&mut self, ts: Timestamp, stimulus: u64, tag: WireTag, data: &T) {
        if self.count == 0 {
            self.buf.clear();
            FRAME_TUPLES.encode(&mut self.buf);
            0u32.encode(&mut self.buf); // run length, patched by `take`
        }
        ts.encode(&mut self.buf);
        stimulus.encode(&mut self.buf);
        tag.encode(&mut self.buf);
        data.encode(&mut self.buf);
        self.count += 1;
    }

    /// Number of tuples in the pending run.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True if no tuple is pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Takes the finished frame, leaving the builder empty; `None` for an empty run.
    pub fn take(&mut self) -> Option<Vec<u8>> {
        if self.count == 0 {
            return None;
        }
        self.buf[1..5].copy_from_slice(&self.count.to_le_bytes());
        self.count = 0;
        Some(std::mem::take(&mut self.buf))
    }
}

fn encode_watermark_frame(ts: Timestamp) -> Vec<u8> {
    WireFrame::<()>::Watermark(ts).to_bytes()
}

fn encode_barrier_frame(epoch: u64) -> Vec<u8> {
    WireFrame::<()>::Barrier(epoch).to_bytes()
}

fn encode_end_frame() -> Vec<u8> {
    WireFrame::<()>::End.to_bytes()
}

/// Prefixes `frame` with its per-link sequence number.
///
/// Every frame a Send operator ships carries a monotonically increasing `u64`,
/// letting the Receive operator detect lost frames (a sequence gap — surfaced as a
/// runtime error so the recovery path replays from the last checkpoint) and discard
/// duplicated ones (a sequence number at or below the last delivered frame).
fn with_seq(seq: u64, frame: Vec<u8>) -> Vec<u8> {
    let mut framed = Vec::with_capacity(frame.len() + 8);
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(&frame);
    framed
}

/// The Send operator: serialises a stream onto a link towards another SPE instance.
///
/// Generic over the frame transport `L`, so the stream can own its link
/// ([`LinkSender`]) or share a multiplexed one
/// ([`MuxSender`](crate::network::MuxSender)).
pub struct SendOp<T, P: ProvenanceSystem, L = LinkSender> {
    name: String,
    input: StreamReceiver<T, P::Meta>,
    link: L,
    provenance: P,
    metrics: OpMetrics,
}

impl<T, P, L> SendOp<T, P, L>
where
    T: TupleData + WireEncode,
    P: WireProvenance,
    L: FrameSink,
{
    /// Creates a Send operator writing to `link`.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, P::Meta>,
        link: L,
        provenance: P,
    ) -> Self {
        SendOp {
            name: name.into(),
            input,
            link,
            provenance,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<T, P, L> Operator for SendOp<T, P, L>
where
    T: TupleData + WireEncode,
    P: WireProvenance,
    L: FrameSink,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let counters = self.metrics.handles(&self.name);
        let mut frame = TupleFrameBuilder::new();
        let mut seq = 0u64;
        // Ships the pending run; tuples count as "out" only once their frame
        // actually made it onto the link. Returns false when the link is down.
        fn flush<L: FrameSink>(
            frame: &mut TupleFrameBuilder,
            link: &L,
            seq: &mut u64,
            counters: &OpCounters,
        ) -> bool {
            let run_len = u64::from(frame.len());
            match frame.take() {
                Some(pending) => {
                    if ship(link, seq, pending) {
                        counters.add_out(run_len);
                        true
                    } else {
                        false
                    }
                }
                None => true,
            }
        }
        // Ships one control or data frame under the next sequence number.
        fn ship<L: FrameSink>(link: &L, seq: &mut u64, frame: Vec<u8>) -> bool {
            if link.send_frame(with_seq(*seq, frame)) {
                *seq += 1;
                true
            } else {
                false
            }
        }
        loop {
            let batch = self.input.recv_batch();
            for element in batch {
                match element {
                    Element::Tuple(tuple) => {
                        counters.inc_in();
                        let tag = self.provenance.wire_tag(&tuple);
                        frame.push(tuple.ts, tuple.stimulus, tag, &tuple.data);
                    }
                    Element::Watermark(ts) => {
                        // The pending run precedes the watermark on the wire, like
                        // the in-process flush policy.
                        if !flush(&mut frame, &self.link, &mut seq, &counters) {
                            return Ok(counters.stats(&self.name));
                        }
                        if !ship(&self.link, &mut seq, encode_watermark_frame(ts)) {
                            return Ok(counters.stats(&self.name));
                        }
                    }
                    Element::Barrier(epoch) => {
                        // Like a watermark: the pre-barrier run must cross the wire
                        // before the cut does.
                        if !flush(&mut frame, &self.link, &mut seq, &counters) {
                            return Ok(counters.stats(&self.name));
                        }
                        if !ship(&self.link, &mut seq, encode_barrier_frame(epoch)) {
                            return Ok(counters.stats(&self.name));
                        }
                    }
                    Element::End => {
                        let _ = flush(&mut frame, &self.link, &mut seq, &counters);
                        let _ = ship(&self.link, &mut seq, encode_end_frame());
                        return Ok(counters.stats(&self.name));
                    }
                }
            }
            // Flush at the batch boundary: one upstream batch becomes (at most) one
            // frame, so wire framing tracks the transport's batch size.
            if !flush(&mut frame, &self.link, &mut seq, &counters) {
                return Ok(counters.stats(&self.name));
            }
        }
    }
}

/// The Receive operator: materialises a stream arriving from another SPE instance
/// (generic over the frame transport `L`, see [`SendOp`]).
pub struct ReceiveOp<T, P: ProvenanceSystem, L = LinkReceiver> {
    name: String,
    link: L,
    output: OutputSlot<T, P::Meta>,
    provenance: P,
    checkpoints: Option<CheckpointHandle>,
    metrics: OpMetrics,
}

impl<T, P, L> ReceiveOp<T, P, L>
where
    T: TupleData + WireDecode,
    P: ProvenanceSystem,
    L: FrameSource,
{
    /// Creates a Receive operator reading from `link`.
    pub fn new(
        name: impl Into<String>,
        link: L,
        output: OutputSlot<T, P::Meta>,
        provenance: P,
    ) -> Self {
        ReceiveOp {
            name: name.into(),
            link,
            output,
            provenance,
            checkpoints: None,
            metrics: OpMetrics::deferred(),
        }
    }

    /// Makes the operator fence the deployment's checkpoint store before failing on
    /// a broken link.
    ///
    /// The fence must be raised *while this operator still holds its output
    /// channel*: only then does it strictly precede the synthesized end-of-stream
    /// the downstream fan-in would otherwise use to drop this input from barrier
    /// alignment, which in turn could let a partial epoch reach completeness (the
    /// upstream instance behind the severed link keeps committing, unaware).
    pub fn with_checkpoints(mut self, checkpoints: CheckpointHandle) -> Self {
        self.checkpoints = Some(checkpoints);
        self
    }
}

impl<T, P, L> Operator for ReceiveOp<T, P, L>
where
    T: TupleData + WireDecode,
    P: ProvenanceSystem,
    L: FrameSource,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        // Raised while `out` is still held, so the fence strictly precedes the
        // synthesized end-of-stream downstream peers see once this thread exits.
        let fail = |message: String| {
            if let Some(config) = self.checkpoints.as_ref().and_then(|h| h.get()) {
                config.store.fence();
            }
            SpeError::Runtime {
                operator: self.name.clone(),
                message,
            }
        };
        let mut expected_seq = 0u64;
        let mut ended = false;
        'frames: while let Some(framed) = self.link.recv_frame() {
            // Wire input must never be able to panic this thread: a frame too
            // short for its sequence prefix is a decode error like any other.
            let Some(seq) = framed
                .get(..8)
                .and_then(|prefix| <[u8; 8]>::try_from(prefix).ok())
                .map(u64::from_le_bytes)
            else {
                return Err(fail(format!(
                    "runt frame of {} bytes (no sequence number)",
                    framed.len()
                )));
            };
            if seq < expected_seq {
                // A link-level duplicate: this frame was already delivered and
                // applied; re-applying it would double tuples downstream.
                continue;
            }
            if seq > expected_seq {
                // A lost frame. The stream can no longer be trusted: fail the query
                // so the recovery path replays it from the last checkpoint.
                return Err(fail(format!(
                    "sequence gap on the link: expected frame {expected_seq}, got {seq}"
                )));
            }
            expected_seq += 1;
            let decoded =
                WireFrame::<T>::from_bytes(&framed[8..]).map_err(|err| fail(err.to_string()))?;
            match decoded {
                WireFrame::Tuples(run) => {
                    for wire_tuple in run {
                        counters.inc_in();
                        let WireTuple {
                            ts,
                            stimulus,
                            tag,
                            data,
                        } = wire_tuple;
                        let meta = self.provenance.remote_meta(&RemoteContext {
                            id: tag.id,
                            ts,
                            was_source: tag.was_source,
                        });
                        let tuple = Arc::new(GTuple::new(ts, stimulus, data, meta));
                        if out.send_tuple(tuple).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                        counters.inc_out();
                    }
                }
                WireFrame::Watermark(ts) => {
                    if out.send_watermark(ts).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                WireFrame::Barrier(epoch) => {
                    if out.send_barrier(epoch).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                WireFrame::End => {
                    ended = true;
                    break 'frames;
                }
            }
        }
        if !ended && expected_seq > 0 {
            // The link died mid-stream (severed connection, crashed sender). A
            // stream that started but never delivered its end marker is incomplete:
            // fail the query so recovery can rebuild and replay it.
            return Err(fail("link closed before the end-of-stream marker".into()));
        }
        let _ = out.send_end();
        Ok(counters.stats(&self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkConfig, SimulatedLink};
    use genealog_spe::channel::stream_channel;
    use genealog_spe::provenance::SourceContext;

    fn gl_source_tuple(gl: &GeneaLog, ts: u64, v: u32) -> Arc<GTuple<u32, GlMeta>> {
        let ctx = SourceContext {
            source_id: 0,
            seq: 0,
            ts: Timestamp::from_secs(ts),
        };
        let meta = gl.source_meta(&ctx, &v);
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 5, v, meta))
    }

    #[test]
    fn send_receive_round_trip_preserves_data_watermarks_and_ids() {
        let gl_sender = GeneaLog::for_instance(1);
        let gl_receiver = GeneaLog::for_instance(2);
        let (link_tx, link_rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());

        // Sending side: a source tuple and a derived tuple.
        let (in_tx, in_rx) = stream_channel::<u32, GlMeta>(16);
        let source_tuple = gl_source_tuple(&gl_sender, 1, 10);
        let derived = Arc::new(GTuple::new(
            Timestamp::from_secs(2),
            6,
            20u32,
            gl_sender.map_meta(&source_tuple),
        ));
        let derived_id = derived.meta.id;
        in_tx
            .send(Element::Tuple(Arc::clone(&source_tuple)))
            .unwrap();
        in_tx.send(Element::Tuple(derived)).unwrap();
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(2)))
            .unwrap();
        in_tx.send(Element::End).unwrap();
        let send = SendOp::new("send", in_rx, link_tx, gl_sender);
        let send_stats = Box::new(send).run().unwrap();
        assert_eq!(send_stats.tuples_out, 2);
        assert!(stats.bytes() > 0);

        // Receiving side.
        let slot = OutputSlot::<u32, GlMeta>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, gl_receiver);
        let recv_stats = Box::new(receive).run().unwrap();
        assert_eq!(recv_stats.tuples_out, 2);

        // First tuple was a source tuple: it stays SOURCE across the boundary.
        let first = out_rx.recv();
        let first = first.as_tuple().unwrap().clone();
        assert_eq!(first.data, 10);
        assert_eq!(first.meta.kind, OpKind::Source);
        assert_eq!(first.stimulus, 5, "stimulus travels for latency accounting");
        // Second was derived: it becomes REMOTE, keeping the sender-side id.
        let second = out_rx.recv();
        let second = second.as_tuple().unwrap().clone();
        assert_eq!(second.meta.kind, OpKind::Remote);
        assert_eq!(second.meta.id, derived_id);
        assert!(matches!(out_rx.recv(), Element::Watermark(_)));
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn receive_with_no_provenance_and_dropped_sender_terminates() {
        let (link_tx, link_rx, _stats) = SimulatedLink::new(NetworkConfig::unlimited());
        drop(link_tx);
        let slot = OutputSlot::<u32, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(4);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, NoProvenance);
        let stats = Box::new(receive).run().unwrap();
        assert_eq!(stats.tuples_in, 0);
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn corrupt_frames_produce_a_runtime_error() {
        let (link_tx, link_rx, _stats) = SimulatedLink::new(NetworkConfig::unlimited());
        link_tx.send(vec![99, 1, 2, 3]);
        let slot = OutputSlot::<u32, ()>::new();
        let (out_tx, _out_rx) = stream_channel(4);
        slot.connect(out_tx);
        let receive = ReceiveOp::new("receive", link_rx, slot, NoProvenance);
        let err = Box::new(receive).run().unwrap_err();
        assert!(matches!(err, SpeError::Runtime { .. }));
    }

    #[test]
    fn wire_tags_reflect_each_provenance_system() {
        let np_tuple: Arc<GTuple<u32, ()>> =
            Arc::new(GTuple::new(Timestamp::from_secs(1), 0, 1, ()));
        assert_eq!(NoProvenance.wire_tag(&np_tuple), WireTag::default());

        let gl = GeneaLog::for_instance(4);
        let gl_tuple = gl_source_tuple(&gl, 1, 1);
        let tag = gl.wire_tag(&gl_tuple);
        assert_eq!(tag.id.origin, 4);
        assert!(tag.was_source);

        let bl = AriadneBaseline::new();
        let bl_tuple: Arc<GTuple<u32, BlMeta>> = Arc::new(GTuple::new(
            Timestamp::from_secs(1),
            0,
            1,
            BlMeta::source(TupleId::new(9, 3)),
        ));
        let tag = bl.wire_tag(&bl_tuple);
        assert_eq!(tag.id, TupleId::new(9, 3));
        assert!(tag.was_source);
    }
}
