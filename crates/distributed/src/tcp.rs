//! A real TCP transport behind the [`FrameSink`] / [`FrameSource`] seam.
//!
//! Frames cross the socket length-delimited: a little-endian `u32` byte count
//! followed by the payload. Everything above this layer — the [`SharedLink`]
//! channel-prefix mux, the Send/Receive operators' sequence numbers, the
//! GeneaLog provenance stitching — is byte-identical to what the
//! [`SimulatedLink`](crate::network::SimulatedLink) carries, which is what lets
//! the distributed proptests run unchanged over loopback sockets.
//!
//! # Failure semantics
//!
//! A clean shutdown (the last [`TcpSender`] clone dropping) writes a goodbye
//! sentinel before closing, so the receiver distinguishes an orderly
//! end-of-stream from a crash. On a broken pipe the sender re-dials up to
//! [`NetworkConfig::reconnect_attempts`] times with a doubling
//! [`NetworkConfig::reconnect_backoff`], re-sending the frame whose write
//! failed; the receiver keeps its listener open for the matching
//! [`reconnect_window`](NetworkConfig::reconnect_window) before declaring the
//! link severed. A frame that was delivered before the connection died and then
//! re-sent arrives twice — the Receive operator's sequence numbers skip the
//! duplicate, exactly as they flag the gap when a frame is lost in flight.
//!
//! Once the budget is exhausted (or immediately, with `reconnect_attempts ==
//! 0`), [`TcpReceiver::recv_frame`] returns `None` mid-stream. The Receive
//! operator treats that as a link severed before the end-of-stream marker,
//! fences the checkpoint store and errors out — so a dropped socket flows into
//! `run_with_recovery` exactly like a simulated
//! [`FaultPlan`](crate::fault::FaultPlan) sever.

use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use genealog_spe::SpeError;
use parking_lot::Mutex;

use crate::deployment::{ShardTransport, ShardWiring};
use crate::network::{FrameSink, FrameSource, LinkStats, NetworkConfig, SharedLink};

/// Largest payload [`TcpReceiver`] accepts. A length prefix beyond this is
/// treated as stream corruption (the link is torn down), bounding the
/// allocation a corrupt or malicious peer can trigger to something a host
/// survives.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Length-prefix sentinel announcing an orderly close (no payload follows).
const GOODBYE: u32 = u32::MAX;

pub(crate) fn apply_socket_options(stream: &TcpStream, config: &NetworkConfig) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream
        .set_read_timeout((config.read_timeout > Duration::ZERO).then_some(config.read_timeout))?;
    stream
        .set_write_timeout((config.write_timeout > Duration::ZERO).then_some(config.write_timeout))
}

pub(crate) fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    let len = frame.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(frame)
}

pub(crate) enum ReadOutcome {
    Frame(Vec<u8>),
    Goodbye,
}

pub(crate) fn read_frame(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len == GOODBYE {
        return Ok(ReadOutcome::Goodbye);
    }
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(ReadOutcome::Frame(payload))
}

struct SendState {
    stream: Option<TcpStream>,
}

/// Writes the goodbye sentinel when the last [`TcpSender`] clone drops, so the
/// peer sees an orderly close instead of a crash.
struct GoodbyeGuard {
    state: Arc<Mutex<SendState>>,
    dead: Arc<AtomicBool>,
}

impl Drop for GoodbyeGuard {
    fn drop(&mut self) {
        if self.dead.load(Ordering::SeqCst) {
            return;
        }
        let mut state = self.state.lock();
        if let Some(stream) = state.stream.as_mut() {
            let _ = stream.write_all(&GOODBYE.to_le_bytes());
            let _ = stream.shutdown(Shutdown::Write);
        }
        state.stream = None;
    }
}

/// The sending half of a TCP link. Cloneable — clones share the connection, the
/// reconnect budget and the traffic counters, and the goodbye sentinel is
/// written when the last clone drops.
#[derive(Clone)]
pub struct TcpSender {
    state: Arc<Mutex<SendState>>,
    dead: Arc<AtomicBool>,
    config: NetworkConfig,
    reconnect_addr: Option<SocketAddr>,
    stats: Arc<LinkStats>,
    _goodbye: Arc<GoodbyeGuard>,
}

impl TcpSender {
    /// Dials `addr` — immediately, then with the configured backoff/retry
    /// budget — and returns the sender plus its traffic counters. Broken pipes
    /// later re-dial the same address.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: NetworkConfig,
    ) -> io::Result<(Self, Arc<LinkStats>)> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut backoff = config.reconnect_backoff;
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => break stream,
                Err(err) if attempt >= config.reconnect_attempts => return Err(err),
                Err(_) => {
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.checked_mul(2).unwrap_or(backoff);
                }
            }
        };
        apply_socket_options(&stream, &config)?;
        Ok(Self::from_stream(stream, Some(addr), config))
    }

    /// Wraps an already-connected stream (e.g. the accepted side of a
    /// bidirectional deployment socket). With `reconnect_addr == None` a broken
    /// pipe severs the link on the spot — an accepted connection has nowhere to
    /// re-dial.
    pub fn from_stream(
        stream: TcpStream,
        reconnect_addr: Option<SocketAddr>,
        config: NetworkConfig,
    ) -> (Self, Arc<LinkStats>) {
        let _ = apply_socket_options(&stream, &config);
        let state = Arc::new(Mutex::new(SendState {
            stream: Some(stream),
        }));
        let dead = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LinkStats::default());
        let sender = TcpSender {
            _goodbye: Arc::new(GoodbyeGuard {
                state: Arc::clone(&state),
                dead: Arc::clone(&dead),
            }),
            state,
            dead,
            config,
            reconnect_addr,
            stats: Arc::clone(&stats),
        };
        (sender, stats)
    }

    /// A handle that kills the connection abruptly — no goodbye, no reconnect —
    /// from any thread. The receiving side observes a mid-stream close, which
    /// is the byte-level equivalent of a
    /// [`FaultPlan`](crate::fault::FaultPlan) sever.
    pub fn sever_handle(&self) -> TcpSeverHandle {
        TcpSeverHandle {
            state: Arc::clone(&self.state),
            dead: Arc::clone(&self.dead),
        }
    }

    /// Per-link traffic counters.
    pub fn stats(&self) -> Arc<LinkStats> {
        Arc::clone(&self.stats)
    }
}

impl FrameSink for TcpSender {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        if frame.len() as u64 >= u64::from(GOODBYE) {
            return false;
        }
        if self.dead.load(Ordering::SeqCst) {
            return false;
        }
        let mut state = self.state.lock();
        let mut backoff = self.config.reconnect_backoff;
        for attempt in 0..=self.config.reconnect_attempts {
            if self.dead.load(Ordering::SeqCst) {
                return false;
            }
            if attempt > 0 {
                // Re-dial with backoff. Holding the lock is deliberate: the
                // connection is shared, so sibling mux channels have nothing
                // useful to do until it is back.
                let Some(addr) = self.reconnect_addr else {
                    break;
                };
                std::thread::sleep(backoff);
                backoff = backoff.checked_mul(2).unwrap_or(backoff);
                match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                    Ok(stream) => {
                        let _ = apply_socket_options(&stream, &self.config);
                        state.stream = Some(stream);
                    }
                    Err(_) => continue,
                }
            }
            let Some(stream) = state.stream.as_mut() else {
                continue;
            };
            if write_frame(stream, &frame).is_ok() {
                // Mirror the simulated link's accounting: every frame that made
                // it onto the wire counts, re-sends after a reconnect included.
                self.stats.record(frame.len());
                return true;
            }
            state.stream = None;
        }
        self.dead.store(true, Ordering::SeqCst);
        state.stream = None;
        false
    }
}

/// Abrupt kill switch for a [`TcpSender`]'s connection (see
/// [`TcpSender::sever_handle`]).
pub struct TcpSeverHandle {
    state: Arc<Mutex<SendState>>,
    dead: Arc<AtomicBool>,
}

impl TcpSeverHandle {
    /// Shuts the socket down in both directions without the goodbye sentinel
    /// and marks the sender dead so it never reconnects.
    pub fn sever(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let mut state = self.state.lock();
        if let Some(stream) = state.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The receiving half of a TCP link.
///
/// After an abrupt disconnect it keeps its listener (when it has one) open for
/// the peer's [`reconnect_window`](NetworkConfig::reconnect_window) and resumes
/// on the fresh connection; a goodbye sentinel or an exhausted window closes
/// the source for good.
pub struct TcpReceiver {
    stream: Mutex<Option<TcpStream>>,
    listener: Option<TcpListener>,
    closed: AtomicBool,
    config: NetworkConfig,
}

impl TcpReceiver {
    /// Wraps an already-connected stream. `listener`, when given, is kept for
    /// re-accepting after an abrupt disconnect.
    pub fn from_stream(
        stream: TcpStream,
        listener: Option<TcpListener>,
        config: NetworkConfig,
    ) -> Self {
        let _ = apply_socket_options(&stream, &config);
        TcpReceiver {
            stream: Mutex::new(Some(stream)),
            listener,
            closed: AtomicBool::new(false),
            config,
        }
    }

    /// Polls the listener for a replacement connection for at most the
    /// configured reconnect window.
    fn reaccept(&self) -> Option<TcpStream> {
        let listener = self.listener.as_ref()?;
        let window = self.config.reconnect_window();
        if window.is_zero() {
            return None;
        }
        listener.set_nonblocking(true).ok()?;
        let deadline = Instant::now() + window;
        let stream = loop {
            match listener.accept() {
                Ok((stream, _)) => break Some(stream),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break None,
            }
        };
        let _ = listener.set_nonblocking(false);
        let stream = stream?;
        apply_socket_options(&stream, &self.config).ok()?;
        Some(stream)
    }
}

impl FrameSource for TcpReceiver {
    fn recv_frame(&self) -> Option<Vec<u8>> {
        if self.closed.load(Ordering::SeqCst) {
            return None;
        }
        let mut guard = self.stream.lock();
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(stream) = guard.as_mut() {
                match read_frame(stream) {
                    Ok(ReadOutcome::Frame(payload)) => return Some(payload),
                    Ok(ReadOutcome::Goodbye) => {
                        self.closed.store(true, Ordering::SeqCst);
                        *guard = None;
                        return None;
                    }
                    Err(_) => {
                        // Abrupt close (or read timeout): give the peer its
                        // reconnect window before declaring the link severed.
                        *guard = None;
                    }
                }
            }
            match self.reaccept() {
                Some(stream) => *guard = Some(stream),
                None => {
                    self.closed.store(true, Ordering::SeqCst);
                    return None;
                }
            }
        }
    }
}

/// Factory for TCP links, mirroring [`SimulatedLink`](crate::network::SimulatedLink).
#[derive(Debug, Clone, Copy)]
pub struct TcpLink;

impl TcpLink {
    /// An in-process loopback link over a real socket: binds an ephemeral
    /// listener, dials it, and splits the connection into halves. The receiver
    /// keeps the listener, so a broken pipe heals through the sender's
    /// re-dial + the receiver's re-accept.
    #[allow(clippy::new_ret_no_self)] // like SimulatedLink, only used as its halves
    pub fn pair(config: NetworkConfig) -> io::Result<(TcpSender, TcpReceiver, Arc<LinkStats>)> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let (sender, stats) = TcpSender::connect(addr, config)?;
        let (stream, _) = listener.accept()?;
        let receiver = TcpReceiver::from_stream(stream, Some(listener), config);
        Ok((sender, receiver, stats))
    }
}

/// A [`FrameSink`] decorator that severs the physical socket before its `n`-th
/// frame goes out — the TCP analogue of
/// [`LinkFaults::severing_before`](crate::fault::LinkFaults::severing_before),
/// except the cut happens below the mux, so every channel of the link dies with
/// it (exactly what a crashed process does to its connection).
struct SocketKiller<S> {
    inner: S,
    handle: TcpSeverHandle,
    sever_before: u64,
    sent: AtomicU64,
}

impl<S: FrameSink> FrameSink for SocketKiller<S> {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        let index = self.sent.fetch_add(1, Ordering::SeqCst);
        if index == self.sever_before {
            self.handle.sever();
            return false;
        }
        self.inner.send_frame(frame)
    }
}

/// A [`ShardTransport`] wiring every shard over real loopback sockets.
///
/// [`with_return_kill`](Self::with_return_kill) arms a one-shot fault for
/// fault-injection tests: the designated shard's return socket is shut down
/// abruptly before its `n`-th data frame, mid-epoch sever included.
#[derive(Debug, Clone, Copy)]
pub struct TcpLoopbackTransport {
    network: NetworkConfig,
    kill_return: Option<(usize, u64)>,
}

impl TcpLoopbackTransport {
    /// A transport with the given socket configuration and no armed faults.
    pub fn new(network: NetworkConfig) -> Self {
        TcpLoopbackTransport {
            network,
            kill_return: None,
        }
    }

    /// Arms the socket killer: shard `shard`'s return connection is severed —
    /// `shutdown(2)`, no goodbye — before its `before_frame`-th data frame.
    pub fn with_return_kill(mut self, shard: usize, before_frame: u64) -> Self {
        self.kill_return = Some((shard, before_frame));
        self
    }
}

impl ShardTransport for TcpLoopbackTransport {
    fn shard_links(&self, shard: usize, back_channels: usize) -> Result<ShardWiring, SpeError> {
        let sockets = |what: &'static str| {
            move |err: io::Error| SpeError::Runtime {
                operator: "tcp-transport".into(),
                message: format!("{what} socket failed: {err}"),
            }
        };
        let (forward_tx, forward_rx, forward_stats) =
            TcpLink::pair(self.network).map_err(sockets("forward"))?;
        let (back_tx, back_rx, back_stats) =
            TcpLink::pair(self.network).map_err(sockets("return"))?;
        let mut kill = self
            .kill_return
            .filter(|&(victim, _)| victim == shard)
            .map(|(_, before_frame)| (back_tx.sever_handle(), before_frame));
        let (back_txs, back_rxs) =
            SharedLink::over(back_channels, back_tx, back_rx, Arc::clone(&back_stats));
        let back_txs = back_txs
            .into_iter()
            .enumerate()
            .map(|(channel, tx)| match (channel, kill.take()) {
                // Channel 0 is the data stream: count its frames, cut the socket.
                (0, Some((handle, sever_before))) => Box::new(SocketKiller {
                    inner: tx,
                    handle,
                    sever_before,
                    sent: AtomicU64::new(0),
                }) as Box<dyn FrameSink>,
                (_, taken) => {
                    kill = taken;
                    Box::new(tx) as Box<dyn FrameSink>
                }
            })
            .collect();
        Ok(ShardWiring {
            forward_tx: Box::new(forward_tx),
            forward_rx: Box::new(forward_rx),
            forward_stats,
            back_txs,
            back_rxs: back_rxs
                .into_iter()
                .map(|rx| Box::new(rx) as Box<dyn FrameSource>)
                .collect(),
            back_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> NetworkConfig {
        NetworkConfig::unlimited()
            .with_connect_timeout(Duration::from_millis(500))
            .with_reconnects(3, Duration::from_millis(10))
    }

    #[test]
    fn frames_cross_a_real_socket_in_order() {
        let (tx, rx, stats) = TcpLink::pair(quick()).expect("loopback pair");
        assert!(tx.send_frame(vec![1, 2, 3]));
        assert!(tx.send_frame(vec![]));
        assert!(tx.send_frame(vec![4]));
        assert_eq!(rx.recv_frame().unwrap(), vec![1, 2, 3]);
        assert_eq!(rx.recv_frame().unwrap(), Vec::<u8>::new());
        assert_eq!(rx.recv_frame().unwrap(), vec![4]);
        assert_eq!(stats.frames(), 3);
        assert_eq!(stats.bytes(), 4);
        drop(tx);
        // The goodbye sentinel closes the stream cleanly.
        assert!(rx.recv_frame().is_none());
        assert!(rx.recv_frame().is_none());
    }

    #[test]
    fn mux_channels_share_one_socket() {
        let (tx, rx, stats) = TcpLink::pair(quick()).expect("loopback pair");
        let (txs, rxs) = SharedLink::over(2, tx, rx, stats);
        assert!(txs[0].send_frame(vec![10]));
        assert!(txs[1].send_frame(vec![20]));
        assert!(txs[0].send_frame(vec![11]));
        assert_eq!(rxs[1].recv_frame().unwrap(), vec![20]);
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![10]);
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![11]);
        drop(txs);
        assert!(rxs[0].recv_frame().is_none());
        assert!(rxs[1].recv_frame().is_none());
    }

    #[test]
    fn sender_reconnects_after_a_broken_pipe() {
        let (tx, rx, _stats) = TcpLink::pair(quick()).expect("loopback pair");
        // A pump keeps sending; the first frames confirm the link is up.
        let stop = Arc::new(AtomicBool::new(false));
        let pump_stop = Arc::clone(&stop);
        let pump_tx = tx.clone();
        let pump = std::thread::spawn(move || {
            let mut i: u32 = 0;
            while !pump_stop.load(Ordering::SeqCst) {
                pump_tx.send_frame(i.to_le_bytes().to_vec());
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rx.recv_frame().is_some());
        // Kill the established connection under the receiver's feet (its
        // listener survives, modelling a transient network cut): the sender
        // must hit the broken pipe, re-dial, and frames must flow again.
        {
            let mut guard = rx.stream.lock();
            if let Some(stream) = guard.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let mut post_cut = 0;
        while post_cut < 30 {
            match rx.recv_frame() {
                Some(_) => post_cut += 1,
                None => break,
            }
        }
        stop.store(true, Ordering::SeqCst);
        pump.join().unwrap();
        assert!(
            post_cut >= 30,
            "frames must flow again after the reconnect, got {post_cut}"
        );
        drop(tx);
    }

    #[test]
    fn severed_socket_reports_a_mid_stream_close() {
        let config = quick().with_reconnects(0, Duration::ZERO);
        let (tx, rx, _stats) = TcpLink::pair(config).expect("loopback pair");
        assert!(tx.send_frame(vec![1]));
        assert_eq!(rx.recv_frame().unwrap(), vec![1]);
        tx.sever_handle().sever();
        // No goodbye and no reconnect budget: the source ends mid-stream.
        assert!(rx.recv_frame().is_none());
        // The dead sender never resurrects the link.
        assert!(!tx.send_frame(vec![2]));
    }

    #[test]
    fn oversized_length_prefix_tears_the_link_down() {
        let config = quick().with_reconnects(0, Duration::ZERO);
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut raw = TcpStream::connect(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        let rx = TcpReceiver::from_stream(stream, Some(listener), config);
        // A length prefix far past the cap (but below the goodbye sentinel).
        raw.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
            .expect("write");
        assert!(rx.recv_frame().is_none());
    }
}
