//! Simulated network links between SPE instances.
//!
//! The paper's testbed connects the three Odroid boards through a 100 Mbps switch.
//! [`SimulatedLink`] models such a link: a frame queue whose delivery is delayed by a
//! fixed propagation latency plus a serialisation delay proportional to the frame size
//! and the configured bandwidth, with per-link counters of frames and bytes so the
//! benchmarks can compare how much each provenance configuration ships.
//!
//! [`SharedLink`] multiplexes several logical frame channels onto one such link (the
//! common case for distributed shard groups, where a remote instance returns both its
//! result stream and its unfolded provenance stream to the originating instance over
//! one physical connection). The [`FrameSink`] / [`FrameSource`] traits abstract over
//! plain and multiplexed link halves, so the Send and Receive operators work with
//! either.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, unbounded, Receiver, SendTimeoutError, Sender};
use genealog_metrics::{MetricsRegistry, Tracer};
use parking_lot::Mutex;

/// Bandwidth and propagation latency of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Link bandwidth in bits per second (0 = infinite).
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: Duration,
    /// High-water mark of the link's send queue, in frames (0 = unbounded).
    ///
    /// A real socket exerts back-pressure: once the kernel send buffer fills, the
    /// sending thread blocks until the receiver drains. Bounding the simulated
    /// queue reproduces that behaviour — [`LinkSender::send`] blocks while
    /// `send_queue_frames` frames are in flight — so cross-process back-pressure is
    /// exercised before the real TCP transport lands. The default bound is
    /// deliberately modest; raise it (or set 0) to decouple sender and receiver.
    pub send_queue_frames: usize,
    /// Upper bound on how long a bounded send may block on a full queue before the
    /// link is declared dead (0 = wait forever).
    ///
    /// Without it, a receiver that stops draining — a crashed remote instance whose
    /// receiving thread is gone but whose queue is still full — wedges the sending
    /// operator forever. With the timeout the send fails instead, the Send operator
    /// reports a broken link, and the recovery path gets to rebuild the deployment.
    pub send_timeout: Duration,
    /// Per-attempt timeout of a TCP connect (the TCP transport only; the simulated
    /// link has no connection phase).
    pub connect_timeout: Duration,
    /// Socket read timeout of the TCP transport (0 = block indefinitely). A
    /// timed-out read is treated as a dead peer, so only set this on links where
    /// frames flow continuously.
    pub read_timeout: Duration,
    /// Socket write timeout of the TCP transport (0 = block indefinitely). Plays
    /// the role [`send_timeout`](Self::send_timeout) plays on the simulated link:
    /// a receiver that stops draining eventually fails the write instead of
    /// wedging the sending operator.
    pub write_timeout: Duration,
    /// How many times the TCP transport re-dials a broken connection (both the
    /// initial connect and reconnects after a broken pipe) before declaring the
    /// link dead. 0 disables reconnection: the first broken pipe severs the link.
    pub reconnect_attempts: u32,
    /// Backoff before the first re-dial, doubling on every subsequent attempt.
    pub reconnect_backoff: Duration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // The evaluation's 100 Mbps switch with a sub-millisecond LAN latency and a
        // kernel-buffer-sized send queue.
        NetworkConfig {
            bandwidth_bps: 100_000_000,
            latency: Duration::from_micros(200),
            send_queue_frames: 4_096,
            send_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::ZERO,
            write_timeout: Duration::from_secs(5),
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(50),
        }
    }
}

impl NetworkConfig {
    /// A link with unlimited bandwidth, no latency and an unbounded send queue
    /// (useful in tests).
    pub fn unlimited() -> Self {
        NetworkConfig {
            bandwidth_bps: 0,
            latency: Duration::ZERO,
            send_queue_frames: 0,
            send_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::ZERO,
            write_timeout: Duration::from_secs(5),
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(50),
        }
    }

    /// Returns the configuration with a different send-queue high-water mark
    /// (0 = unbounded).
    pub fn with_send_queue_frames(mut self, frames: usize) -> Self {
        self.send_queue_frames = frames;
        self
    }

    /// Returns the configuration with a different bounded-send timeout
    /// (0 = wait forever).
    pub fn with_send_timeout(mut self, timeout: Duration) -> Self {
        self.send_timeout = timeout;
        self
    }

    /// Returns the configuration with a different per-attempt TCP connect timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Returns the configuration with a different TCP read timeout
    /// (0 = block indefinitely).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Returns the configuration with a different TCP write timeout
    /// (0 = block indefinitely).
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Returns the configuration with a different reconnect budget: up to
    /// `attempts` re-dials per broken connection, backing off `backoff` before the
    /// first and doubling on each subsequent attempt. `attempts == 0` makes the
    /// first broken pipe sever the link immediately.
    pub fn with_reconnects(mut self, attempts: u32, backoff: Duration) -> Self {
        self.reconnect_attempts = attempts;
        self.reconnect_backoff = backoff;
        self
    }

    /// Worst-case time a peer may spend re-dialling a broken connection under this
    /// configuration: the sum of the (doubling) backoffs plus one connect timeout
    /// per attempt. The receiving side of the TCP transport keeps its listener
    /// open for this long after an abrupt disconnect before declaring the link
    /// severed.
    pub fn reconnect_window(&self) -> Duration {
        let mut window = Duration::ZERO;
        let mut backoff = self.reconnect_backoff;
        for _ in 0..self.reconnect_attempts {
            window += backoff + self.connect_timeout;
            backoff *= 2;
        }
        window.min(Duration::from_secs(10))
    }

    /// Time needed to serialise `bytes` onto the link.
    pub fn transmission_delay(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps as f64)
        }
    }
}

/// Counters describing the traffic that crossed one link.
#[derive(Debug, Default)]
pub struct LinkStats {
    frames: AtomicU64,
    bytes: AtomicU64,
    dropped_runt: AtomicU64,
    dropped_unroutable: AtomicU64,
}

impl LinkStats {
    /// Number of frames sent over the link.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Number of payload bytes sent over the link.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of received frames discarded because they were too short to carry a
    /// channel prefix (< 4 bytes).
    pub fn dropped_runt(&self) -> u64 {
        self.dropped_runt.load(Ordering::Relaxed)
    }

    /// Number of received frames discarded because their channel id addressed no
    /// channel of the link.
    pub fn dropped_unroutable(&self) -> u64 {
        self.dropped_unroutable.load(Ordering::Relaxed)
    }

    /// Total number of received frames the demultiplexer had to discard. Zero on
    /// a healthy link: every drop means a peer sent something this side cannot
    /// route, and the frame's payload is lost.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped_runt() + self.dropped_unroutable()
    }

    pub(crate) fn record(&self, bytes: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_runt(&self) {
        self.dropped_runt.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_unroutable(&self) {
        self.dropped_unroutable.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the link's drop counters as the
    /// `genealog_link_dropped_frames_total{link=..,reason=..}` series on
    /// `registry`, sampled live at every snapshot. A healthy link reports 0 on
    /// both reasons; any increase means received payloads were discarded by the
    /// demultiplexer.
    pub fn export_dropped_frames(self: &Arc<Self>, registry: &MetricsRegistry, link: &str) {
        let stats = Arc::clone(self);
        registry.counter_fn(
            "genealog_link_dropped_frames_total",
            &[("link", link), ("reason", "runt")],
            Arc::new(move || stats.dropped_runt()),
        );
        let stats = Arc::clone(self);
        registry.counter_fn(
            "genealog_link_dropped_frames_total",
            &[("link", link), ("reason", "unroutable")],
            Arc::new(move || stats.dropped_unroutable()),
        );
    }
}

struct Frame {
    payload: Vec<u8>,
    deliver_at: Instant,
}

/// Factory for one direction of a link between two SPE instances.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedLink;

/// The sending half of a simulated link.
#[derive(Clone)]
pub struct LinkSender {
    config: NetworkConfig,
    stats: Arc<LinkStats>,
    tx: Sender<Frame>,
    tx_busy_until: Arc<parking_lot::Mutex<Instant>>,
}

/// The receiving half of a simulated link.
pub struct LinkReceiver {
    rx: Receiver<Frame>,
}

impl SimulatedLink {
    /// Creates a link with the given characteristics and splits it into halves.
    #[allow(clippy::new_ret_no_self)] // a link is only ever used as its two halves
    pub fn new(config: NetworkConfig) -> (LinkSender, LinkReceiver, Arc<LinkStats>) {
        let stats = Arc::new(LinkStats::default());
        let (tx, rx) = if config.send_queue_frames == 0 {
            unbounded()
        } else {
            bounded(config.send_queue_frames)
        };
        let sender = LinkSender {
            config,
            stats: Arc::clone(&stats),
            tx,
            tx_busy_until: Arc::new(parking_lot::Mutex::new(Instant::now())),
        };
        let receiver = LinkReceiver { rx };
        (sender, receiver, stats)
    }
}

impl LinkSender {
    /// Sends one frame over the link.
    ///
    /// The call never blocks for the simulated *transmission* time; instead the
    /// frame is stamped with its earliest delivery instant (`now + queued transmission
    /// delay + propagation latency`) and the receiver waits until then, which models a
    /// store-and-forward switch without slowing the sender's thread artificially. It
    /// DOES block while the send queue holds
    /// [`NetworkConfig::send_queue_frames`] undelivered frames — the link's
    /// back-pressure point — but for at most [`NetworkConfig::send_timeout`] when
    /// that is non-zero.
    ///
    /// Returns `false` if the receiving instance has shut down, or if a bounded
    /// queue stayed full past the send timeout (a receiver that will never drain
    /// again looks exactly like back-pressure; the timeout is what tells them
    /// apart).
    pub fn send(&self, payload: Vec<u8>) -> bool {
        let size = payload.len();
        self.stats.record(size);
        let now = Instant::now();
        let deliver_at = {
            let mut busy = self.tx_busy_until.lock();
            let start = (*busy).max(now);
            let done = start + self.config.transmission_delay(size);
            *busy = done;
            done + self.config.latency
        };
        let frame = Frame {
            payload,
            deliver_at,
        };
        if self.config.send_queue_frames != 0 && self.config.send_timeout > Duration::ZERO {
            match self.tx.send_timeout(frame, self.config.send_timeout) {
                Ok(()) => true,
                Err(SendTimeoutError::Timeout(_)) | Err(SendTimeoutError::Disconnected(_)) => false,
            }
        } else {
            self.tx.send(frame).is_ok()
        }
    }

    /// Per-link statistics.
    pub fn stats(&self) -> Arc<LinkStats> {
        Arc::clone(&self.stats)
    }
}

impl LinkReceiver {
    /// Receives the next frame, honouring the simulated delivery time.
    /// Returns `None` when the sending instance has shut down and no frames remain.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let frame = self.rx.recv().ok()?;
        let now = Instant::now();
        if frame.deliver_at > now {
            std::thread::sleep(frame.deliver_at - now);
        }
        Some(frame.payload)
    }
}

/// The sending side of a frame transport towards another SPE instance.
///
/// Implemented by the plain [`LinkSender`] and by the per-channel [`MuxSender`]s of a
/// [`SharedLink`], so the Send operator is agnostic to whether its stream has a link
/// of its own or shares one.
pub trait FrameSink: Send + 'static {
    /// Ships one frame. Returns `false` if the receiving instance has shut down.
    fn send_frame(&self, frame: Vec<u8>) -> bool;
}

/// The receiving side of a frame transport (see [`FrameSink`]).
pub trait FrameSource: Send + 'static {
    /// Receives the next frame, honouring the simulated delivery time. Returns
    /// `None` once the sending instance has shut down and no frames remain.
    fn recv_frame(&self) -> Option<Vec<u8>>;
}

impl FrameSink for LinkSender {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        self.send(frame)
    }
}

impl FrameSource for LinkReceiver {
    fn recv_frame(&self) -> Option<Vec<u8>> {
        self.recv()
    }
}

impl FrameSink for Box<dyn FrameSink> {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        (**self).send_frame(frame)
    }
}

impl FrameSource for Box<dyn FrameSource> {
    fn recv_frame(&self) -> Option<Vec<u8>> {
        (**self).recv_frame()
    }
}

/// Factory for a link carrying several multiplexed frame channels.
///
/// Each frame is prefixed with its channel id (a little-endian `u32`), so what the
/// [`LinkStats`] count is what actually crosses the wire. The receiving side
/// demultiplexes *on demand*: a channel's receiver first drains its own queue, then
/// pulls frames off the shared link, parking frames addressed to other channels in
/// their queues. No demux thread is needed; progress is guaranteed because every
/// channel's sender terminates its stream with an explicit end frame.
#[derive(Debug, Clone, Copy)]
pub struct SharedLink;

/// The sending half of one channel of a [`SharedLink`].
#[derive(Clone)]
pub struct MuxSender<S: FrameSink + Clone = LinkSender> {
    channel: u32,
    inner: S,
}

struct MuxState {
    queues: Vec<VecDeque<Vec<u8>>>,
    closed: bool,
}

/// The receiving half of one channel of a [`SharedLink`].
///
/// Two locks, deliberately: `queues` is only ever held for a pop or a park (never
/// across a blocking receive), so a channel whose frames have already arrived drains
/// them even while the sibling channel's receiver is blocked pulling the link; the
/// separate `puller` lock serialises the pulls themselves, preserving per-channel
/// FIFO order.
pub struct MuxReceiver<R: FrameSource = LinkReceiver> {
    channel: usize,
    queues: Arc<Mutex<MuxState>>,
    puller: Arc<Mutex<R>>,
    stats: Arc<LinkStats>,
}

impl SharedLink {
    /// Creates a link multiplexing `channels` frame channels and splits it into the
    /// per-channel halves (index `i` of the senders pairs with index `i` of the
    /// receivers), plus the shared traffic counters.
    ///
    /// # Panics
    /// Panics if `channels` is zero.
    #[allow(clippy::new_ret_no_self)] // like SimulatedLink, only used as its halves
    pub fn new(
        channels: usize,
        config: NetworkConfig,
    ) -> (Vec<MuxSender>, Vec<MuxReceiver>, Arc<LinkStats>) {
        let (tx, rx, stats) = SimulatedLink::new(config);
        let (senders, receivers) = SharedLink::over(channels, tx, rx, Arc::clone(&stats));
        (senders, receivers, stats)
    }

    /// Multiplexes `channels` frame channels over an arbitrary frame transport —
    /// the frame-level seam the TCP transport plugs into. `stats` counts the
    /// demultiplexer's dropped frames (the sender-side traffic counters are the
    /// transport's own concern: pass the transport's [`LinkStats`] to keep both
    /// views on one handle).
    ///
    /// # Panics
    /// Panics if `channels` is zero.
    pub fn over<S, R>(
        channels: usize,
        tx: S,
        rx: R,
        stats: Arc<LinkStats>,
    ) -> (Vec<MuxSender<S>>, Vec<MuxReceiver<R>>)
    where
        S: FrameSink + Clone,
        R: FrameSource,
    {
        assert!(channels > 0, "a shared link needs at least one channel");
        let queues = Arc::new(Mutex::new(MuxState {
            queues: (0..channels).map(|_| VecDeque::new()).collect(),
            closed: false,
        }));
        let puller = Arc::new(Mutex::new(rx));
        let senders = (0..channels)
            .map(|channel| MuxSender {
                channel: channel as u32,
                inner: tx.clone(),
            })
            .collect();
        let receivers = (0..channels)
            .map(|channel| MuxReceiver {
                channel,
                queues: Arc::clone(&queues),
                puller: Arc::clone(&puller),
                stats: Arc::clone(&stats),
            })
            .collect();
        (senders, receivers)
    }
}

impl<S: FrameSink + Clone> FrameSink for MuxSender<S> {
    fn send_frame(&self, frame: Vec<u8>) -> bool {
        let mut framed = Vec::with_capacity(frame.len() + 4);
        framed.extend_from_slice(&self.channel.to_le_bytes());
        framed.extend_from_slice(&frame);
        self.inner.send_frame(framed)
    }
}

impl<R: FrameSource> MuxReceiver<R> {
    /// Pops this channel's next queued frame; `Some(None)` means the link is closed
    /// and drained, `None` means nothing is queued yet.
    fn try_pop(&self) -> Option<Option<Vec<u8>>> {
        let mut state = self.queues.lock();
        if let Some(frame) = state.queues[self.channel].pop_front() {
            return Some(Some(frame));
        }
        if state.closed {
            return Some(None);
        }
        None
    }
}

impl<R: FrameSource> FrameSource for MuxReceiver<R> {
    fn recv_frame(&self) -> Option<Vec<u8>> {
        loop {
            if let Some(result) = self.try_pop() {
                return result;
            }
            // Become the puller. The queues lock is NOT held across the blocking
            // receive, so sibling channels keep draining frames that already
            // arrived while this thread waits on the link.
            let puller = self.puller.lock();
            // Another puller may have parked (or closed) our frame while this
            // thread waited for the puller lock.
            if let Some(result) = self.try_pop() {
                return result;
            }
            match puller.recv_frame() {
                Some(mut framed) => {
                    let Some(prefix) = framed.get(..4).and_then(|p| <[u8; 4]>::try_from(p).ok())
                    else {
                        // Runt frame: too short to carry a channel prefix. The
                        // payload (if any) is lost — account for it instead of
                        // dropping it silently.
                        self.stats.record_runt();
                        Tracer::global().emit_once(
                            "link-dropped-frame",
                            "runt",
                            format!(
                                "dropped a {}-byte frame: too short for the 4-byte \
                                 channel prefix (further runts are only counted)",
                                framed.len()
                            ),
                        );
                        continue;
                    };
                    let channel = u32::from_le_bytes(prefix) as usize;
                    // Strip the prefix in place: one memmove, no re-allocation on
                    // the per-frame hot path.
                    framed.drain(..4);
                    let mut state = self.queues.lock();
                    if channel < state.queues.len() {
                        state.queues[channel].push_back(framed);
                    } else {
                        let channels = state.queues.len();
                        drop(state);
                        self.stats.record_unroutable();
                        Tracer::global().emit_once(
                            "link-dropped-frame",
                            "unroutable",
                            format!(
                                "dropped a frame addressed to channel {channel} of a \
                                 {channels}-channel link (further unroutable frames \
                                 are only counted)"
                            ),
                        );
                    }
                }
                None => {
                    self.queues.lock().closed = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_link_demultiplexes_per_channel_in_order() {
        let (txs, rxs, stats) = SharedLink::new(2, NetworkConfig::unlimited());
        assert!(txs[0].send_frame(vec![10]));
        assert!(txs[1].send_frame(vec![20]));
        assert!(txs[0].send_frame(vec![11]));
        // Channel 1 reads its frame even though channel 0's frames arrived first.
        assert_eq!(rxs[1].recv_frame().unwrap(), vec![20]);
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![10]);
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![11]);
        // The stats count the channel prefix: 3 frames of 1 payload + 4 prefix bytes.
        assert_eq!(stats.frames(), 3);
        assert_eq!(stats.bytes(), 15);
        drop(txs);
        assert!(rxs[0].recv_frame().is_none());
        assert!(rxs[1].recv_frame().is_none());
    }

    #[test]
    fn shared_link_sibling_drains_while_puller_blocks() {
        let (txs, mut rxs, _stats) = SharedLink::new(2, NetworkConfig::unlimited());
        let rx1 = rxs.pop().expect("two receivers");
        let rx0 = rxs.pop().expect("two receivers");
        // Receiver 1 becomes the blocked puller on an empty link.
        let blocked = std::thread::spawn(move || rx1.recv_frame());
        std::thread::sleep(Duration::from_millis(20));
        // A channel-0 frame arriving while receiver 1 holds the puller role must
        // reach receiver 0 without waiting for any channel-1 traffic.
        assert!(txs[0].send_frame(vec![42]));
        assert_eq!(rx0.recv_frame().unwrap(), vec![42]);
        // Unblock receiver 1 with its own frame.
        assert!(txs[1].send_frame(vec![7]));
        assert_eq!(blocked.join().unwrap().unwrap(), vec![7]);
    }

    #[test]
    fn shared_link_channels_close_independently_of_queued_frames() {
        let (txs, rxs, _stats) = SharedLink::new(2, NetworkConfig::unlimited());
        txs[1].send_frame(vec![7]);
        drop(txs);
        // Channel 0 sees the closed link; channel 1 still gets its queued frame.
        assert!(rxs[0].recv_frame().is_none());
        assert_eq!(rxs[1].recv_frame().unwrap(), vec![7]);
        assert!(rxs[1].recv_frame().is_none());
    }

    #[test]
    fn frames_arrive_in_order_with_stats() {
        let (tx, rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());
        assert!(tx.send(vec![1, 2, 3]));
        assert!(tx.send(vec![4]));
        assert_eq!(rx.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(rx.recv().unwrap(), vec![4]);
        assert_eq!(stats.frames(), 2);
        assert_eq!(stats.bytes(), 4);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn transmission_delay_scales_with_size_and_bandwidth() {
        let cfg = NetworkConfig {
            bandwidth_bps: 8_000, // 1000 bytes/s
            latency: Duration::ZERO,
            ..NetworkConfig::unlimited()
        };
        assert_eq!(cfg.transmission_delay(1_000), Duration::from_secs(1));
        assert_eq!(
            NetworkConfig::unlimited().transmission_delay(1_000_000),
            Duration::ZERO
        );
    }

    #[test]
    fn latency_delays_delivery() {
        let (tx, rx, _stats) = SimulatedLink::new(NetworkConfig {
            bandwidth_bps: 0,
            latency: Duration::from_millis(20),
            ..NetworkConfig::unlimited()
        });
        let start = Instant::now();
        tx.send(vec![0; 16]);
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn bandwidth_throttles_bulk_transfers() {
        // 80 kbps = 10 KiB/s; 10 frames of 1 KiB should take about a second.
        let (tx, rx, _stats) = SimulatedLink::new(NetworkConfig {
            bandwidth_bps: 80_000,
            latency: Duration::ZERO,
            ..NetworkConfig::unlimited()
        });
        let start = Instant::now();
        for _ in 0..10 {
            tx.send(vec![0u8; 1_000]);
        }
        for _ in 0..10 {
            rx.recv().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(800), "elapsed {elapsed:?}");
    }

    #[test]
    fn default_config_matches_the_testbed_switch() {
        let cfg = NetworkConfig::default();
        assert_eq!(cfg.bandwidth_bps, 100_000_000);
        assert!(cfg.latency <= Duration::from_millis(1));
        assert!(
            cfg.send_queue_frames > 0,
            "the default send queue is bounded"
        );
        assert_eq!(NetworkConfig::unlimited().send_queue_frames, 0);
        assert_eq!(
            NetworkConfig::unlimited()
                .with_send_queue_frames(7)
                .send_queue_frames,
            7
        );
    }

    #[test]
    fn bounded_send_queue_exerts_back_pressure() {
        use std::sync::atomic::AtomicUsize;
        // High-water mark of 1 frame with no receiver draining: the second send
        // must block until the receiver pops a frame.
        let (tx, rx, _stats) =
            SimulatedLink::new(NetworkConfig::unlimited().with_send_queue_frames(1));
        let sent = Arc::new(AtomicUsize::new(0));
        let sent_in_thread = Arc::clone(&sent);
        let sender = std::thread::spawn(move || {
            for i in 0..3u8 {
                assert!(tx.send(vec![i]));
                sent_in_thread.fetch_add(1, Ordering::SeqCst);
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let blocked_at = sent.load(Ordering::SeqCst);
        assert!(
            blocked_at < 3,
            "the sender must block at the high-water mark, sent {blocked_at}"
        );
        // Draining the receiver releases the sender frame by frame.
        assert_eq!(rx.recv().unwrap(), vec![0]);
        assert_eq!(rx.recv().unwrap(), vec![1]);
        assert_eq!(rx.recv().unwrap(), vec![2]);
        sender.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn bounded_send_times_out_when_the_receiver_never_drains() {
        let (tx, rx, _stats) = SimulatedLink::new(
            NetworkConfig::unlimited()
                .with_send_queue_frames(1)
                .with_send_timeout(Duration::from_millis(50)),
        );
        assert!(tx.send(vec![0]));
        // The queue is full and nobody is draining it: the second send must give
        // up after the timeout instead of wedging the sending operator forever.
        let start = Instant::now();
        assert!(!tx.send(vec![1]));
        assert!(start.elapsed() >= Duration::from_millis(40));
        // With the receiver dropped the failure is immediate (disconnected).
        drop(rx);
        let start = Instant::now();
        assert!(!tx.send(vec![2]));
        assert!(start.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn demux_counts_runt_and_unroutable_frames_instead_of_dropping_silently() {
        let (raw_tx, raw_rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());
        let (txs, rxs) = SharedLink::over(2, raw_tx.clone(), raw_rx, Arc::clone(&stats));
        // A frame too short for the channel prefix and one addressed to a channel
        // that does not exist, injected below the mux layer.
        assert!(raw_tx.send(vec![9, 9]));
        assert!(raw_tx.send(7u32.to_le_bytes().to_vec()));
        // A well-formed frame behind them proves the receiver keeps going.
        assert!(txs[1].send_frame(vec![42]));
        assert_eq!(rxs[1].recv_frame().unwrap(), vec![42]);
        assert_eq!(stats.dropped_runt(), 1);
        assert_eq!(stats.dropped_unroutable(), 1);
        assert_eq!(stats.dropped_frames(), 2);
    }

    #[test]
    fn dropped_frame_counters_reach_the_metrics_registry() {
        let (raw_tx, raw_rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());
        let (txs, rxs) = SharedLink::over(1, raw_tx.clone(), raw_rx, Arc::clone(&stats));
        let registry = MetricsRegistry::new();
        stats.export_dropped_frames(&registry, "test-link");
        assert!(raw_tx.send(vec![1]));
        assert!(txs[0].send_frame(vec![5]));
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![5]);
        let exposition = registry.render_prometheus();
        assert!(
            exposition.contains(
                "genealog_link_dropped_frames_total{link=\"test-link\",reason=\"runt\"} 1"
            ),
            "missing runt counter in:\n{exposition}"
        );
        assert!(
            exposition.contains(
                "genealog_link_dropped_frames_total{link=\"test-link\",reason=\"unroutable\"} 0"
            ),
            "missing unroutable counter in:\n{exposition}"
        );
    }

    #[test]
    fn reconnect_window_sums_backoffs_and_connect_timeouts() {
        let cfg = NetworkConfig::unlimited()
            .with_connect_timeout(Duration::from_millis(100))
            .with_reconnects(2, Duration::from_millis(50));
        // 50ms + 100ms + 100ms + 100ms: doubling backoff, one connect per attempt.
        assert_eq!(cfg.reconnect_window(), Duration::from_millis(350));
        assert_eq!(
            cfg.with_reconnects(0, Duration::ZERO).reconnect_window(),
            Duration::ZERO
        );
        // The window is capped so a mis-configured budget cannot stall recovery.
        let wide = cfg.with_reconnects(30, Duration::from_secs(1));
        assert_eq!(wide.reconnect_window(), Duration::from_secs(10));
    }

    #[test]
    fn shared_link_inherits_the_send_queue_bound() {
        // The multiplexed link sits on one SimulatedLink: its channels share the
        // same bounded send queue.
        let (txs, rxs, _stats) =
            SharedLink::new(2, NetworkConfig::unlimited().with_send_queue_frames(2));
        let t0 = txs[0].clone();
        let t1 = txs[1].clone();
        let done = std::thread::spawn(move || {
            assert!(t0.send_frame(vec![1]));
            assert!(t1.send_frame(vec![2]));
            // Third frame exceeds the shared high-water mark until a drain.
            assert!(t0.send_frame(vec![3]));
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!done.is_finished(), "the shared queue must block when full");
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![1]);
        assert_eq!(rxs[1].recv_frame().unwrap(), vec![2]);
        assert_eq!(rxs[0].recv_frame().unwrap(), vec![3]);
        done.join().unwrap();
    }
}
