//! Simulated network links between SPE instances.
//!
//! The paper's testbed connects the three Odroid boards through a 100 Mbps switch.
//! [`SimulatedLink`] models such a link: a frame queue whose delivery is delayed by a
//! fixed propagation latency plus a serialisation delay proportional to the frame size
//! and the configured bandwidth, with per-link counters of frames and bytes so the
//! benchmarks can compare how much each provenance configuration ships.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};

/// Bandwidth and propagation latency of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Link bandwidth in bits per second (0 = infinite).
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: Duration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // The evaluation's 100 Mbps switch with a sub-millisecond LAN latency.
        NetworkConfig {
            bandwidth_bps: 100_000_000,
            latency: Duration::from_micros(200),
        }
    }
}

impl NetworkConfig {
    /// A link with unlimited bandwidth and no latency (useful in tests).
    pub fn unlimited() -> Self {
        NetworkConfig {
            bandwidth_bps: 0,
            latency: Duration::ZERO,
        }
    }

    /// Time needed to serialise `bytes` onto the link.
    pub fn transmission_delay(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps as f64)
        }
    }
}

/// Counters describing the traffic that crossed one link.
#[derive(Debug, Default)]
pub struct LinkStats {
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl LinkStats {
    /// Number of frames sent over the link.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Number of payload bytes sent over the link.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn record(&self, bytes: usize) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

struct Frame {
    payload: Vec<u8>,
    deliver_at: Instant,
}

/// Factory for one direction of a link between two SPE instances.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedLink;

/// The sending half of a simulated link.
#[derive(Clone)]
pub struct LinkSender {
    config: NetworkConfig,
    stats: Arc<LinkStats>,
    tx: Sender<Frame>,
    tx_busy_until: Arc<parking_lot::Mutex<Instant>>,
}

/// The receiving half of a simulated link.
pub struct LinkReceiver {
    rx: Receiver<Frame>,
}

impl SimulatedLink {
    /// Creates a link with the given characteristics and splits it into halves.
    #[allow(clippy::new_ret_no_self)] // a link is only ever used as its two halves
    pub fn new(config: NetworkConfig) -> (LinkSender, LinkReceiver, Arc<LinkStats>) {
        let stats = Arc::new(LinkStats::default());
        let (tx, rx) = unbounded();
        let sender = LinkSender {
            config,
            stats: Arc::clone(&stats),
            tx,
            tx_busy_until: Arc::new(parking_lot::Mutex::new(Instant::now())),
        };
        let receiver = LinkReceiver { rx };
        (sender, receiver, stats)
    }
}

impl LinkSender {
    /// Sends one frame over the link.
    ///
    /// The call itself never blocks for the simulated transmission time; instead the
    /// frame is stamped with its earliest delivery instant (`now + queued transmission
    /// delay + propagation latency`) and the receiver waits until then, which models a
    /// store-and-forward switch without slowing the sender's thread artificially.
    ///
    /// Returns `false` if the receiving instance has shut down.
    pub fn send(&self, payload: Vec<u8>) -> bool {
        let size = payload.len();
        self.stats.record(size);
        let now = Instant::now();
        let deliver_at = {
            let mut busy = self.tx_busy_until.lock();
            let start = (*busy).max(now);
            let done = start + self.config.transmission_delay(size);
            *busy = done;
            done + self.config.latency
        };
        self.tx
            .send(Frame {
                payload,
                deliver_at,
            })
            .is_ok()
    }

    /// Per-link statistics.
    pub fn stats(&self) -> Arc<LinkStats> {
        Arc::clone(&self.stats)
    }
}

impl LinkReceiver {
    /// Receives the next frame, honouring the simulated delivery time.
    /// Returns `None` when the sending instance has shut down and no frames remain.
    pub fn recv(&self) -> Option<Vec<u8>> {
        let frame = self.rx.recv().ok()?;
        let now = Instant::now();
        if frame.deliver_at > now {
            std::thread::sleep(frame.deliver_at - now);
        }
        Some(frame.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_order_with_stats() {
        let (tx, rx, stats) = SimulatedLink::new(NetworkConfig::unlimited());
        assert!(tx.send(vec![1, 2, 3]));
        assert!(tx.send(vec![4]));
        assert_eq!(rx.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(rx.recv().unwrap(), vec![4]);
        assert_eq!(stats.frames(), 2);
        assert_eq!(stats.bytes(), 4);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn transmission_delay_scales_with_size_and_bandwidth() {
        let cfg = NetworkConfig {
            bandwidth_bps: 8_000, // 1000 bytes/s
            latency: Duration::ZERO,
        };
        assert_eq!(cfg.transmission_delay(1_000), Duration::from_secs(1));
        assert_eq!(
            NetworkConfig::unlimited().transmission_delay(1_000_000),
            Duration::ZERO
        );
    }

    #[test]
    fn latency_delays_delivery() {
        let (tx, rx, _stats) = SimulatedLink::new(NetworkConfig {
            bandwidth_bps: 0,
            latency: Duration::from_millis(20),
        });
        let start = Instant::now();
        tx.send(vec![0; 16]);
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn bandwidth_throttles_bulk_transfers() {
        // 80 kbps = 10 KiB/s; 10 frames of 1 KiB should take about a second.
        let (tx, rx, _stats) = SimulatedLink::new(NetworkConfig {
            bandwidth_bps: 80_000,
            latency: Duration::ZERO,
        });
        let start = Instant::now();
        for _ in 0..10 {
            tx.send(vec![0u8; 1_000]);
        }
        for _ in 0..10 {
            rx.recv().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(800), "elapsed {elapsed:?}");
    }

    #[test]
    fn default_config_matches_the_testbed_switch() {
        let cfg = NetworkConfig::default();
        assert_eq!(cfg.bandwidth_bps, 100_000_000);
        assert!(cfg.latency <= Duration::from_millis(1));
    }
}
