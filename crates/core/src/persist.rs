//! Byte persistence of provenance-instrumented window state.
//!
//! A GeneaLog aggregate buffers `GTuple<T, GlMeta>` occurrences whose `U1`/`U2`
//! meta-attributes point into the provenance graph. [`GlWindowPersister`]
//! encodes such a buffer into the canonical `GLWS` container of
//! [`genealog_spe::persist`] so a durable checkpoint store can carry it —
//! provenance included — across a process death.
//!
//! An occurrence is only byte-encodable when its upstream pointers stop at
//! **terminal** nodes (`SOURCE`/`REMOTE` tuples, §4/§6 of the paper) of the
//! expected source schema `U`: the terminal's kind, id, timestamps and payload
//! reproduce the pointer exactly in the restored process. A pointer into a
//! *non-terminal* tuple would need that tuple's own upstreams transitively, so
//! [`WindowPersister::encode`] returns `None` and the operator falls back to
//! the process-local inline snapshot (the analyzer's GL014 diagnostic flags
//! deployments where that fallback would make recovery lossy).
//!
//! The `N` chain pointer is deliberately **not** encoded: it is the only
//! meta-attribute written after tuple creation (when a window closes), and a
//! buffered occurrence belongs to a window that had not closed at the
//! checkpoint cut — [`GlMeta::detach`] resets it on restore anyway. Excluding
//! `N` also keeps an occurrence's bytes immutable across epochs, which is what
//! the incremental snapshot diff's prefix property relies on.
//!
//! ```text
//! occurrence: ts_ms u64 | stimulus u64 | data T | kind u8 | origin u32 | seq u64
//!             | u1 tag u8 (0 = none, 1 = terminal) [terminal]
//!             | u2 tag u8 (0 = none, 1 = terminal) [terminal]
//! terminal:   kind u8 | origin u32 | seq u64 | ts_ms u64 | stimulus u64 | data U
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use genealog_spe::persist::{
    parse_container, ByteReader, ContainerWriter, PersistCodec, WindowPersister,
};
use genealog_spe::time::Timestamp;
use genealog_spe::tuple::{GTuple, TupleData, TupleId};
use genealog_spe::window::WindowStoreSnapshot;

use crate::meta::{erase, GlMeta, OpKind, ProvRef};

fn kind_tag(kind: OpKind) -> u8 {
    match kind {
        OpKind::Source => 0,
        OpKind::Map => 1,
        OpKind::Multiplex => 2,
        OpKind::Join => 3,
        OpKind::Aggregate => 4,
        OpKind::Remote => 5,
    }
}

fn kind_from_tag(tag: u8) -> Option<OpKind> {
    Some(match tag {
        0 => OpKind::Source,
        1 => OpKind::Map,
        2 => OpKind::Multiplex,
        3 => OpKind::Join,
        4 => OpKind::Aggregate,
        5 => OpKind::Remote,
        _ => return None,
    })
}

fn encode_id(id: TupleId, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.origin.to_le_bytes());
    out.extend_from_slice(&id.seq.to_le_bytes());
}

fn decode_id(r: &mut ByteReader<'_>) -> Option<TupleId> {
    Some(TupleId::new(r.u32()?, r.u64()?))
}

/// Persister for GeneaLog-instrumented window state: occurrences of payload
/// `T` whose `U1`/`U2` pointers terminate in `SOURCE`/`REMOTE` tuples of
/// payload `U`.
pub struct GlWindowPersister<K, T, U> {
    #[allow(clippy::type_complexity)]
    _marker: PhantomData<fn() -> (K, T, U)>,
}

impl<K, T, U> GlWindowPersister<K, T, U> {
    /// Creates the persister (stateless; all knowledge is in the types).
    pub fn new() -> Self {
        GlWindowPersister {
            _marker: PhantomData,
        }
    }
}

impl<K, T, U> Default for GlWindowPersister<K, T, U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, T, U> std::fmt::Debug for GlWindowPersister<K, T, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GlWindowPersister")
    }
}

fn encode_upstream<U: PersistCodec + TupleData>(
    upstream: Option<&ProvRef>,
    out: &mut Vec<u8>,
) -> Option<()> {
    match upstream {
        None => out.push(0),
        Some(node) => {
            if !node.kind().is_terminal() {
                return None; // needs the transitive graph; not byte-encodable
            }
            let payload = node.payload::<U>()?;
            out.push(1);
            out.push(kind_tag(node.kind()));
            encode_id(node.id(), out);
            out.extend_from_slice(&node.ts().as_millis().to_le_bytes());
            out.extend_from_slice(&node.stimulus().to_le_bytes());
            payload.encode(out);
        }
    }
    Some(())
}

fn decode_upstream<U: PersistCodec + TupleData>(r: &mut ByteReader<'_>) -> Option<Option<ProvRef>> {
    match r.u8()? {
        0 => Some(None),
        1 => {
            let kind = kind_from_tag(r.u8()?)?;
            if !kind.is_terminal() {
                return None;
            }
            let id = decode_id(r)?;
            let ts = r.u64()?;
            let stimulus = r.u64()?;
            let data = U::decode(r)?;
            let tuple = Arc::new(GTuple::new(
                Timestamp::from_millis(ts),
                stimulus,
                data,
                GlMeta::leaf(kind, id),
            ));
            Some(Some(erase(&tuple)))
        }
        _ => None,
    }
}

impl<K, T, U> WindowPersister<K, T, GlMeta> for GlWindowPersister<K, T, U>
where
    K: PersistCodec + Ord + Clone,
    T: PersistCodec + TupleData,
    U: PersistCodec + TupleData,
{
    fn encode(&self, snapshot: &WindowStoreSnapshot<K, T, GlMeta>) -> Option<Vec<u8>> {
        let mut writer =
            ContainerWriter::new(snapshot.watermark().as_millis(), snapshot.late_tuples());
        let mut key_buf = Vec::new();
        for (start, key, occurrences) in snapshot.entries() {
            key_buf.clear();
            key.encode(&mut key_buf);
            let occ_bytes = occurrences
                .iter()
                .map(|t| {
                    let mut b = Vec::new();
                    b.extend_from_slice(&t.ts.as_millis().to_le_bytes());
                    b.extend_from_slice(&t.stimulus.to_le_bytes());
                    t.data.encode(&mut b);
                    b.push(kind_tag(t.meta.kind));
                    encode_id(t.meta.id, &mut b);
                    encode_upstream::<U>(t.meta.u1.as_ref(), &mut b)?;
                    encode_upstream::<U>(t.meta.u2.as_ref(), &mut b)?;
                    Some(b)
                })
                .collect::<Option<Vec<_>>>()?;
            writer.entry(start.as_millis(), &key_buf, &occ_bytes);
        }
        Some(writer.finish())
    }

    fn decode(&self, bytes: &[u8]) -> Option<WindowStoreSnapshot<K, T, GlMeta>> {
        let container = parse_container(bytes)?;
        let mut entries = Vec::with_capacity(container.entries.len());
        for entry in &container.entries {
            let mut key_reader = ByteReader::new(entry.key);
            let key = K::decode(&mut key_reader)?;
            if !key_reader.is_empty() {
                return None;
            }
            let tuples = entry
                .occurrences
                .iter()
                .map(|occ| {
                    let mut r = ByteReader::new(occ);
                    let ts = r.u64()?;
                    let stimulus = r.u64()?;
                    let data = T::decode(&mut r)?;
                    let kind = kind_from_tag(r.u8()?)?;
                    let id = decode_id(&mut r)?;
                    let u1 = decode_upstream::<U>(&mut r)?;
                    let u2 = decode_upstream::<U>(&mut r)?;
                    if !r.is_empty() {
                        return None;
                    }
                    let meta = match (u1, u2) {
                        (None, None) => GlMeta::leaf(kind, id),
                        (Some(u1), None) => GlMeta::unary(kind, id, u1),
                        (Some(u1), Some(u2)) => GlMeta::binary(kind, id, u1, u2),
                        // `U2` without `U1` never occurs (§4.1 sets them in order).
                        (None, Some(_)) => return None,
                    };
                    Some(Arc::new(GTuple::new(
                        Timestamp::from_millis(ts),
                        stimulus,
                        data,
                        meta,
                    )))
                })
                .collect::<Option<Vec<_>>>()?;
            entries.push((Timestamp::from_millis(entry.start_ms), key, tuples));
        }
        Some(WindowStoreSnapshot::from_parts(
            entries,
            container.late_tuples,
            Timestamp::from_millis(container.watermark_ms),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::persist::is_container;
    use genealog_spe::time::Duration;
    use genealog_spe::window::{WindowSpec, WindowStore};

    type Reading = (u32, i64);
    type Persister = GlWindowPersister<u32, Reading, Reading>;

    fn source_tuple(i: u64) -> Arc<GTuple<Reading, GlMeta>> {
        Arc::new(GTuple::new(
            Timestamp::from_secs(i),
            i * 1000,
            ((i % 3) as u32, i as i64),
            GlMeta::leaf(OpKind::Source, TupleId::new(7, i)),
        ))
    }

    /// A window store of Map-kind occurrences, each pointing `U1` at a
    /// distinct terminal source tuple — the shape a distributed shard holds.
    fn sample_store() -> WindowStore<u32, Reading, GlMeta> {
        let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        let mut store = WindowStore::new(spec);
        for i in 0..20u64 {
            let src = source_tuple(i);
            let t = Arc::new(GTuple::new(
                src.ts,
                src.stimulus,
                (src.data.0, src.data.1 * 10),
                GlMeta::unary(OpKind::Map, TupleId::new(9, i), erase(&src)),
            ));
            store.insert(t.data.0, t);
        }
        store.close_up_to(Timestamp::from_secs(9));
        store
    }

    #[test]
    fn roundtrips_provenance_pointers_byte_identically() {
        let snapshot = sample_store().snapshot();
        let p = Persister::new();
        let bytes = p.encode(&snapshot).unwrap();
        assert!(is_container(&bytes));
        let decoded = p.decode(&bytes).unwrap();
        assert_eq!(decoded.buffered_tuples(), snapshot.buffered_tuples());
        assert_eq!(decoded.watermark(), snapshot.watermark());
        // Re-encoding the decoded snapshot reproduces the exact bytes — what
        // lets incremental diffs treat restored and live state alike.
        assert_eq!(p.encode(&decoded).unwrap(), bytes);
        // The restored occurrences carry their kind, id and terminal lineage.
        for ((start, key, a), (bstart, bkey, b)) in snapshot.entries().zip(decoded.entries()) {
            assert_eq!((start, key), (bstart, bkey));
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.meta.kind, y.meta.kind);
                assert_eq!(x.meta.id, y.meta.id);
                let (xu, yu) = (x.meta.u1.as_ref().unwrap(), y.meta.u1.as_ref().unwrap());
                assert_eq!(xu.id(), yu.id());
                assert_eq!(xu.kind(), yu.kind());
                assert_eq!(xu.ts(), yu.ts());
                assert_eq!(xu.stimulus(), yu.stimulus());
                assert_eq!(xu.payload::<Reading>(), yu.payload::<Reading>());
            }
        }
    }

    #[test]
    fn remote_terminals_are_encodable() {
        let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        let mut store: WindowStore<u32, Reading, GlMeta> = WindowStore::new(spec);
        let remote = Arc::new(GTuple::new(
            Timestamp::from_secs(1),
            5,
            (1u32, 10i64),
            GlMeta::leaf(OpKind::Remote, TupleId::new(3, 0)),
        ));
        store.insert(1, Arc::clone(&remote));
        let p = Persister::new();
        let bytes = p.encode(&store.snapshot()).unwrap();
        let decoded = p.decode(&bytes).unwrap();
        let (_, _, occs) = decoded.entries().next().unwrap();
        assert_eq!(occs[0].meta.kind, OpKind::Remote);
        assert_eq!(occs[0].meta.id, TupleId::new(3, 0));
    }

    #[test]
    fn non_terminal_upstream_refuses_to_encode() {
        let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        let mut store: WindowStore<u32, Reading, GlMeta> = WindowStore::new(spec);
        let src = source_tuple(0);
        let mapped = Arc::new(GTuple::new(
            src.ts,
            src.stimulus,
            src.data,
            GlMeta::unary(OpKind::Map, TupleId::new(8, 0), erase(&src)),
        ));
        // A second Map stage: its upstream is itself non-terminal.
        let twice = Arc::new(GTuple::new(
            mapped.ts,
            mapped.stimulus,
            mapped.data,
            GlMeta::unary(OpKind::Map, TupleId::new(9, 0), erase(&mapped)),
        ));
        store.insert(0, twice);
        let p = Persister::new();
        assert!(
            p.encode(&store.snapshot()).is_none(),
            "a pointer into a non-terminal tuple must force the inline fallback"
        );
    }

    #[test]
    fn torn_occurrence_bytes_are_rejected() {
        let snapshot = sample_store().snapshot();
        let p = Persister::new();
        let bytes = p.encode(&snapshot).unwrap();
        for cut in 0..bytes.len() {
            assert!(p.decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }
}
