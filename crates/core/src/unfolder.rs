//! The single-stream unfolder (SU, §5) and the multi-stream unfolder (MU, §6), built
//! from the standard streaming operators.
//!
//! *SU* duplicates a delivering stream with a Multiplex and applies the
//! `findProvenance` traversal in a (meta-aware) Map, producing the *unfolded stream*:
//! one tuple per (sink tuple, originating tuple) pair (Definition 5.1 / Figure 5B).
//!
//! *MU* stitches unfolded streams from different SPE instances together: tuples whose
//! originating tuple is already a `SOURCE` pass through, tuples whose originating
//! tuple is `REMOTE` are replaced by the matching tuples of the upstream instances'
//! unfolded streams, matched on the unique tuple id (Definition 6.4 / Figure 8). It is
//! composed of Union + Multiplex + two Filters + Join + Union — only standard
//! operators, which is the paper's challenge C3.

use std::fmt;

use genealog_spe::provenance::ProvenanceSystem;
use genealog_spe::query::{Query, StreamRef};
use genealog_spe::tuple::{TupleData, TupleId};
use genealog_spe::{Duration, Timestamp};

use crate::meta::{erase, GlMeta, OpKind, ProvRef};
use crate::system::GeneaLog;
use crate::traversal::find_provenance;

/// A snapshot of an originating source tuple: timestamp, id and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRecord<S> {
    /// Timestamp of the source tuple.
    pub ts: Timestamp,
    /// Unique id of the source tuple.
    pub id: TupleId,
    /// Payload of the source tuple.
    pub data: S,
}

/// One element of an *unfolded stream* (Definition 5.1): the attributes of the
/// delivering (sink) tuple combined with one of its originating tuples.
///
/// The originating tuple is kept as a live [`ProvRef`], so within a process no payload
/// copying happens; [`UnfoldedTuple::to_event`] converts to the plain-data
/// [`UnfoldedEvent`] when the stream has to cross a process boundary.
#[derive(Clone)]
pub struct UnfoldedTuple<T> {
    /// Timestamp of the delivering (sink) tuple.
    pub sink_ts: Timestamp,
    /// Unique id of the delivering tuple.
    pub sink_id: TupleId,
    /// Payload of the delivering tuple.
    pub sink_data: T,
    /// Kind of the originating tuple (`SOURCE` or `REMOTE`).
    pub origin_kind: OpKind,
    /// Timestamp of the originating tuple (`tsO` in Definition 6.2).
    pub origin_ts: Timestamp,
    /// Id of the originating tuple (`IDO` in Definition 6.2).
    pub origin_id: TupleId,
    /// The originating tuple itself.
    pub origin: ProvRef,
}

impl<T: fmt::Debug> fmt::Debug for UnfoldedTuple<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnfoldedTuple")
            .field("sink_ts", &self.sink_ts)
            .field("sink_id", &self.sink_id)
            .field("sink_data", &self.sink_data)
            .field("origin_kind", &self.origin_kind)
            .field("origin_ts", &self.origin_ts)
            .field("origin_id", &self.origin_id)
            .field("origin", &self.origin.render())
            .finish()
    }
}

impl<T: TupleData> UnfoldedTuple<T> {
    /// Converts to a plain-data [`UnfoldedEvent`], downcasting the originating payload
    /// to the source schema `S` (the payload is `None` for `REMOTE` originating tuples
    /// or when the originating tuple has a different schema).
    pub fn to_event<S: TupleData>(&self) -> UnfoldedEvent<T, S> {
        UnfoldedEvent {
            sink_ts: self.sink_ts,
            sink_id: self.sink_id,
            sink_data: self.sink_data.clone(),
            origin_kind: self.origin_kind,
            origin_ts: self.origin_ts,
            origin_id: self.origin_id,
            origin_data: self.origin.payload::<S>().cloned(),
        }
    }
}

/// A plain-data unfolded tuple: the serialisable form of [`UnfoldedTuple`] used when
/// unfolded streams cross process boundaries (§6).
#[derive(Debug, Clone, PartialEq)]
pub struct UnfoldedEvent<T, S> {
    /// Timestamp of the delivering (sink) tuple.
    pub sink_ts: Timestamp,
    /// Unique id of the delivering tuple.
    pub sink_id: TupleId,
    /// Payload of the delivering tuple.
    pub sink_data: T,
    /// Kind of the originating tuple (`SOURCE` or `REMOTE`).
    pub origin_kind: OpKind,
    /// Timestamp of the originating tuple.
    pub origin_ts: Timestamp,
    /// Id of the originating tuple.
    pub origin_id: TupleId,
    /// Payload of the originating tuple (`Some` for `SOURCE` tuples of schema `S`).
    pub origin_data: Option<S>,
}

impl<T: TupleData, S: TupleData> UnfoldedEvent<T, S> {
    /// Drops the delivering payload, keeping only what downstream MU operators need
    /// from an *upstream* unfolded stream.
    pub fn to_upstream(&self) -> UpstreamEvent<S> {
        UpstreamEvent {
            sink_id: self.sink_id,
            sink_ts: self.sink_ts,
            origin_kind: self.origin_kind,
            origin_ts: self.origin_ts,
            origin_id: self.origin_id,
            origin_data: self.origin_data.clone(),
        }
    }

    /// The originating tuple as a [`SourceRecord`], if its payload is present.
    pub fn source_record(&self) -> Option<SourceRecord<S>> {
        self.origin_data.clone().map(|data| SourceRecord {
            ts: self.origin_ts,
            id: self.origin_id,
            data,
        })
    }
}

/// An element of an upstream unfolded stream as consumed by the MU operator: the id of
/// the delivering tuple at the upstream instance plus its originating tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct UpstreamEvent<S> {
    /// Id the delivering tuple had at the upstream instance (`ID`, the MU join key).
    pub sink_id: TupleId,
    /// Timestamp of the delivering tuple at the upstream instance.
    pub sink_ts: Timestamp,
    /// Kind of the originating tuple.
    pub origin_kind: OpKind,
    /// Timestamp of the originating tuple.
    pub origin_ts: Timestamp,
    /// Id of the originating tuple.
    pub origin_id: TupleId,
    /// Payload of the originating tuple.
    pub origin_data: Option<S>,
}

/// Attaches a single-stream unfolder (SU) to `input`.
///
/// Returns `(passthrough, unfolded)`: the first stream is the exact copy of the input
/// (`SO` in Figure 5) to be connected to the original downstream operator or Sink; the
/// second is the unfolded stream `U` carrying one tuple per (delivering tuple,
/// originating tuple) pair.
pub fn attach_unfolder<T: TupleData>(
    q: &mut Query<GeneaLog>,
    name: &str,
    input: StreamRef<T, GlMeta>,
) -> (StreamRef<T, GlMeta>, StreamRef<UnfoldedTuple<T>, GlMeta>) {
    let branches = q.multiplex(&format!("{name}-su-mux"), input, 2);
    let mut branches = branches.into_iter();
    let passthrough = branches.next().expect("multiplex produced two branches");
    let to_unfold = branches.next().expect("multiplex produced two branches");
    let unfolded = q.map_with_meta(&format!("{name}-su-unfold"), to_unfold, move |tuple| {
        let root = erase(tuple);
        // The tuple reaching this Map is the Multiplex copy created by the unfolder
        // itself; the *delivering* tuple whose identity downstream instances will see
        // (and that the paired Send operator transmits) is the Multiplex input, i.e.
        // this copy's U1 target. Record that id so the multi-stream unfolder's join
        // key (Definition 6.4) matches across the process boundary.
        let delivering_id = tuple
            .meta
            .u1
            .as_ref()
            .map(|origin| origin.id())
            .unwrap_or(tuple.meta.id);
        find_provenance(&root)
            .into_iter()
            .map(|origin| UnfoldedTuple {
                sink_ts: tuple.ts,
                sink_id: delivering_id,
                sink_data: tuple.data.clone(),
                origin_kind: origin.kind(),
                origin_ts: origin.ts(),
                origin_id: origin.id(),
                origin,
            })
            .collect()
    });
    (passthrough, unfolded)
}

/// Attaches a multi-stream unfolder (MU) combining a *derived* unfolded stream with
/// one or more *upstream* unfolded streams (Definition 6.4).
///
/// `upstream_window` must cover the maximum time distance between a delivering tuple
/// at this instance and the upstream delivering tuples contributing to it — the paper
/// sets it to the sum of the window sizes of the stateful operators deployed at the
/// instance producing the derived stream.
///
/// # Panics
/// Panics if `upstreams` is empty.
pub fn attach_multi_unfolder<P, T, S>(
    q: &mut Query<P>,
    name: &str,
    derived: StreamRef<UnfoldedEvent<T, S>, P::Meta>,
    upstreams: Vec<StreamRef<UpstreamEvent<S>, P::Meta>>,
    upstream_window: Duration,
) -> StreamRef<UnfoldedEvent<T, S>, P::Meta>
where
    P: ProvenanceSystem,
    T: TupleData,
    S: TupleData,
{
    assert!(
        !upstreams.is_empty(),
        "the MU operator requires at least one upstream unfolded stream"
    );
    // Union the upstream unfolded streams into one (optional single-input case is a
    // pass-through union, kept for structural fidelity with Figure 8).
    let upstream = if upstreams.len() == 1 {
        upstreams.into_iter().next().expect("one upstream")
    } else {
        q.union(&format!("{name}-mu-upstream-union"), upstreams)
    };

    // Split the derived stream: SOURCE-originating tuples bypass the Join.
    let branches = q.multiplex(&format!("{name}-mu-mux"), derived, 2);
    let mut branches = branches.into_iter();
    let first = branches.next().expect("multiplex produced two branches");
    let second = branches.next().expect("multiplex produced two branches");
    let remote_branch = q.filter(
        &format!("{name}-mu-remote"),
        first,
        |e: &UnfoldedEvent<T, S>| e.origin_kind != OpKind::Source,
    );
    let source_branch = q.filter(
        &format!("{name}-mu-source"),
        second,
        |e: &UnfoldedEvent<T, S>| e.origin_kind == OpKind::Source,
    );

    // Resolve REMOTE originating tuples through the upstream unfolded streams:
    // match on upstream delivering id == derived originating id.
    let resolved = q.join(
        &format!("{name}-mu-join"),
        remote_branch,
        upstream,
        upstream_window,
        |d: &UnfoldedEvent<T, S>, u: &UpstreamEvent<S>| d.origin_id == u.sink_id,
        |d: &UnfoldedEvent<T, S>, u: &UpstreamEvent<S>| UnfoldedEvent {
            sink_ts: d.sink_ts,
            sink_id: d.sink_id,
            sink_data: d.sink_data.clone(),
            origin_kind: u.origin_kind,
            origin_ts: u.origin_ts,
            origin_id: u.origin_id,
            origin_data: u.origin_data.clone(),
        },
    );

    q.union(&format!("{name}-mu-out"), vec![resolved, source_branch])
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::operator::source::VecSource;
    use genealog_spe::provenance::NoProvenance;
    use genealog_spe::WindowSpec;

    #[test]
    fn su_unfolds_each_sink_tuple_into_its_sources() {
        // Zero-speed filter -> count aggregate -> threshold filter (a miniature Q1).
        let mut q = Query::new(GeneaLog::new());
        // Car 1 reports zero speed four times within 90 seconds (so the four reports
        // fit in one 120-second window), car 2 drives by once.
        let reports: Vec<(u32, u32)> = vec![
            (2, 55),
            (1, 0), // car 1, speed 0
            (1, 0),
            (1, 0),
            (1, 0),
        ];
        let src = q.source("reports", VecSource::with_period(reports, 30_000));
        let stopped = q.filter("speed0", src, |r: &(u32, u32)| r.1 == 0);
        let counts = q.aggregate(
            "count",
            stopped,
            WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap(),
            |r: &(u32, u32)| r.0,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |c: &(u32, usize)| c.1 >= 4);
        let (passthrough, unfolded) = attach_unfolder(&mut q, "prov", alerts);
        let sink = q.collecting_sink("sink", passthrough);
        let prov_sink = q.collecting_sink("prov-sink", unfolded);
        q.deploy().unwrap().wait().unwrap();

        assert!(!sink.is_empty(), "the alert must reach the data sink");
        let unfolded = prov_sink.tuples();
        assert!(!unfolded.is_empty());
        // Every unfolded tuple originates from a SOURCE tuple of car 1 with speed 0.
        for u in &unfolded {
            assert_eq!(u.data.origin_kind, OpKind::Source);
            let payload = u.data.origin.payload::<(u32, u32)>().unwrap();
            assert_eq!(payload.0, 1);
            assert_eq!(payload.1, 0);
        }
        // The first alert (count == 4) is unfolded into exactly 4 source tuples.
        let first_sink_id = unfolded[0].data.sink_id;
        let first_group: Vec<_> = unfolded
            .iter()
            .filter(|u| u.data.sink_id == first_sink_id)
            .collect();
        assert_eq!(first_group.len(), 4);
    }

    #[test]
    fn unfolded_tuple_converts_to_typed_event() {
        let mut q = Query::new(GeneaLog::new());
        let src = q.source("numbers", VecSource::with_period(vec![5i64, 6], 1_000));
        let mapped = q.map_one("double", src, |v| v * 2);
        let (passthrough, unfolded) = attach_unfolder(&mut q, "prov", mapped);
        q.discard(passthrough);
        let prov_sink = q.collecting_sink("prov-sink", unfolded);
        q.deploy().unwrap().wait().unwrap();

        let events: Vec<UnfoldedEvent<i64, i64>> = prov_sink
            .tuples()
            .iter()
            .map(|t| t.data.to_event::<i64>())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].sink_data, 10);
        assert_eq!(events[0].origin_data, Some(5));
        assert!(events[0].source_record().is_some());
        // Downcasting to the wrong schema yields no payload.
        let wrong: UnfoldedEvent<i64, String> = prov_sink.tuples()[0].data.to_event::<String>();
        assert!(wrong.origin_data.is_none());
    }

    #[test]
    fn mu_resolves_remote_tuples_and_passes_source_tuples_through() {
        // Simulate the provenance instance of a distributed deployment: the derived
        // stream contains one SOURCE-originating tuple and one REMOTE-originating
        // tuple; the upstream stream maps the remote id to two source records.
        let remote_id = TupleId::new(1, 100);
        let derived_events: Vec<UnfoldedEvent<&'static str, i64>> = vec![
            UnfoldedEvent {
                sink_ts: Timestamp::from_secs(60),
                sink_id: TupleId::new(2, 0),
                sink_data: "alert-a",
                origin_kind: OpKind::Source,
                origin_ts: Timestamp::from_secs(10),
                origin_id: TupleId::new(2, 5),
                origin_data: Some(42i64),
            },
            UnfoldedEvent {
                sink_ts: Timestamp::from_secs(61),
                sink_id: TupleId::new(2, 1),
                sink_data: "alert-b",
                origin_kind: OpKind::Remote,
                origin_ts: Timestamp::from_secs(20),
                origin_id: remote_id,
                origin_data: None,
            },
        ];
        let upstream_events: Vec<UpstreamEvent<i64>> = vec![
            UpstreamEvent {
                sink_id: remote_id,
                sink_ts: Timestamp::from_secs(20),
                origin_kind: OpKind::Source,
                origin_ts: Timestamp::from_secs(1),
                origin_id: TupleId::new(1, 1),
                origin_data: Some(7i64),
            },
            UpstreamEvent {
                sink_id: remote_id,
                sink_ts: Timestamp::from_secs(20),
                origin_kind: OpKind::Source,
                origin_ts: Timestamp::from_secs(2),
                origin_id: TupleId::new(1, 2),
                origin_data: Some(8i64),
            },
            UpstreamEvent {
                sink_id: TupleId::new(1, 999), // unrelated delivering tuple
                sink_ts: Timestamp::from_secs(21),
                origin_kind: OpKind::Source,
                origin_ts: Timestamp::from_secs(3),
                origin_id: TupleId::new(1, 3),
                origin_data: Some(9i64),
            },
        ];

        let mut q = Query::new(NoProvenance);
        let derived = q.source(
            "derived",
            VecSource::new(derived_events.into_iter().map(|e| (e.sink_ts, e)).collect()),
        );
        let upstream = q.source(
            "upstream",
            VecSource::new(
                upstream_events
                    .into_iter()
                    .map(|e| (e.sink_ts, e))
                    .collect(),
            ),
        );
        let out = attach_multi_unfolder(
            &mut q,
            "mu",
            derived,
            vec![upstream],
            Duration::from_secs(600),
        );
        let sink = q.collecting_sink("sink", out);
        q.deploy().unwrap().wait().unwrap();

        let outputs: Vec<UnfoldedEvent<&'static str, i64>> =
            sink.tuples().iter().map(|t| t.data.clone()).collect();
        assert_eq!(outputs.len(), 3);
        // alert-a passes through untouched.
        let a: Vec<_> = outputs
            .iter()
            .filter(|e| e.sink_data == "alert-a")
            .collect();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].origin_data, Some(42));
        // alert-b is replaced by the two upstream source records.
        let b: Vec<_> = outputs
            .iter()
            .filter(|e| e.sink_data == "alert-b")
            .collect();
        assert_eq!(b.len(), 2);
        let mut payloads: Vec<i64> = b.iter().filter_map(|e| e.origin_data).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![7, 8]);
        assert!(b.iter().all(|e| e.origin_kind == OpKind::Source));
    }

    #[test]
    #[should_panic(expected = "at least one upstream")]
    fn mu_requires_upstream_streams() {
        let mut q = Query::new(NoProvenance);
        let derived = q.source(
            "derived",
            VecSource::new(Vec::<(Timestamp, UnfoldedEvent<i64, i64>)>::new()),
        );
        let _ = attach_multi_unfolder::<_, i64, i64>(
            &mut q,
            "mu",
            derived,
            Vec::new(),
            Duration::from_secs(1),
        );
    }

    #[test]
    fn upstream_event_strips_the_delivering_payload() {
        let ev: UnfoldedEvent<String, i64> = UnfoldedEvent {
            sink_ts: Timestamp::from_secs(5),
            sink_id: TupleId::new(0, 1),
            sink_data: "alert".to_string(),
            origin_kind: OpKind::Source,
            origin_ts: Timestamp::from_secs(1),
            origin_id: TupleId::new(0, 0),
            origin_data: Some(3),
        };
        let up = ev.to_upstream();
        assert_eq!(up.sink_id, ev.sink_id);
        assert_eq!(up.origin_data, Some(3));
    }
}
