//! Provenance collection at the edge of a query: grouping the unfolded stream back
//! into per-sink-tuple provenance assignments and persisting them.
//!
//! The evaluation (§7) computes the provenance of every sink tuple with the traversal
//! of Listing 1 and stores it on disk; [`ProvenanceCollector`] plays that role here —
//! it collects the unfolded stream produced by the single-stream unfolder, groups it
//! per sink tuple and can write it out or hand it to tests as typed records.

use std::collections::HashMap;
use std::io::Write;

use genealog_control::json;
use genealog_spe::logical::LogicalStream;
use genealog_spe::operator::sink::CollectedStream;
use genealog_spe::query::{Query, StreamRef};
use genealog_spe::tuple::{TupleData, TupleId};
use genealog_spe::Timestamp;

use crate::meta::{GlMeta, ProvRef};
use crate::system::GeneaLog;
use crate::unfolder::{attach_unfolder, SourceRecord, UnfoldedTuple};

/// The provenance of one sink tuple: the sink tuple's attributes plus every source
/// tuple that contributed to it.
#[derive(Debug, Clone)]
pub struct ProvenanceAssignment<T> {
    /// Timestamp of the sink tuple.
    pub sink_ts: Timestamp,
    /// Unique id of the sink tuple.
    pub sink_id: TupleId,
    /// Payload of the sink tuple.
    pub sink_data: T,
    /// The originating tuples (SOURCE, or REMOTE in distributed deployments).
    pub sources: Vec<ProvRef>,
}

impl<T: TupleData> ProvenanceAssignment<T> {
    /// Number of originating tuples.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// The assignment as the JSON document served by the control endpoint's
    /// `/provenance/{sink_tuple_id}` route.
    pub fn to_json(&self) -> String {
        json::object([
            (
                "sink",
                json::object([
                    ("id", json::string(&self.sink_id.to_string())),
                    ("ts_ms", self.sink_ts.as_millis().to_string()),
                    ("data", json::string(&format!("{:?}", self.sink_data))),
                ]),
            ),
            ("source_count", self.source_count().to_string()),
            (
                "sources",
                json::array(self.sources.iter().map(|s| {
                    json::object([
                        ("id", json::string(&s.id().to_string())),
                        ("ts_ms", s.ts().as_millis().to_string()),
                        ("data", json::string(&s.render())),
                    ])
                })),
            ),
        ])
    }

    /// The originating payloads downcast to the source schema `S` (payloads of other
    /// schemas — e.g. `REMOTE` placeholders — are skipped).
    pub fn source_payloads<S: TupleData>(&self) -> Vec<S> {
        self.sources
            .iter()
            .filter_map(|s| s.payload::<S>().cloned())
            .collect()
    }

    /// The originating tuples as typed [`SourceRecord`]s.
    pub fn source_records<S: TupleData>(&self) -> Vec<SourceRecord<S>> {
        self.sources
            .iter()
            .filter_map(|s| {
                s.payload::<S>().cloned().map(|data| SourceRecord {
                    ts: s.ts(),
                    id: s.id(),
                    data,
                })
            })
            .collect()
    }
}

/// Collects the unfolded stream of a query and groups it per sink tuple.
#[derive(Debug, Clone)]
pub struct ProvenanceCollector<T> {
    collected: CollectedStream<UnfoldedTuple<T>, GlMeta>,
}

impl<T: TupleData> ProvenanceCollector<T> {
    /// Wraps an existing collection of unfolded tuples.
    pub fn from_collected(collected: CollectedStream<UnfoldedTuple<T>, GlMeta>) -> Self {
        ProvenanceCollector { collected }
    }

    /// Number of unfolded tuples collected (one per sink-tuple/source-tuple pair).
    pub fn unfolded_count(&self) -> usize {
        self.collected.len()
    }

    /// The assignment of one sink tuple, if its provenance has been collected.
    pub fn assignment(&self, sink_id: TupleId) -> Option<ProvenanceAssignment<T>> {
        self.assignments()
            .into_iter()
            .find(|a| a.sink_id == sink_id)
    }

    /// Resolves a control-endpoint provenance query: parses `sink_id` (`origin#seq`
    /// or `origin-seq`) and renders the tuple's contribution set as JSON. This is
    /// the [`genealog_control::ProvenanceQuery`] implementation, so a collector
    /// plugs directly into
    /// [`ControlPlane::with_provenance`](genealog_control::ControlPlane::with_provenance).
    pub fn contribution_json(&self, sink_id: &str) -> Option<String> {
        let id = TupleId::parse(sink_id)?;
        Some(self.assignment(id)?.to_json())
    }

    /// Groups the collected unfolded tuples into one assignment per sink tuple,
    /// preserving the order in which sink tuples were produced.
    pub fn assignments(&self) -> Vec<ProvenanceAssignment<T>> {
        let mut order: Vec<TupleId> = Vec::new();
        let mut groups: HashMap<TupleId, ProvenanceAssignment<T>> = HashMap::new();
        for tuple in self.collected.tuples() {
            let u = &tuple.data;
            let entry = groups.entry(u.sink_id).or_insert_with(|| {
                order.push(u.sink_id);
                ProvenanceAssignment {
                    sink_ts: u.sink_ts,
                    sink_id: u.sink_id,
                    sink_data: u.sink_data.clone(),
                    sources: Vec::new(),
                }
            });
            entry.sources.push(u.origin.clone());
        }
        order
            .into_iter()
            .filter_map(|id| groups.remove(&id))
            .collect()
    }

    /// Rough size, in bytes, of the textual provenance information (used to report the
    /// provenance-volume ratio of §7).
    pub fn estimated_bytes(&self) -> usize {
        self.collected
            .tuples()
            .iter()
            .map(|t| t.data.origin.render().len() + 32)
            .sum()
    }

    /// Writes the provenance of every sink tuple in a line-oriented textual format
    /// (`sink -> source` pairs), mirroring the evaluation's "stored on disk" setup.
    ///
    /// # Errors
    /// Propagates any I/O error from the writer.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        for assignment in self.assignments() {
            writeln!(
                writer,
                "sink {} ts={} data={:?} sources={}",
                assignment.sink_id,
                assignment.sink_ts,
                assignment.sink_data,
                assignment.source_count()
            )?;
            for source in &assignment.sources {
                writeln!(writer, "  <- {} {}", source.id(), source.render())?;
            }
        }
        Ok(())
    }
}

impl<T: TupleData> genealog_control::ProvenanceQuery for ProvenanceCollector<T> {
    fn contribution_set(&self, sink_id: &str) -> Option<String> {
        self.contribution_json(sink_id)
    }
}

/// Attaches a single-stream unfolder and a collecting provenance sink to `input`.
///
/// Returns the pass-through copy of the stream (to be connected to the query's
/// original Sink, or discarded) and the [`ProvenanceCollector`] receiving the
/// unfolded stream.
pub fn attach_provenance_sink<T: TupleData>(
    q: &mut Query<GeneaLog>,
    name: &str,
    input: StreamRef<T, GlMeta>,
) -> (StreamRef<T, GlMeta>, ProvenanceCollector<T>) {
    let (passthrough, unfolded) = attach_unfolder(q, name, input);
    let collected = q.collecting_sink(&format!("{name}-provenance-sink"), unfolded);
    q.note_provenance_collector();
    (passthrough, ProvenanceCollector::from_collected(collected))
}

/// [`attach_provenance_sink`] for the declarative logical-plan API: attaches the
/// single-stream unfolder and its collecting sink behind a
/// [`LogicalStream`], at lowering time.
///
/// Returns the pass-through logical stream (connect it to the plan's Sink, or
/// discard it) and the collector, which is populated once the lowered query runs.
pub fn logical_provenance_sink<T: TupleData>(
    stream: LogicalStream<GeneaLog, T>,
    name: &str,
) -> (LogicalStream<GeneaLog, T>, ProvenanceCollector<T>) {
    let collected: CollectedStream<UnfoldedTuple<T>, GlMeta> = CollectedStream::new();
    let copy = collected.clone();
    let owned = name.to_string();
    let passthrough = stream.raw(&format!("{name}-provenance"), move |q, s| {
        let (passthrough, unfolded) = attach_unfolder(q, &owned, s);
        q.collecting_sink_into(&format!("{owned}-provenance-sink"), unfolded, &copy);
        q.note_provenance_collector();
        passthrough
    });
    (passthrough, ProvenanceCollector::from_collected(collected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::operator::source::VecSource;
    use genealog_spe::{Duration, WindowSpec};

    /// A miniature Q1: reports (car, speed), alert when 3 zero-speed reports of the
    /// same car fall in one window.
    fn run_mini_q1() -> (Vec<ProvenanceAssignment<(u32, usize)>>, usize) {
        let mut q = Query::new(GeneaLog::new());
        let reports: Vec<(u32, u32)> = vec![(7, 0), (8, 12), (7, 0), (9, 0), (7, 0)];
        let src = q.source("reports", VecSource::with_period(reports, 30_000));
        let stopped = q.filter("speed0", src, |r: &(u32, u32)| r.1 == 0);
        let counts = q.aggregate(
            "count",
            stopped,
            WindowSpec::new(Duration::from_secs(150), Duration::from_secs(150)).unwrap(),
            |r: &(u32, u32)| r.0,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |c: &(u32, usize)| c.1 >= 3);
        let (out, collector) = attach_provenance_sink(&mut q, "prov", alerts);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();
        let unfolded = collector.unfolded_count();
        (collector.assignments(), unfolded)
    }

    #[test]
    fn collector_groups_unfolded_tuples_per_sink_tuple() {
        let (assignments, unfolded) = run_mini_q1();
        assert_eq!(assignments.len(), 1, "exactly one alert (car 7)");
        let a = &assignments[0];
        assert_eq!(a.sink_data.0, 7);
        assert_eq!(a.source_count(), 3);
        assert_eq!(unfolded, 3);
        let payloads = a.source_payloads::<(u32, u32)>();
        assert_eq!(payloads.len(), 3);
        assert!(payloads.iter().all(|p| p.0 == 7 && p.1 == 0));
        let records = a.source_records::<(u32, u32)>();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn write_to_produces_one_line_per_source() {
        let (assignments, _) = run_mini_q1();
        let collector_output = {
            // Rebuild a collector-like output through the assignment API.
            let mut buf = Vec::new();
            for a in &assignments {
                writeln!(buf, "sink {}", a.sink_id).unwrap();
                for s in &a.sources {
                    writeln!(buf, "  <- {}", s.id()).unwrap();
                }
            }
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(collector_output.lines().count(), 1 + 3);
    }

    #[test]
    fn collector_write_to_and_size_estimate() {
        let mut q = Query::new(GeneaLog::new());
        let src = q.source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1_000));
        let doubled = q.map_one("double", src, |v| v * 2);
        let (out, collector) = attach_provenance_sink(&mut q, "prov", doubled);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();

        assert_eq!(collector.assignments().len(), 3);
        assert!(collector.estimated_bytes() > 0);
        let mut buf = Vec::new();
        collector.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // One sink line plus one source line per sink tuple.
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("sources=1"));
    }

    #[test]
    fn wrong_schema_downcast_yields_empty_payloads() {
        let (assignments, _) = run_mini_q1();
        let payloads = assignments[0].source_payloads::<String>();
        assert!(payloads.is_empty());
    }
}
