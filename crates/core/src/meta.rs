//! GeneaLog's fixed-size per-tuple meta-attributes (§4 of the paper).
//!
//! Every tuple processed by a GeneaLog-instrumented query carries a [`GlMeta`] with:
//!
//! * `T` ([`OpKind`]) — which operator *created* the tuple (`SOURCE`, `MAP`,
//!   `MULTIPLEX`, `JOIN`, `AGGREGATE` or `REMOTE`; forwarding operators such as Filter
//!   and Union never create tuples and therefore have no kind).
//! * `U1`, `U2` — references to the input tuples contributing to this tuple.
//! * `N` — the chain pointer set by the Aggregate to link the tuples of a window.
//! * `ID` — the unique tuple identifier used for inter-process provenance (§6).
//!
//! In the paper these are raw memory pointers whose reachability is managed by the
//! host process' garbage collector; here they are `Arc` references
//! ([`ProvRef`] = `Arc<dyn ProvNode>`), which gives the same property: a tuple stays
//! alive exactly as long as something downstream still references it, and is reclaimed
//! the moment nothing does (challenge C2).

use std::any::Any;
use std::fmt;
use std::sync::{Arc, OnceLock};

use genealog_spe::tuple::{GTuple, TupleData, TupleId};
use genealog_spe::Timestamp;

/// The operator kind that created a tuple (the paper's meta-attribute `T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Created by a Source: a source tuple, leaf of every contribution graph.
    Source,
    /// Created by a Map.
    Map,
    /// Created by a Multiplex.
    Multiplex,
    /// Created by a Join.
    Join,
    /// Created by an Aggregate.
    Aggregate,
    /// Materialised by a Receive operator after crossing a process boundary; the
    /// traversal stops here and inter-process provenance resumes at the sending
    /// instance (§6).
    Remote,
}

impl OpKind {
    /// True for the kinds at which the contribution-graph traversal terminates.
    pub fn is_terminal(self) -> bool {
        matches!(self, OpKind::Source | OpKind::Remote)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Source => "SOURCE",
            OpKind::Map => "MAP",
            OpKind::Multiplex => "MULTIPLEX",
            OpKind::Join => "JOIN",
            OpKind::Aggregate => "AGGREGATE",
            OpKind::Remote => "REMOTE",
        };
        f.write_str(s)
    }
}

/// A reference to a tuple participating in a contribution graph.
pub type ProvRef = Arc<dyn ProvNode>;

/// The view of a tuple needed to traverse contribution graphs.
///
/// Implemented by `GTuple<T, GlMeta>` for every payload type `T`, so tuples of
/// *different schemas* (source reports, intermediate aggregates, alerts) can be linked
/// into one graph behind `Arc<dyn ProvNode>` references.
pub trait ProvNode: Send + Sync + fmt::Debug + 'static {
    /// The operator kind that created this tuple (meta-attribute `T`).
    fn kind(&self) -> OpKind;
    /// The tuple's logical timestamp.
    fn ts(&self) -> Timestamp;
    /// The tuple's stimulus (the wall-clock origin used for latency tracking).
    fn stimulus(&self) -> u64;
    /// The tuple's unique identifier (meta-attribute `ID`, §6).
    fn id(&self) -> TupleId;
    /// Upstream pointer `U1` (latest contributing tuple / Map input / Join's recent side).
    fn u1(&self) -> Option<ProvRef>;
    /// Upstream pointer `U2` (earliest window tuple / Join's older side).
    fn u2(&self) -> Option<ProvRef>;
    /// Chain pointer `N` (next tuple of the same aggregate window).
    fn next(&self) -> Option<ProvRef>;
    /// Borrowed view of `U1`, avoiding the reference-count round-trip of
    /// [`ProvNode::u1`] when the caller only inspects the target.
    fn u1_ref(&self) -> Option<&ProvRef>;
    /// Borrowed view of `U2` (see [`ProvNode::u1_ref`]).
    fn u2_ref(&self) -> Option<&ProvRef>;
    /// Borrowed view of `N` (see [`ProvNode::u1_ref`]).
    fn next_ref(&self) -> Option<&ProvRef>;
    /// The tuple payload, type-erased (downcast with the `ProvNode` payload helpers).
    fn payload_any(&self) -> &(dyn Any + Send + Sync);
    /// Debug rendering of the payload, used when writing provenance to disk or logs.
    fn render(&self) -> String;

    /// Convenience: downcasts the payload to a concrete source schema.
    fn payload_as<S: TupleData>(&self) -> Option<&S>
    where
        Self: Sized,
    {
        self.payload_any().downcast_ref::<S>()
    }
}

impl dyn ProvNode {
    /// Downcasts the payload of a type-erased node to a concrete schema.
    pub fn payload<S: TupleData>(&self) -> Option<&S> {
        self.payload_any().downcast_ref::<S>()
    }
}

/// The `N` chain pointer: set after tuple creation by the instrumented Aggregate, so it
/// needs interior mutability inside the shared tuple.
///
/// The pointer is a lock-free *once-settable* cell. Within one aggregate group the
/// successor of a tuple in the `N` chain is always the next tuple of the same group in
/// timestamp order, so overlapping sliding windows only ever re-set a pointer to the
/// value it already holds; the first write wins and later identical writes are no-ops.
/// Readers ([`NextPointer::get`], traversals on the hot path) never block.
#[derive(Default)]
pub struct NextPointer {
    cell: OnceLock<ProvRef>,
}

impl NextPointer {
    /// Creates an unset pointer.
    pub fn new() -> Self {
        NextPointer {
            cell: OnceLock::new(),
        }
    }

    /// Sets the pointer. The first write wins; subsequent writes (overlapping sliding
    /// windows legitimately re-chain a tuple to the same successor) are ignored.
    pub fn set(&self, next: ProvRef) {
        let _ = self.cell.set(next);
    }

    /// Reads the pointer (lock-free).
    pub fn get(&self) -> Option<ProvRef> {
        self.cell.get().cloned()
    }

    /// Borrowed view of the pointer (lock-free, no reference-count traffic).
    pub fn get_ref(&self) -> Option<&ProvRef> {
        self.cell.get()
    }

    /// Whether the pointer has been set.
    pub fn is_set(&self) -> bool {
        self.cell.get().is_some()
    }
}

impl fmt::Debug for NextPointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NextPointer({})",
            if self.is_set() { "set" } else { "unset" }
        )
    }
}

/// GeneaLog's per-tuple metadata: the four meta-attributes of §4 plus the tuple id of §6.
///
/// The size of this struct is independent of how many source tuples contribute to the
/// tuple — the paper's challenge C1 — in contrast to the variable-length annotation
/// vector of the Ariadne-style baseline.
pub struct GlMeta {
    /// Meta-attribute `T`: the operator kind that created the tuple.
    pub kind: OpKind,
    /// Meta-attribute `ID`: unique tuple identifier (used for inter-process provenance).
    pub id: TupleId,
    /// Meta-attribute `U1`.
    pub u1: Option<ProvRef>,
    /// Meta-attribute `U2`.
    pub u2: Option<ProvRef>,
    /// Meta-attribute `N`.
    pub next: NextPointer,
}

impl GlMeta {
    /// Metadata for a tuple with no upstream pointers (source or remote tuples).
    pub fn leaf(kind: OpKind, id: TupleId) -> Self {
        GlMeta {
            kind,
            id,
            u1: None,
            u2: None,
            next: NextPointer::new(),
        }
    }

    /// Metadata for a tuple created from a single input (Map, Multiplex).
    pub fn unary(kind: OpKind, id: TupleId, u1: ProvRef) -> Self {
        GlMeta {
            kind,
            id,
            u1: Some(u1),
            u2: None,
            next: NextPointer::new(),
        }
    }

    /// Metadata for a tuple created from two inputs (Join) or a window (Aggregate).
    pub fn binary(kind: OpKind, id: TupleId, u1: ProvRef, u2: ProvRef) -> Self {
        GlMeta {
            kind,
            id,
            u1: Some(u1),
            u2: Some(u2),
            next: NextPointer::new(),
        }
    }

    /// Clone for a checkpoint restore: kind, id and the `U1`/`U2` back-pointers are
    /// preserved (they reference the part of the provenance graph that was frozen
    /// before the checkpoint barrier), but the `N` cell comes back **unset**.
    ///
    /// `N` is the only meta-attribute written after tuple creation — the aggregate
    /// chains a window's tuples when the window closes. A restored tuple sits in a
    /// window that had *not* closed at the checkpoint cut, so its `N` must be free
    /// for the recovered run's own window-close to claim; carrying over a value the
    /// failed run may have written after the cut would stitch the restored lineage
    /// into the abandoned run's graph.
    pub fn detach(&self) -> Self {
        GlMeta {
            kind: self.kind,
            id: self.id,
            u1: self.u1.clone(),
            u2: self.u2.clone(),
            next: NextPointer::new(),
        }
    }
}

impl fmt::Debug for GlMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlMeta")
            .field("kind", &self.kind)
            .field("id", &self.id)
            .field("u1", &self.u1.as_ref().map(|t| t.id()))
            .field("u2", &self.u2.as_ref().map(|t| t.id()))
            .field("next", &self.next)
            .finish()
    }
}

impl<T: TupleData> ProvNode for GTuple<T, GlMeta> {
    fn kind(&self) -> OpKind {
        self.meta.kind
    }

    fn ts(&self) -> Timestamp {
        self.ts
    }

    fn stimulus(&self) -> u64 {
        self.stimulus
    }

    fn id(&self) -> TupleId {
        self.meta.id
    }

    fn u1(&self) -> Option<ProvRef> {
        self.meta.u1.clone()
    }

    fn u2(&self) -> Option<ProvRef> {
        self.meta.u2.clone()
    }

    fn next(&self) -> Option<ProvRef> {
        self.meta.next.get()
    }

    fn u1_ref(&self) -> Option<&ProvRef> {
        self.meta.u1.as_ref()
    }

    fn u2_ref(&self) -> Option<&ProvRef> {
        self.meta.u2.as_ref()
    }

    fn next_ref(&self) -> Option<&ProvRef> {
        self.meta.next.get_ref()
    }

    fn payload_any(&self) -> &(dyn Any + Send + Sync) {
        &self.data
    }

    fn render(&self) -> String {
        format!("{:?}@{}", self.data, self.ts)
    }
}

/// Erases a concrete tuple reference into a [`ProvRef`].
pub fn erase<T: TupleData>(tuple: &Arc<GTuple<T, GlMeta>>) -> ProvRef {
    Arc::clone(tuple) as ProvRef
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_tuple(ts: u64, value: i64, seq: u64) -> Arc<GTuple<i64, GlMeta>> {
        Arc::new(GTuple::new(
            Timestamp::from_secs(ts),
            0,
            value,
            GlMeta::leaf(OpKind::Source, TupleId::new(0, seq)),
        ))
    }

    #[test]
    fn op_kind_terminality_and_display() {
        assert!(OpKind::Source.is_terminal());
        assert!(OpKind::Remote.is_terminal());
        assert!(!OpKind::Map.is_terminal());
        assert!(!OpKind::Aggregate.is_terminal());
        assert_eq!(OpKind::Aggregate.to_string(), "AGGREGATE");
        assert_eq!(OpKind::Multiplex.to_string(), "MULTIPLEX");
    }

    #[test]
    fn prov_node_exposes_tuple_fields() {
        let t = leaf_tuple(8, 42, 3);
        let node: ProvRef = erase(&t);
        assert_eq!(node.kind(), OpKind::Source);
        assert_eq!(node.ts(), Timestamp::from_secs(8));
        assert_eq!(node.id(), TupleId::new(0, 3));
        assert!(node.u1().is_none());
        assert!(node.u2().is_none());
        assert!(node.next().is_none());
        assert_eq!(node.payload::<i64>(), Some(&42));
        assert!(node.payload::<String>().is_none());
        assert!(node.render().contains("42"));
    }

    #[test]
    fn unary_and_binary_constructors_set_pointers() {
        let a = leaf_tuple(1, 1, 0);
        let b = leaf_tuple(2, 2, 1);
        let unary = GlMeta::unary(OpKind::Map, TupleId::new(1, 0), erase(&a));
        assert!(unary.u1.is_some());
        assert!(unary.u2.is_none());
        let binary = GlMeta::binary(OpKind::Join, TupleId::new(1, 1), erase(&b), erase(&a));
        assert_eq!(binary.u1.as_ref().unwrap().id(), TupleId::new(0, 1));
        assert_eq!(binary.u2.as_ref().unwrap().id(), TupleId::new(0, 0));
    }

    #[test]
    fn next_pointer_is_settable_after_creation() {
        let a = leaf_tuple(1, 1, 0);
        let b = leaf_tuple(2, 2, 1);
        assert!(!a.meta.next.is_set());
        a.meta.next.set(erase(&b));
        assert!(a.meta.next.is_set());
        assert_eq!(a.meta.next.get().unwrap().id(), b.meta.id);
        // Re-setting (overlapping windows) is allowed.
        a.meta.next.set(erase(&b));
        assert_eq!(a.meta.next.get().unwrap().id(), b.meta.id);
    }

    #[test]
    fn arc_references_keep_contributing_tuples_alive() {
        let source = leaf_tuple(1, 7, 0);
        let weak = Arc::downgrade(&source);
        let derived = Arc::new(GTuple::new(
            Timestamp::from_secs(2),
            0,
            "alert".to_string(),
            GlMeta::unary(OpKind::Map, TupleId::new(1, 0), erase(&source)),
        ));
        drop(source);
        // Still alive: the derived tuple references it.
        assert!(weak.upgrade().is_some());
        drop(derived);
        // Reclaimed as soon as nothing references it (challenge C2).
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn gl_meta_debug_is_shallow() {
        let a = leaf_tuple(1, 1, 0);
        let m = GlMeta::unary(OpKind::Map, TupleId::new(1, 5), erase(&a));
        let dbg = format!("{m:?}");
        assert!(dbg.contains("Map"));
        assert!(dbg.contains(&format!("{:?}", TupleId::new(1, 5))));
    }

    #[test]
    fn gl_meta_is_fixed_size() {
        // The metadata footprint must not depend on the number of contributing source
        // tuples (challenge C1). Two pointers + option id/kind + next cell.
        let size = std::mem::size_of::<GlMeta>();
        assert!(size <= 96, "GlMeta unexpectedly large: {size} bytes");
    }
}
