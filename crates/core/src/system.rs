//! The GeneaLog provenance system: the instrumented operators of §4.1.
//!
//! [`GeneaLog`] implements the engine's
//! [`ProvenanceSystem`] extension point.
//! Each hook sets the fixed-size meta-attributes exactly as the paper prescribes:
//!
//! | operator  | `T`         | `U1`              | `U2`               | `N`                     |
//! |-----------|-------------|-------------------|--------------------|-------------------------|
//! | Source    | `SOURCE`    | —                 | —                  | —                       |
//! | Map       | `MAP`       | input             | —                  | —                       |
//! | Multiplex | `MULTIPLEX` | input             | —                  | —                       |
//! | Join      | `JOIN`      | more recent input | older input        | —                       |
//! | Aggregate | `AGGREGATE` | latest in window  | earliest in window | chains window tuples    |
//! | Receive   | `REMOTE`¹   | —                 | —                  | —                       |
//!
//! ¹ forwarded source tuples keep `SOURCE` across the process boundary, as the paper's
//! Send operator only rewrites `T` when it is not already `SOURCE`.
//!
//! Filter and Union forward existing tuples and therefore have no instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use genealog_spe::provenance::{ProvenanceSystem, RemoteContext, SourceContext};
use genealog_spe::tuple::{GTuple, TupleData, TupleId};

use crate::meta::{erase, GlMeta, OpKind};

/// The GeneaLog provenance system ("GL" in the evaluation).
///
/// Clone-cheap: all clones share the same id counter, so every tuple created inside
/// one SPE instance receives a unique [`TupleId`]. Use [`GeneaLog::for_instance`] to
/// give each SPE instance of a distributed deployment a distinct id namespace.
#[derive(Debug, Clone)]
pub struct GeneaLog {
    origin: u32,
    counter: Arc<AtomicU64>,
}

impl Default for GeneaLog {
    fn default() -> Self {
        Self::new()
    }
}

impl GeneaLog {
    /// Creates a provenance system for a single (or the first) SPE instance.
    pub fn new() -> Self {
        Self::for_instance(0)
    }

    /// Creates a provenance system whose tuple ids live in the namespace of the given
    /// SPE instance (used by distributed deployments, §6).
    pub fn for_instance(instance: u32) -> Self {
        GeneaLog {
            origin: instance,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The instance id this system stamps into tuple ids.
    pub fn instance(&self) -> u32 {
        self.origin
    }

    /// Number of tuple ids handed out so far (i.e. number of tuples created).
    pub fn tuples_created(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    fn fresh_id(&self) -> TupleId {
        TupleId::new(self.origin, self.counter.fetch_add(1, Ordering::Relaxed))
    }
}

impl ProvenanceSystem for GeneaLog {
    type Meta = GlMeta;

    fn label(&self) -> &'static str {
        "GL"
    }

    fn source_meta<T: TupleData>(&self, _ctx: &SourceContext, _data: &T) -> GlMeta {
        GlMeta::leaf(OpKind::Source, self.fresh_id())
    }

    fn map_meta<I: TupleData>(&self, input: &Arc<GTuple<I, GlMeta>>) -> GlMeta {
        GlMeta::unary(OpKind::Map, self.fresh_id(), erase(input))
    }

    fn multiplex_meta<I: TupleData>(&self, input: &Arc<GTuple<I, GlMeta>>) -> GlMeta {
        GlMeta::unary(OpKind::Multiplex, self.fresh_id(), erase(input))
    }

    fn join_meta<L: TupleData, R: TupleData>(
        &self,
        left: &Arc<GTuple<L, GlMeta>>,
        right: &Arc<GTuple<R, GlMeta>>,
    ) -> GlMeta {
        // U1 is the more recent of the two contributing tuples, U2 the older one
        // (ties resolved towards the left input for determinism).
        let (recent, older) = if right.ts > left.ts {
            (erase(right), erase(left))
        } else {
            (erase(left), erase(right))
        };
        GlMeta::binary(OpKind::Join, self.fresh_id(), recent, older)
    }

    fn aggregate_meta<I: TupleData>(&self, window: &[Arc<GTuple<I, GlMeta>>]) -> GlMeta {
        assert!(
            !window.is_empty(),
            "aggregate windows that produce output are never empty"
        );
        // Chain the window tuples through their N pointers: t_i.N = t_{i+1}.
        for pair in window.windows(2) {
            pair[0].meta.next.set(erase(&pair[1]));
        }
        let earliest = erase(&window[0]);
        let latest = erase(&window[window.len() - 1]);
        GlMeta::binary(OpKind::Aggregate, self.fresh_id(), latest, earliest)
    }

    fn remote_meta(&self, ctx: &RemoteContext) -> GlMeta {
        // The paper's Send operator sets T to REMOTE only if it is not SOURCE, so
        // source tuples forwarded across processes keep their SOURCE kind.
        let kind = if ctx.was_source {
            OpKind::Source
        } else {
            OpKind::Remote
        };
        GlMeta::leaf(kind, ctx.id)
    }

    fn detach_meta(&self, meta: &GlMeta) -> GlMeta {
        meta.detach()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::Timestamp;

    fn source_tuple(gl: &GeneaLog, ts: u64, v: i64) -> Arc<GTuple<i64, GlMeta>> {
        let ctx = SourceContext {
            source_id: 0,
            seq: 0,
            ts: Timestamp::from_secs(ts),
        };
        let meta = gl.source_meta(&ctx, &v);
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, meta))
    }

    #[test]
    fn ids_are_unique_and_share_the_instance_namespace() {
        let gl = GeneaLog::for_instance(7);
        assert_eq!(gl.instance(), 7);
        let a = source_tuple(&gl, 1, 1);
        let gl2 = gl.clone();
        let b = source_tuple(&gl2, 2, 2);
        assert_eq!(a.meta.id.origin, 7);
        assert_eq!(b.meta.id.origin, 7);
        assert_ne!(a.meta.id, b.meta.id);
        assert_eq!(gl.tuples_created(), 2);
    }

    #[test]
    fn source_meta_has_no_pointers() {
        let gl = GeneaLog::new();
        let t = source_tuple(&gl, 1, 10);
        assert_eq!(t.meta.kind, OpKind::Source);
        assert!(t.meta.u1.is_none());
        assert!(t.meta.u2.is_none());
        assert!(!t.meta.next.is_set());
    }

    #[test]
    fn map_and_multiplex_point_u1_at_the_input() {
        let gl = GeneaLog::new();
        let input = source_tuple(&gl, 1, 10);
        let map_meta = gl.map_meta(&input);
        assert_eq!(map_meta.kind, OpKind::Map);
        assert_eq!(map_meta.u1.as_ref().unwrap().id(), input.meta.id);
        assert!(map_meta.u2.is_none());
        let mux_meta = gl.multiplex_meta(&input);
        assert_eq!(mux_meta.kind, OpKind::Multiplex);
        assert_eq!(mux_meta.u1.as_ref().unwrap().id(), input.meta.id);
    }

    #[test]
    fn join_orders_u1_and_u2_by_recency() {
        let gl = GeneaLog::new();
        let older = source_tuple(&gl, 10, 1);
        let newer = source_tuple(&gl, 20, 2);
        // Left older, right newer.
        let meta = gl.join_meta(&older, &newer);
        assert_eq!(meta.kind, OpKind::Join);
        assert_eq!(meta.u1.as_ref().unwrap().ts(), Timestamp::from_secs(20));
        assert_eq!(meta.u2.as_ref().unwrap().ts(), Timestamp::from_secs(10));
        // Left newer, right older.
        let meta = gl.join_meta(&newer, &older);
        assert_eq!(meta.u1.as_ref().unwrap().ts(), Timestamp::from_secs(20));
        assert_eq!(meta.u2.as_ref().unwrap().ts(), Timestamp::from_secs(10));
        // Equal timestamps: the left input wins U1.
        let left = source_tuple(&gl, 30, 3);
        let right = source_tuple(&gl, 30, 4);
        let meta = gl.join_meta(&left, &right);
        assert_eq!(meta.u1.as_ref().unwrap().id(), left.meta.id);
    }

    #[test]
    fn aggregate_chains_the_window_and_points_at_its_ends() {
        let gl = GeneaLog::new();
        let window: Vec<_> = (0..4)
            .map(|i| source_tuple(&gl, 30 * (i + 1), i as i64))
            .collect();
        let meta = gl.aggregate_meta(&window);
        assert_eq!(meta.kind, OpKind::Aggregate);
        // U2 = earliest, U1 = latest.
        assert_eq!(meta.u2.as_ref().unwrap().id(), window[0].meta.id);
        assert_eq!(meta.u1.as_ref().unwrap().id(), window[3].meta.id);
        // N chain: w0 -> w1 -> w2 -> w3, last unset.
        for i in 0..3 {
            assert_eq!(
                window[i].meta.next.get().unwrap().id(),
                window[i + 1].meta.id
            );
        }
        assert!(!window[3].meta.next.is_set());
    }

    #[test]
    fn single_tuple_window_has_u1_equal_u2() {
        let gl = GeneaLog::new();
        let window = vec![source_tuple(&gl, 30, 5)];
        let meta = gl.aggregate_meta(&window);
        assert_eq!(
            meta.u1.as_ref().unwrap().id(),
            meta.u2.as_ref().unwrap().id()
        );
        assert!(!window[0].meta.next.is_set());
    }

    #[test]
    fn remote_meta_keeps_source_kind_for_forwarded_source_tuples() {
        let gl = GeneaLog::new();
        let remote = gl.remote_meta(&RemoteContext {
            id: TupleId::new(3, 9),
            ts: Timestamp::from_secs(1),
            was_source: false,
        });
        assert_eq!(remote.kind, OpKind::Remote);
        assert_eq!(remote.id, TupleId::new(3, 9));
        let forwarded_source = gl.remote_meta(&RemoteContext {
            id: TupleId::new(3, 10),
            ts: Timestamp::from_secs(1),
            was_source: true,
        });
        assert_eq!(forwarded_source.kind, OpKind::Source);
    }

    #[test]
    fn label_is_gl() {
        assert_eq!(GeneaLog::new().label(), "GL");
    }
}
