//! # GeneaLog — fine-grained data streaming provenance at the edge
//!
//! This crate is the core contribution of the reproduction of *"GeneaLog: Fine-Grained
//! Data Streaming Provenance at the Edge"* (Palyvos-Giannas, Gulisano,
//! Papatriantafilou — Middleware '18): a provenance technique for deterministic
//! streaming queries that links every sink tuple (alert/event) back to the exact set
//! of source tuples that contributed to it, while adding only a **small, fixed-size**
//! amount of metadata per tuple and **without retaining non-contributing source
//! tuples**.
//!
//! ## How it works
//!
//! * Every tuple carries four meta-attributes ([`meta::GlMeta`]): its creating operator
//!   kind `T`, two upstream pointers `U1`/`U2` and a chain pointer `N` (§4 of the
//!   paper), plus the unique tuple id used for inter-process provenance (§6).
//! * The instrumented operators ([`system::GeneaLog`], plugged into the engine through
//!   [`genealog_spe::provenance::ProvenanceSystem`]) set the meta-attributes exactly
//!   as in §4.1: Map/Multiplex point `U1` at their input, Join points `U1`/`U2` at the
//!   matched pair, Aggregate points `U2`/`U1` at the earliest/latest window tuple and
//!   chains the window through `N`; Filter and Union forward tuples untouched.
//! * [`traversal::find_provenance`] walks the resulting contribution graph
//!   (the paper's Listing 1) from any tuple back to its originating `SOURCE` (or
//!   `REMOTE`) tuples.
//! * The single-stream unfolder ([`unfolder::attach_unfolder`], §5) and the
//!   multi-stream unfolder ([`unfolder::attach_multi_unfolder`], §6) express the
//!   provenance pipeline itself with standard streaming operators, so provenance
//!   capture can be deployed and distributed like any other part of the query.
//!
//! Because the upstream pointers are `Arc` references, a source tuple stays in memory
//! exactly as long as some in-flight or sink tuple still (transitively) references it;
//! the moment nothing does, it is reclaimed — the paper's challenge C2.
//!
//! ## Quick example
//!
//! ```rust
//! use genealog::prelude::*;
//!
//! # fn main() -> Result<(), SpeError> {
//! // Detect "two consecutive readings above 100" and trace each alert to its inputs.
//! let mut q = GlQuery::new(GeneaLog::new());
//! let readings = q.source(
//!     "readings",
//!     VecSource::with_period(vec![10i64, 120, 130, 5, 140, 150], 30_000),
//! );
//! let high = q.filter("high", readings, |v| *v > 100);
//! let pairs = q.aggregate(
//!     "pairs",
//!     high,
//!     WindowSpec::new(Duration::from_secs(60), Duration::from_secs(30))?,
//!     |_| 0u8,
//!     |w| w.len(),
//! );
//! let alerts = q.filter("alerts", pairs, |count| *count >= 2);
//! let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
//! q.discard(out);
//! q.deploy()?.wait()?;
//!
//! for assignment in provenance.assignments() {
//!     let inputs: Vec<i64> = assignment.source_payloads::<i64>();
//!     assert!(inputs.iter().all(|v| *v > 100));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod meta;
pub mod persist;
pub mod sink;
pub mod system;
pub mod traversal;
pub mod unfolder;

/// Convenience re-exports for building provenance-enabled queries.
pub mod prelude {
    pub use crate::meta::{GlMeta, OpKind, ProvNode, ProvRef};
    pub use crate::sink::{
        attach_provenance_sink, logical_provenance_sink, ProvenanceAssignment, ProvenanceCollector,
    };
    pub use crate::system::GeneaLog;
    pub use crate::traversal::{find_provenance, find_provenance_with_stats};
    pub use crate::unfolder::{
        attach_multi_unfolder, attach_unfolder, SourceRecord, UnfoldedEvent, UnfoldedTuple,
        UpstreamEvent,
    };
    pub use crate::{GlPlan, GlQuery};
    pub use genealog_spe::prelude::*;
}

pub use meta::{erase, GlMeta, OpKind, ProvNode, ProvRef};
pub use persist::GlWindowPersister;
pub use sink::{
    attach_provenance_sink, logical_provenance_sink, ProvenanceAssignment, ProvenanceCollector,
};
pub use system::GeneaLog;
pub use traversal::{find_provenance, find_provenance_with_stats, TraversalStats};
pub use unfolder::{
    attach_multi_unfolder, attach_unfolder, SourceRecord, UnfoldedEvent, UnfoldedTuple,
    UpstreamEvent,
};

/// A query instrumented with GeneaLog provenance.
pub type GlQuery = genealog_spe::Query<GeneaLog>;

/// A declarative logical plan instrumented with GeneaLog provenance (lowered to a
/// [`GlQuery`] by the planner).
pub type GlPlan = genealog_spe::LogicalPlan<GeneaLog>;
