//! Traversal of the contribution graph (the paper's Listing 1).
//!
//! Starting from any tuple, [`find_provenance`] performs a breadth-first search over
//! the `U1`/`U2`/`N` pointers and returns the *originating* tuples (Definition 4.1):
//! tuples of kind `SOURCE` or `REMOTE`. Inside a single SPE instance all originating
//! tuples are `SOURCE` tuples, which is exactly the fine-grained provenance of the
//! sink tuple; `REMOTE` tuples appear only in distributed deployments and are resolved
//! by the multi-stream unfolder of §6.

use std::collections::{HashSet, VecDeque};

use crate::meta::{OpKind, ProvRef};

/// Statistics of one contribution-graph traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Number of graph nodes visited (originating and intermediate).
    pub nodes_visited: usize,
    /// Number of originating tuples returned.
    pub originating: usize,
}

fn node_key(node: &ProvRef) -> usize {
    // Identity of the referenced tuple: the address of its allocation.
    std::sync::Arc::as_ptr(node) as *const () as usize
}

/// Enqueues `node` if it has not been visited. Takes a *borrowed* reference and only
/// clones (bumping the reference count) when the node is actually new, so revisits in
/// diamond-shaped graphs cost a pointer comparison instead of an `Arc` round-trip.
fn enqueue_if_not_visited(
    node: &ProvRef,
    queue: &mut VecDeque<ProvRef>,
    visited: &mut HashSet<usize>,
) {
    if visited.insert(node_key(node)) {
        queue.push_back(node.clone());
    }
}

/// Finds the originating tuples of `root`, returning them in breadth-first order
/// together with traversal statistics.
///
/// This is a direct transcription of the paper's Listing 1:
///
/// * `SOURCE` / `REMOTE` nodes are added to the result;
/// * `MAP` / `MULTIPLEX` nodes enqueue their `U1` pointer;
/// * `JOIN` nodes enqueue `U1` and `U2`;
/// * `AGGREGATE` nodes enqueue `U2`, then follow the `N` chain up to (and including)
///   `U1`, enqueueing every window tuple on the way.
pub fn find_provenance_with_stats(root: &ProvRef) -> (Vec<ProvRef>, TraversalStats) {
    let mut result = Vec::new();
    let mut visited: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<ProvRef> = VecDeque::new();
    let mut stats = TraversalStats::default();

    visited.insert(node_key(root));
    queue.push_back(root.clone());

    while let Some(tuple) = queue.pop_front() {
        stats.nodes_visited += 1;
        match tuple.kind() {
            OpKind::Source | OpKind::Remote => result.push(tuple),
            OpKind::Map | OpKind::Multiplex => {
                if let Some(u1) = tuple.u1_ref() {
                    enqueue_if_not_visited(u1, &mut queue, &mut visited);
                }
            }
            OpKind::Join => {
                if let Some(u1) = tuple.u1_ref() {
                    enqueue_if_not_visited(u1, &mut queue, &mut visited);
                }
                if let Some(u2) = tuple.u2_ref() {
                    enqueue_if_not_visited(u2, &mut queue, &mut visited);
                }
            }
            OpKind::Aggregate => {
                let u1_key = tuple.u1_ref().map(node_key);
                if let Some(u2) = tuple.u2_ref() {
                    enqueue_if_not_visited(u2, &mut queue, &mut visited);
                    // Walk the N chain from U2 towards U1 (exclusive); U1 itself is
                    // enqueued afterwards, mirroring Listing 1. Each step borrows the
                    // chain pointer and clones once to advance the owned cursor.
                    //
                    // A single-tuple window has U1 == U2 and the walk must not start
                    // at all: the tuple's N pointer — once a later overlapping window
                    // of the same group sets it — leads *past* this window's U1, and
                    // following it would (racily, depending on whether that window
                    // has closed yet) drag unrelated later tuples into the result.
                    let mut cursor = if Some(node_key(u2)) == u1_key {
                        None
                    } else {
                        u2.next_ref().cloned()
                    };
                    while let Some(temp) = cursor {
                        if Some(node_key(&temp)) == u1_key {
                            break;
                        }
                        let next = temp.next_ref().cloned();
                        enqueue_if_not_visited(&temp, &mut queue, &mut visited);
                        cursor = next;
                    }
                }
                if let Some(u1) = tuple.u1_ref() {
                    enqueue_if_not_visited(u1, &mut queue, &mut visited);
                }
            }
        }
    }
    stats.originating = result.len();
    (result, stats)
}

/// Finds the originating tuples of `root` (see [`find_provenance_with_stats`]).
pub fn find_provenance(root: &ProvRef) -> Vec<ProvRef> {
    find_provenance_with_stats(root).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{erase, GlMeta, OpKind};
    use crate::system::GeneaLog;
    use genealog_spe::provenance::{ProvenanceSystem, SourceContext};
    use genealog_spe::tuple::{GTuple, TupleId};
    use genealog_spe::Timestamp;
    use std::sync::Arc;

    type Tup<T> = Arc<GTuple<T, GlMeta>>;

    fn gl() -> GeneaLog {
        GeneaLog::new()
    }

    fn source(gl: &GeneaLog, ts: u64, v: i64) -> Tup<i64> {
        let ctx = SourceContext {
            source_id: 0,
            seq: 0,
            ts: Timestamp::from_secs(ts),
        };
        let meta = gl.source_meta(&ctx, &v);
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, meta))
    }

    fn map_of(gl: &GeneaLog, input: &Tup<i64>, v: i64) -> Tup<i64> {
        Arc::new(GTuple::new(input.ts, 0, v, gl.map_meta(input)))
    }

    fn aggregate_of(gl: &GeneaLog, window: &[Tup<i64>], v: i64) -> Tup<i64> {
        Arc::new(GTuple::new(window[0].ts, 0, v, gl.aggregate_meta(window)))
    }

    fn join_of(gl: &GeneaLog, l: &Tup<i64>, r: &Tup<i64>, v: i64) -> Tup<i64> {
        Arc::new(GTuple::new(l.ts.max(r.ts), 0, v, gl.join_meta(l, r)))
    }

    fn ids(provenance: &[ProvRef]) -> Vec<TupleId> {
        let mut ids: Vec<TupleId> = provenance.iter().map(|p| p.id()).collect();
        ids.sort();
        ids
    }

    #[test]
    fn source_tuple_is_its_own_provenance() {
        let gl = gl();
        let s = source(&gl, 1, 10);
        let (prov, stats) = find_provenance_with_stats(&erase(&s));
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].id(), s.meta.id);
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.originating, 1);
    }

    #[test]
    fn map_chain_traverses_to_the_source() {
        let gl = gl();
        let s = source(&gl, 1, 10);
        let m1 = map_of(&gl, &s, 20);
        let m2 = map_of(&gl, &m1, 40);
        let prov = find_provenance(&erase(&m2));
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].id(), s.meta.id);
        assert_eq!(prov[0].payload::<i64>(), Some(&10));
    }

    #[test]
    fn aggregate_traversal_returns_every_window_tuple() {
        // Mirrors Figure 4: four position reports of the same car aggregate into one
        // output tuple.
        let gl = gl();
        let window: Vec<_> = (0..4).map(|i| source(&gl, 1 + 30 * i, i as i64)).collect();
        let agg = aggregate_of(&gl, &window, 4);
        let prov = find_provenance(&erase(&agg));
        assert_eq!(prov.len(), 4);
        assert_eq!(
            ids(&prov),
            ids(&window.iter().map(erase).collect::<Vec<_>>())
        );
    }

    #[test]
    fn aggregate_over_single_tuple_window() {
        let gl = gl();
        let window = vec![source(&gl, 30, 9)];
        let agg = aggregate_of(&gl, &window, 1);
        let prov = find_provenance(&erase(&agg));
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].id(), window[0].meta.id);
    }

    #[test]
    fn join_traversal_returns_both_sides() {
        let gl = gl();
        let l = source(&gl, 10, 1);
        let r = source(&gl, 20, 2);
        let j = join_of(&gl, &l, &r, 3);
        let prov = find_provenance(&erase(&j));
        assert_eq!(prov.len(), 2);
    }

    #[test]
    fn diamond_graphs_do_not_duplicate_sources() {
        // One source feeds a multiplex whose two copies are joined back together:
        // the source must be reported exactly once.
        let gl = gl();
        let s = source(&gl, 5, 50);
        let copy_a = Arc::new(GTuple::new(s.ts, 0, 50i64, gl.multiplex_meta(&s)));
        let copy_b = Arc::new(GTuple::new(s.ts, 0, 50i64, gl.multiplex_meta(&s)));
        let j = join_of(&gl, &copy_a, &copy_b, 100);
        let prov = find_provenance(&erase(&j));
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].id(), s.meta.id);
    }

    #[test]
    fn nested_aggregates_flatten_to_all_sources() {
        // Sources -> aggregate per pair -> aggregate of aggregates (like Q3's two
        // aggregation stages).
        let gl = gl();
        let sources: Vec<_> = (0..6).map(|i| source(&gl, 10 * i, i as i64)).collect();
        let level1: Vec<_> = sources
            .chunks(2)
            .map(|pair| aggregate_of(&gl, pair, 0))
            .collect();
        let level2 = aggregate_of(&gl, &level1, 0);
        let prov = find_provenance(&erase(&level2));
        assert_eq!(prov.len(), 6);
        assert_eq!(
            ids(&prov),
            ids(&sources.iter().map(erase).collect::<Vec<_>>())
        );
    }

    #[test]
    fn remote_tuples_terminate_the_traversal() {
        let gl = gl();
        let remote_meta = GlMeta::leaf(OpKind::Remote, TupleId::new(9, 1));
        let remote: Tup<i64> = Arc::new(GTuple::new(Timestamp::from_secs(1), 0, 77, remote_meta));
        let m = map_of(&gl, &remote, 78);
        let prov = find_provenance(&erase(&m));
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].kind(), OpKind::Remote);
        assert_eq!(prov[0].id(), TupleId::new(9, 1));
    }

    #[test]
    fn mixed_query_shape_matches_figure_2() {
        // Figure 1/2: Filter (no new tuple) -> Aggregate over 4 reports -> Filter.
        // The sink tuple's provenance is exactly the 4 reports of car `a`.
        let gl = gl();
        let reports: Vec<_> = (0..4).map(|i| source(&gl, 1 + 30 * i, 0)).collect();
        let other_car = source(&gl, 2, 55);
        let agg = aggregate_of(&gl, &reports, 4);
        // Filters forward `agg` unchanged, so the sink tuple *is* `agg`.
        let prov = find_provenance(&erase(&agg));
        assert_eq!(prov.len(), 4);
        assert!(!prov.iter().any(|p| p.id() == other_car.meta.id));
    }

    #[test]
    fn traversal_stats_count_intermediate_nodes() {
        let gl = gl();
        let s = source(&gl, 1, 1);
        let m1 = map_of(&gl, &s, 2);
        let m2 = map_of(&gl, &m1, 3);
        let (_, stats) = find_provenance_with_stats(&erase(&m2));
        // Visited: m2, m1, s.
        assert_eq!(stats.nodes_visited, 3);
        assert_eq!(stats.originating, 1);
    }

    #[test]
    fn overlapping_windows_traverse_correctly_after_n_pointer_reuse() {
        // Two sliding windows over the same group share tuples; the second window
        // extends the N chain. Traversing the first window's output must still stop at
        // its own U1 and return only its own tuples.
        let gl = gl();
        let tuples: Vec<_> = (0..5).map(|i| source(&gl, 30 * i, i as i64)).collect();
        let window1 = &tuples[0..4];
        let window2 = &tuples[1..5];
        let out1 = aggregate_of(&gl, window1, 0);
        let out2 = aggregate_of(&gl, window2, 0);
        let prov1 = find_provenance(&erase(&out1));
        let prov2 = find_provenance(&erase(&out2));
        assert_eq!(prov1.len(), 4);
        assert_eq!(prov2.len(), 4);
        assert_eq!(
            ids(&prov1),
            ids(&window1.iter().map(erase).collect::<Vec<_>>())
        );
        assert_eq!(
            ids(&prov2),
            ids(&window2.iter().map(erase).collect::<Vec<_>>())
        );
    }

    #[test]
    fn single_tuple_window_ignores_chain_pointers_of_later_windows() {
        // Regression: a window holding one tuple has U1 == U2. Once a later
        // overlapping window of the same group sets that tuple's N pointer, the
        // traversal of the single-tuple window's output must NOT follow the chain —
        // previously it walked past U1 and returned the later window's tuples too
        // (racily, depending on whether the later window had closed yet).
        let gl = gl();
        let alone = source(&gl, 60, 1);
        let later_a = source(&gl, 67, 2);
        let later_b = source(&gl, 69, 3);
        let single = aggregate_of(&gl, std::slice::from_ref(&alone), 0);
        // The next overlapping window [60, 68) chains `alone` to `later_a`.
        let _overlap = aggregate_of(&gl, &[alone.clone(), later_a.clone()], 0);
        let _overlap2 = aggregate_of(&gl, &[later_a, later_b], 0);
        let prov = find_provenance(&erase(&single));
        assert_eq!(prov.len(), 1, "only the window's own tuple contributes");
        assert_eq!(prov[0].id(), alone.meta.id);
    }

    #[test]
    fn large_graph_traversal_terminates() {
        // Q3-sized graphs: ~192 source tuples behind two aggregation levels.
        let gl = gl();
        let sources: Vec<_> = (0..192).map(|i| source(&gl, i, i as i64)).collect();
        let daily: Vec<_> = sources
            .chunks(24)
            .map(|day| aggregate_of(&gl, day, 0))
            .collect();
        let alert = aggregate_of(&gl, &daily, 0);
        let (prov, stats) = find_provenance_with_stats(&erase(&alert));
        assert_eq!(prov.len(), 192);
        assert!(stats.nodes_visited > 192 + 8);
    }
}
