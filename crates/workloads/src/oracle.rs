//! A brute-force provenance oracle.
//!
//! The oracle re-evaluates the semantics of the evaluation queries *directly on the
//! raw input vectors* — no streaming, no windows store, no provenance metadata — and
//! applies Definition 3.1 by hand to compute, for every alert, the exact set of source
//! tuples contributing to it. Tests compare the provenance captured by GeneaLog (and
//! by the baseline) against the oracle's ground truth.

use std::collections::{BTreeMap, BTreeSet};

use genealog_spe::{Duration, Timestamp};

use crate::queries::{
    Q1_STOPPED_REPORTS, Q1_WINDOW_ADVANCE, Q1_WINDOW_SIZE, Q2_ACCIDENT_WINDOW, Q2_MIN_STOPPED_CARS,
    Q3_DAY_WINDOW, Q3_MIN_ZERO_METERS, Q4_ANOMALY_THRESHOLD,
};
use crate::types::{
    AccidentAlert, AnomalyAlert, BlackoutAlert, MeterReading, PositionReport, StoppedCarCount,
};

/// An alert predicted by the oracle, together with the source tuples contributing to it.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleAlert<A, S> {
    /// Timestamp of the alert (the closing window's start, as produced by the queries).
    pub ts: Timestamp,
    /// The alert payload.
    pub alert: A,
    /// The contributing source tuples, sorted by timestamp.
    pub sources: Vec<(Timestamp, S)>,
}

impl<A, S> OracleAlert<A, S> {
    /// Number of contributing source tuples.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}

fn window_starts(max_ts: Timestamp, size: Duration, advance: Duration) -> Vec<Timestamp> {
    let mut starts = Vec::new();
    let mut start = Timestamp::MIN;
    // Windows may start before the first tuple; the earliest useful start is 0.
    while start <= max_ts {
        starts.push(start);
        start += advance;
    }
    // Also include the windows that still contain max_ts but start after it minus size.
    let _ = size;
    starts
}

/// Ground truth for Q1: broken-down cars and the reports that prove each alert.
pub fn q1_oracle(
    reports: &[(Timestamp, PositionReport)],
) -> Vec<OracleAlert<StoppedCarCount, PositionReport>> {
    let max_ts = reports
        .iter()
        .map(|(ts, _)| *ts)
        .max()
        .unwrap_or(Timestamp::MIN);
    let mut alerts = Vec::new();
    for start in window_starts(max_ts, Q1_WINDOW_SIZE, Q1_WINDOW_ADVANCE) {
        let end = start + Q1_WINDOW_SIZE;
        // Group zero-speed reports by car within the window.
        let mut per_car: BTreeMap<u32, Vec<(Timestamp, PositionReport)>> = BTreeMap::new();
        for &(ts, report) in reports {
            if ts >= start && ts < end && report.speed == 0 {
                per_car.entry(report.car_id).or_default().push((ts, report));
            }
        }
        for (car_id, window) in per_car {
            let positions: BTreeSet<u32> = window.iter().map(|(_, r)| r.pos).collect();
            if window.len() as u32 == Q1_STOPPED_REPORTS && positions.len() == 1 {
                let last_pos = window.last().map(|(_, r)| r.pos).unwrap_or_default();
                alerts.push(OracleAlert {
                    ts: start,
                    alert: StoppedCarCount {
                        car_id,
                        count: window.len() as u32,
                        distinct_pos: positions.len() as u32,
                        last_pos,
                    },
                    sources: window,
                });
            }
        }
    }
    alerts
}

/// Ground truth for Q2: accidents (two or more stopped cars at one position) and the
/// position reports that prove each alert.
pub fn q2_oracle(
    reports: &[(Timestamp, PositionReport)],
) -> Vec<OracleAlert<AccidentAlert, PositionReport>> {
    let q1_alerts = q1_oracle(reports);
    let max_ts = q1_alerts
        .iter()
        .map(|a| a.ts)
        .max()
        .unwrap_or(Timestamp::MIN);
    let mut alerts = Vec::new();
    for start in window_starts(max_ts, Q2_ACCIDENT_WINDOW, Q2_ACCIDENT_WINDOW) {
        let end = start + Q2_ACCIDENT_WINDOW;
        // Group Q1 alerts by their last position within the tumbling window.
        let mut per_pos: BTreeMap<u32, Vec<&OracleAlert<StoppedCarCount, PositionReport>>> =
            BTreeMap::new();
        for alert in &q1_alerts {
            if alert.ts >= start && alert.ts < end {
                per_pos.entry(alert.alert.last_pos).or_default().push(alert);
            }
        }
        for (pos, group) in per_pos {
            let distinct_cars: BTreeSet<u32> = group.iter().map(|a| a.alert.car_id).collect();
            if distinct_cars.len() as u32 >= Q2_MIN_STOPPED_CARS {
                let mut sources: Vec<(Timestamp, PositionReport)> = group
                    .iter()
                    .flat_map(|a| a.sources.iter().copied())
                    .collect();
                sources.sort_by_key(|(ts, r)| (*ts, r.car_id, r.pos));
                sources.dedup();
                alerts.push(OracleAlert {
                    ts: start,
                    alert: AccidentAlert {
                        pos,
                        stopped_cars: distinct_cars.len() as u32,
                    },
                    sources,
                });
            }
        }
    }
    alerts
}

/// Ground truth for Q3: blackout days and the meter readings that prove each alert.
pub fn q3_oracle(
    readings: &[(Timestamp, MeterReading)],
) -> Vec<OracleAlert<BlackoutAlert, MeterReading>> {
    let max_ts = readings
        .iter()
        .map(|(ts, _)| *ts)
        .max()
        .unwrap_or(Timestamp::MIN);
    let mut alerts = Vec::new();
    for start in window_starts(max_ts, Q3_DAY_WINDOW, Q3_DAY_WINDOW) {
        let end = start + Q3_DAY_WINDOW;
        let mut per_meter: BTreeMap<u32, Vec<(Timestamp, MeterReading)>> = BTreeMap::new();
        for &(ts, reading) in readings {
            if ts >= start && ts < end {
                per_meter
                    .entry(reading.meter_id)
                    .or_default()
                    .push((ts, reading));
            }
        }
        let zero_meters: Vec<(u32, Vec<(Timestamp, MeterReading)>)> = per_meter
            .into_iter()
            .filter(|(_, day)| day.iter().map(|(_, r)| r.consumption).sum::<u32>() == 0)
            .collect();
        if zero_meters.len() as u32 > Q3_MIN_ZERO_METERS {
            let mut sources: Vec<(Timestamp, MeterReading)> = zero_meters
                .iter()
                .flat_map(|(_, day)| day.iter().copied())
                .collect();
            sources.sort_by_key(|(ts, r)| (*ts, r.meter_id));
            alerts.push(OracleAlert {
                ts: start,
                alert: BlackoutAlert {
                    zero_meters: zero_meters.len() as u32,
                },
                sources,
            });
        }
    }
    alerts
}

/// Ground truth for Q4: anomalous meters and the readings that prove each alert.
pub fn q4_oracle(
    readings: &[(Timestamp, MeterReading)],
) -> Vec<OracleAlert<AnomalyAlert, MeterReading>> {
    let max_ts = readings
        .iter()
        .map(|(ts, _)| *ts)
        .max()
        .unwrap_or(Timestamp::MIN);
    let mut alerts = Vec::new();
    for start in window_starts(max_ts, Q3_DAY_WINDOW, Q3_DAY_WINDOW) {
        let end = start + Q3_DAY_WINDOW;
        let mut per_meter: BTreeMap<u32, Vec<(Timestamp, MeterReading)>> = BTreeMap::new();
        for &(ts, reading) in readings {
            if ts >= start && ts < end {
                per_meter
                    .entry(reading.meter_id)
                    .or_default()
                    .push((ts, reading));
            }
        }
        for (meter_id, day) in per_meter {
            let total: u32 = day.iter().map(|(_, r)| r.consumption).sum();
            // The midnight reading joined by Q4 is the one at the start of this day.
            let Some(&(midnight_ts, midnight)) = day
                .iter()
                .find(|(ts, r)| *ts == start && r.hour_of_day == 0)
            else {
                continue;
            };
            let diff = (midnight.consumption * 24).abs_diff(total);
            if diff > Q4_ANOMALY_THRESHOLD {
                let mut sources = day.clone();
                if !sources
                    .iter()
                    .any(|&(ts, r)| ts == midnight_ts && r == midnight)
                {
                    sources.push((midnight_ts, midnight));
                }
                sources.sort_by_key(|(ts, r)| (*ts, r.meter_id));
                alerts.push(OracleAlert {
                    ts: start,
                    alert: AnomalyAlert {
                        meter_id,
                        consumption_diff: diff,
                    },
                    sources,
                });
            }
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_road::{LinearRoadConfig, LinearRoadGenerator};
    use crate::smart_grid::{SmartGridConfig, SmartGridGenerator};

    #[test]
    fn q1_oracle_finds_the_injected_breakdowns_with_four_sources_each() {
        let config = LinearRoadConfig::default();
        let generator = LinearRoadGenerator::new(config);
        let expected_cars: BTreeSet<u32> = generator.breakdown_cars().into_iter().collect();
        let reports = LinearRoadGenerator::to_vec(config);
        let alerts = q1_oracle(&reports);
        assert!(!alerts.is_empty());
        let cars: BTreeSet<u32> = alerts.iter().map(|a| a.alert.car_id).collect();
        assert_eq!(cars, expected_cars);
        assert!(alerts.iter().all(|a| a.source_count() == 4));
        assert!(alerts
            .iter()
            .all(|a| a.sources.iter().all(|(_, r)| r.speed == 0)));
    }

    #[test]
    fn q2_oracle_finds_accidents_with_eight_sources_each() {
        let config = LinearRoadConfig::default();
        let generator = LinearRoadGenerator::new(config);
        assert!(!generator.accident_groups().is_empty());
        let reports = LinearRoadGenerator::to_vec(config);
        let alerts = q2_oracle(&reports);
        assert!(!alerts.is_empty());
        // Two stopped cars, four reports each: 8 source tuples (the paper's Q2 figure).
        assert!(alerts.iter().all(|a| a.source_count() == 8));
        assert!(alerts.iter().all(|a| a.alert.stopped_cars >= 2));
    }

    #[test]
    fn q3_oracle_finds_the_blackout_with_192_sources() {
        let config = SmartGridConfig::default();
        let readings = SmartGridGenerator::to_vec(config);
        let alerts = q3_oracle(&readings);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].alert.zero_meters, config.blackout_meters);
        // 8 meters × 24 hourly readings = 192 source tuples (the paper's Q3 figure).
        assert_eq!(alerts[0].source_count(), 192);
    }

    #[test]
    fn q4_oracle_finds_the_anomalies_with_24_sources() {
        let config = SmartGridConfig::default();
        let generator = SmartGridGenerator::new(config);
        let expected: BTreeSet<u32> = generator.anomalous_meters().into_iter().collect();
        let readings = SmartGridGenerator::to_vec(config);
        let alerts = q4_oracle(&readings);
        assert!(!alerts.is_empty());
        let meters: BTreeSet<u32> = alerts.iter().map(|a| a.alert.meter_id).collect();
        assert_eq!(meters, expected);
        // 24 hourly readings per alert (the midnight reading is one of them).
        assert!(alerts.iter().all(|a| a.source_count() == 24));
    }

    #[test]
    fn oracles_report_nothing_on_empty_input() {
        assert!(q1_oracle(&[]).is_empty());
        assert!(q2_oracle(&[]).is_empty());
        assert!(q3_oracle(&[]).is_empty());
        assert!(q4_oracle(&[]).is_empty());
    }
}
