//! A deterministic, seeded simulator of the Linear Road vehicular workload.
//!
//! The original evaluation uses the Linear Road benchmark data generator; it is not
//! available offline, so this module simulates the relevant slice of its behaviour:
//! every car on one expressway emits a position report every 30 seconds, some cars
//! break down (reporting zero speed and an unchanged position for a configurable
//! number of consecutive reports — Q1's trigger) and some breakdowns happen in pairs
//! at the same position (Q2's accident trigger). The simulation is fully determined
//! by the configuration and seed, so tests can predict exactly which alerts (and which
//! provenance) a query must produce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use genealog_spe::operator::source::SourceGenerator;
use genealog_spe::{Duration, Timestamp};

use crate::types::PositionReport;

/// Configuration of the Linear Road simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearRoadConfig {
    /// Number of cars on the expressway.
    pub cars: u32,
    /// Number of reporting rounds (each car reports once per round).
    pub rounds: u32,
    /// Interval between a car's consecutive reports (30 s in the benchmark).
    pub report_period: Duration,
    /// Number of distinct positions on the expressway.
    pub positions: u32,
    /// Every `breakdown_every`-th car breaks down once during the run (0 = never).
    pub breakdown_every: u32,
    /// Number of consecutive zero-speed reports a broken-down car emits (≥ 4 to
    /// trigger Q1).
    pub breakdown_reports: u32,
    /// Every `accident_pair_every`-th breakdown also stops the next car at the same
    /// position and time, producing a Q2 accident (0 = never).
    pub accident_pair_every: u32,
    /// Seed of the pseudo-random generator driving speeds and positions.
    pub seed: u64,
}

impl Default for LinearRoadConfig {
    fn default() -> Self {
        LinearRoadConfig {
            cars: 100,
            rounds: 40,
            report_period: Duration::from_secs(30),
            positions: 1_000,
            breakdown_every: 10,
            breakdown_reports: 4,
            accident_pair_every: 2,
            seed: 42,
        }
    }
}

impl LinearRoadConfig {
    /// A small configuration convenient for unit tests.
    pub fn small() -> Self {
        LinearRoadConfig {
            cars: 20,
            rounds: 20,
            ..Default::default()
        }
    }

    /// Total number of position reports the simulation will emit.
    pub fn total_reports(&self) -> u64 {
        self.cars as u64 * self.rounds as u64
    }
}

#[derive(Debug, Clone, Copy)]
struct CarPlan {
    /// Round at which the car starts reporting zero speed, if it breaks down.
    breakdown_start: Option<u32>,
    /// Position at which the breakdown happens.
    breakdown_pos: u32,
    /// Initial position of the car.
    start_pos: u32,
    /// Cruising speed of the car.
    speed: u32,
}

/// The Linear Road position-report generator.
#[derive(Debug, Clone)]
pub struct LinearRoadGenerator {
    config: LinearRoadConfig,
    plans: Vec<CarPlan>,
    round: u32,
    car: u32,
}

impl LinearRoadGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero cars or zero rounds.
    pub fn new(config: LinearRoadConfig) -> Self {
        assert!(config.cars > 0, "the simulation needs at least one car");
        assert!(config.rounds > 0, "the simulation needs at least one round");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let breakdown_window = config
            .rounds
            .saturating_sub(config.breakdown_reports + 1)
            .max(1);
        let mut plans: Vec<CarPlan> = (0..config.cars)
            .map(|car| {
                let is_breakdown =
                    config.breakdown_every > 0 && car.is_multiple_of(config.breakdown_every);
                let breakdown_start = if is_breakdown {
                    Some(1 + rng.gen_range(0..breakdown_window))
                } else {
                    None
                };
                CarPlan {
                    breakdown_start,
                    breakdown_pos: rng.gen_range(0..config.positions.max(1)),
                    start_pos: rng.gen_range(0..config.positions.max(1)),
                    speed: 40 + rng.gen_range(0u32..60),
                }
            })
            .collect();
        // Pair selected breakdowns into accidents: the car following a paired
        // breakdown car stops at the same round and position.
        if config.breakdown_every > 1 && config.accident_pair_every > 0 {
            let mut breakdown_index = 0u32;
            for car in 0..config.cars {
                // Only the originally planned breakdowns are considered for pairing,
                // so `accident_pair_every` keeps its "every Nth breakdown" meaning.
                if !car.is_multiple_of(config.breakdown_every)
                    || plans[car as usize].breakdown_start.is_none()
                {
                    continue;
                }
                if breakdown_index.is_multiple_of(config.accident_pair_every) {
                    let partner = car + 1;
                    if partner < config.cars && plans[partner as usize].breakdown_start.is_none() {
                        plans[partner as usize].breakdown_start =
                            plans[car as usize].breakdown_start;
                        plans[partner as usize].breakdown_pos = plans[car as usize].breakdown_pos;
                    }
                }
                breakdown_index += 1;
            }
        }
        LinearRoadGenerator {
            config,
            plans,
            round: 0,
            car: 0,
        }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &LinearRoadConfig {
        &self.config
    }

    /// Cars that break down during the simulation (each triggers Q1 alerts, provided
    /// `breakdown_reports >= 4`).
    pub fn breakdown_cars(&self) -> Vec<u32> {
        self.plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.breakdown_start.is_some())
            .map(|(car, _)| car as u32)
            .collect()
    }

    /// Groups of cars stopped at the same position and time (each group of two or more
    /// triggers Q2 accident alerts).
    pub fn accident_groups(&self) -> Vec<Vec<u32>> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        for (car, plan) in self.plans.iter().enumerate() {
            if let Some(start) = plan.breakdown_start {
                groups
                    .entry((start, plan.breakdown_pos))
                    .or_default()
                    .push(car as u32);
            }
        }
        groups.into_values().filter(|g| g.len() >= 2).collect()
    }

    /// Materialises the whole simulation as a timestamped vector (useful for the
    /// provenance oracle, which needs to inspect the raw input).
    pub fn to_vec(config: LinearRoadConfig) -> Vec<(Timestamp, PositionReport)> {
        let mut generator = LinearRoadGenerator::new(config);
        let mut out = Vec::with_capacity(config.total_reports() as usize);
        while let Some(item) = generator.next_tuple() {
            out.push(item);
        }
        out
    }

    fn report_for(&self, round: u32, car: u32) -> PositionReport {
        let plan = &self.plans[car as usize];
        let broken = plan
            .breakdown_start
            .map(|start| round >= start && round < start + self.config.breakdown_reports)
            .unwrap_or(false);
        if broken {
            PositionReport {
                car_id: car,
                speed: 0,
                pos: plan.breakdown_pos,
            }
        } else {
            // The car cruises: its position advances every round, wrapping around the
            // expressway, so consecutive reports never share a position.
            let pos = (plan.start_pos + round * plan.speed / 10) % self.config.positions.max(1);
            PositionReport {
                car_id: car,
                speed: plan.speed,
                pos,
            }
        }
    }
}

impl SourceGenerator for LinearRoadGenerator {
    type Item = PositionReport;

    fn next_tuple(&mut self) -> Option<(Timestamp, PositionReport)> {
        if self.round >= self.config.rounds {
            return None;
        }
        let ts = Timestamp::from_millis(self.round as u64 * self.config.report_period.as_millis());
        let report = self.report_for(self.round, self.car);
        self.car += 1;
        if self.car >= self.config.cars {
            self.car = 0;
            self.round += 1;
        }
        Some((ts, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_one_report_per_car_per_round_in_timestamp_order() {
        let config = LinearRoadConfig {
            cars: 5,
            rounds: 3,
            ..LinearRoadConfig::default()
        };
        let reports = LinearRoadGenerator::to_vec(config);
        assert_eq!(reports.len(), 15);
        assert!(reports.windows(2).all(|w| w[0].0 <= w[1].0));
        // Round boundaries: 5 reports at ts 0, 5 at 30 s, 5 at 60 s.
        assert_eq!(
            reports.iter().filter(|(ts, _)| ts.as_secs() == 0).count(),
            5
        );
        assert_eq!(
            reports.iter().filter(|(ts, _)| ts.as_secs() == 30).count(),
            5
        );
        assert_eq!(
            reports.iter().filter(|(ts, _)| ts.as_secs() == 60).count(),
            5
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let config = LinearRoadConfig::small();
        let a = LinearRoadGenerator::to_vec(config);
        let b = LinearRoadGenerator::to_vec(config);
        assert_eq!(a, b);
        let different_seed = LinearRoadConfig { seed: 43, ..config };
        let c = LinearRoadGenerator::to_vec(different_seed);
        assert_ne!(a, c);
    }

    #[test]
    fn breakdown_cars_emit_consecutive_zero_speed_reports_at_one_position() {
        let config = LinearRoadConfig::small();
        let generator = LinearRoadGenerator::new(config);
        let breakdown_cars = generator.breakdown_cars();
        assert!(!breakdown_cars.is_empty());
        let reports = LinearRoadGenerator::to_vec(config);
        for car in breakdown_cars {
            let zero: Vec<_> = reports
                .iter()
                .filter(|(_, r)| r.car_id == car && r.speed == 0)
                .collect();
            assert_eq!(
                zero.len(),
                config.breakdown_reports as usize,
                "car {car} must report zero speed exactly breakdown_reports times"
            );
            let positions: std::collections::HashSet<u32> =
                zero.iter().map(|(_, r)| r.pos).collect();
            assert_eq!(
                positions.len(),
                1,
                "all zero-speed reports share one position"
            );
        }
    }

    #[test]
    fn moving_cars_never_repeat_a_position_four_times() {
        let config = LinearRoadConfig::small();
        let generator = LinearRoadGenerator::new(config);
        let breakdown: std::collections::HashSet<u32> =
            generator.breakdown_cars().into_iter().collect();
        let reports = LinearRoadGenerator::to_vec(config);
        for car in 0..config.cars {
            if breakdown.contains(&car) {
                continue;
            }
            let zero_speed = reports
                .iter()
                .filter(|(_, r)| r.car_id == car && r.speed == 0)
                .count();
            assert_eq!(zero_speed, 0, "healthy cars never report zero speed");
        }
    }

    #[test]
    fn accident_groups_share_round_and_position() {
        let config = LinearRoadConfig::default();
        let generator = LinearRoadGenerator::new(config);
        let groups = generator.accident_groups();
        assert!(
            !groups.is_empty(),
            "the default configuration injects accidents"
        );
        let reports = LinearRoadGenerator::to_vec(config);
        for group in groups {
            assert!(group.len() >= 2);
            // All cars of the group report speed 0 at the same position.
            let positions: std::collections::HashSet<u32> = reports
                .iter()
                .filter(|(_, r)| group.contains(&r.car_id) && r.speed == 0)
                .map(|(_, r)| r.pos)
                .collect();
            assert_eq!(positions.len(), 1);
        }
    }

    #[test]
    fn total_report_count_matches_config() {
        let config = LinearRoadConfig {
            cars: 7,
            rounds: 11,
            ..LinearRoadConfig::default()
        };
        assert_eq!(config.total_reports(), 77);
        assert_eq!(LinearRoadGenerator::to_vec(config).len(), 77);
    }

    #[test]
    #[should_panic(expected = "at least one car")]
    fn zero_cars_is_rejected() {
        let _ = LinearRoadGenerator::new(LinearRoadConfig {
            cars: 0,
            ..LinearRoadConfig::default()
        });
    }
}
