//! # genealog-workloads — workloads and queries of the GeneaLog evaluation
//!
//! The paper evaluates GeneaLog on four monitoring queries (§7):
//!
//! * **Q1** — broken-down vehicle detection on the Linear Road benchmark: a car is
//!   stopped if four consecutive position reports have zero speed and the same
//!   position (4 source tuples per alert).
//! * **Q2** — accident detection: two or more stopped cars at the same position in the
//!   same 30-second window (8 source tuples per alert).
//! * **Q3** — long-term blackout detection on a smart grid: more than seven meters
//!   report zero consumption for a whole day (≈192 source tuples per alert).
//! * **Q4** — meter anomaly detection: the consumption reported at midnight is
//!   inconsistent with the daily total (24 source tuples per alert).
//!
//! The original paper uses the Linear Road data generator and traces from a real
//! smart-grid deployment; neither is available here, so [`linear_road`] and
//! [`smart_grid`] provide deterministic, seeded simulators that emit the same schemas
//! at the same cadence and inject stopped cars / accidents / blackouts / anomalies
//! with configurable frequency (see DESIGN.md for the substitution argument).
//!
//! Every query builder is generic over the engine's provenance system, so the same
//! query can be deployed with no provenance (NP), GeneaLog (GL) or the Ariadne-style
//! baseline (BL), exactly like the evaluation's three configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linear_road;
pub mod oracle;
pub mod queries;
pub mod smart_grid;
pub mod types;

pub use linear_road::{LinearRoadConfig, LinearRoadGenerator};
pub use smart_grid::{SmartGridConfig, SmartGridGenerator};
pub use types::{
    AccidentAlert, AnomalyAlert, BlackoutAlert, DailyConsumption, MeterReading, PositionReport,
    StoppedCarCount,
};
