//! The four evaluation queries (Q1–Q4) as reusable builders.
//!
//! Every builder is generic over the engine's
//! [`ProvenanceSystem`], so the same query
//! graph can be deployed with `NoProvenance` (NP), `genealog::GeneaLog` (GL) or
//! `genealog_baseline::AriadneBaseline` (BL).
//!
//! Each query is exposed both as a single function building the whole graph
//! (`build_qN`) and as two *stages* matching the distributed deployments of
//! Figures 7, 9C, 10C and 11C (`qN_stage1` deployed on the first SPE instance,
//! `qN_stage2` on the second); the third instance of those deployments only runs the
//! provenance MU operator, which lives in `genealog::unfolder`.

use std::collections::BTreeSet;

use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::provenance::ProvenanceSystem;
use genealog_spe::query::{Query, StreamRef};
use genealog_spe::{Duration, WindowSpec};

use crate::types::{
    AccidentAlert, AnomalyAlert, BlackoutAlert, DailyConsumption, MeterReading, PositionReport,
    StoppedCarCount,
};

/// Window size of the Q1/Q2 stopped-car Aggregate (120 s).
pub const Q1_WINDOW_SIZE: Duration = Duration::from_millis(120_000);
/// Window advance of the Q1/Q2 stopped-car Aggregate (30 s).
pub const Q1_WINDOW_ADVANCE: Duration = Duration::from_millis(30_000);
/// Number of consecutive zero-speed reports that define a stopped car.
pub const Q1_STOPPED_REPORTS: u32 = 4;
/// Window size/advance of the Q2 accident Aggregate (30 s).
pub const Q2_ACCIDENT_WINDOW: Duration = Duration::from_millis(30_000);
/// Minimum number of stopped cars at one position that defines an accident.
pub const Q2_MIN_STOPPED_CARS: u32 = 2;
/// Window of the daily aggregations in Q3/Q4 (1 day).
pub const Q3_DAY_WINDOW: Duration = Duration::from_millis(86_400_000);
/// Minimum number of zero-consumption meters that defines a blackout.
pub const Q3_MIN_ZERO_METERS: u32 = 7;
/// Window of the Q4 Join (1 hour).
pub const Q4_JOIN_WINDOW: Duration = Duration::from_millis(3_600_000);
/// Threshold on the consumption difference that defines a Q4 anomaly.
pub const Q4_ANOMALY_THRESHOLD: u32 = 200;

fn q1_window() -> WindowSpec {
    WindowSpec::new(Q1_WINDOW_SIZE, Q1_WINDOW_ADVANCE).expect("constants are valid")
}

fn day_window() -> WindowSpec {
    WindowSpec::tumbling(Q3_DAY_WINDOW).expect("constants are valid")
}

// ---------------------------------------------------------------------------
// Q1 — broken-down vehicle detection (Linear Road)
// ---------------------------------------------------------------------------

/// First stage of Q1 (deployed on SPE instance 1 in Figure 7): zero-speed Filter
/// followed by the per-car 120 s / 30 s Aggregate.
pub fn q1_stage1<P: ProvenanceSystem>(
    q: &mut Query<P>,
    reports: StreamRef<PositionReport, P::Meta>,
) -> StreamRef<StoppedCarCount, P::Meta> {
    let stopped = q.filter("q1-speed0", reports, |r: &PositionReport| r.speed == 0);
    q.aggregate(
        "q1-count",
        stopped,
        q1_window(),
        |r: &PositionReport| r.car_id,
        |w: &WindowView<'_, u32, PositionReport, P::Meta>| {
            let mut distinct = BTreeSet::new();
            let mut last_pos = 0;
            let mut count = 0u32;
            for report in w.payloads() {
                distinct.insert(report.pos);
                last_pos = report.pos;
                count += 1;
            }
            StoppedCarCount {
                car_id: *w.key,
                count,
                distinct_pos: distinct.len() as u32,
                last_pos,
            }
        },
    )
}

/// Second stage of Q1 (SPE instance 2 in Figure 7): the `count == 4 && dist_pos == 1`
/// Filter producing the broken-down-car alerts.
pub fn q1_stage2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    counts: StreamRef<StoppedCarCount, P::Meta>,
) -> StreamRef<StoppedCarCount, P::Meta> {
    q.filter("q1-alert", counts, |c: &StoppedCarCount| {
        c.count == Q1_STOPPED_REPORTS && c.distinct_pos == 1
    })
}

/// Builds the whole Q1 graph on one query.
pub fn build_q1<P: ProvenanceSystem>(
    q: &mut Query<P>,
    reports: StreamRef<PositionReport, P::Meta>,
) -> StreamRef<StoppedCarCount, P::Meta> {
    let counts = q1_stage1(q, reports);
    q1_stage2(q, counts)
}

/// Time span the provenance of a Q1 sink tuple can reach into the past (used to size
/// the MU Join window in distributed deployments).
pub fn q1_provenance_window() -> Duration {
    Q1_WINDOW_SIZE + Q1_WINDOW_ADVANCE
}

// ---------------------------------------------------------------------------
// Q2 — accident detection (Linear Road)
// ---------------------------------------------------------------------------

/// Second stage of Q2 (SPE instance 2 in Figure 9C): Q1's alert Filter, the per-position
/// 30 s Aggregate counting distinct stopped cars, and the `count >= 2` Filter.
pub fn q2_stage2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    counts: StreamRef<StoppedCarCount, P::Meta>,
) -> StreamRef<AccidentAlert, P::Meta> {
    let stopped = q.filter("q2-stopped", counts, |c: &StoppedCarCount| {
        c.count == Q1_STOPPED_REPORTS && c.distinct_pos == 1
    });
    let per_position = q.aggregate(
        "q2-accident-count",
        stopped,
        WindowSpec::tumbling(Q2_ACCIDENT_WINDOW).expect("constant window"),
        |c: &StoppedCarCount| c.last_pos,
        |w: &WindowView<'_, u32, StoppedCarCount, P::Meta>| {
            let distinct_cars: BTreeSet<u32> = w.payloads().map(|c| c.car_id).collect();
            AccidentAlert {
                pos: *w.key,
                stopped_cars: distinct_cars.len() as u32,
            }
        },
    );
    q.filter("q2-alert", per_position, |a: &AccidentAlert| {
        a.stopped_cars >= Q2_MIN_STOPPED_CARS
    })
}

/// Builds the whole Q2 graph on one query (stage 1 is shared with Q1).
pub fn build_q2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    reports: StreamRef<PositionReport, P::Meta>,
) -> StreamRef<AccidentAlert, P::Meta> {
    let counts = q1_stage1(q, reports);
    q2_stage2(q, counts)
}

/// Provenance reach of a Q2 sink tuple (see [`q1_provenance_window`]).
pub fn q2_provenance_window() -> Duration {
    Q1_WINDOW_SIZE + Q1_WINDOW_ADVANCE + Q2_ACCIDENT_WINDOW
}

// ---------------------------------------------------------------------------
// Q3 — long-term blackout detection (Smart Grid)
// ---------------------------------------------------------------------------

/// First stage of Q3 (SPE instance 1 in Figure 10C): per-meter daily consumption sum
/// followed by the zero-consumption Filter.
pub fn q3_stage1<P: ProvenanceSystem>(
    q: &mut Query<P>,
    readings: StreamRef<MeterReading, P::Meta>,
) -> StreamRef<DailyConsumption, P::Meta> {
    let daily = q.aggregate(
        "q3-daily-sum",
        readings,
        day_window(),
        |r: &MeterReading| r.meter_id,
        |w: &WindowView<'_, u32, MeterReading, P::Meta>| DailyConsumption {
            meter_id: *w.key,
            total: w.payloads().map(|r| r.consumption).sum(),
        },
    );
    q.filter("q3-zero", daily, |d: &DailyConsumption| d.total == 0)
}

/// Second stage of Q3 (SPE instance 2 in Figure 10C): the daily count of
/// zero-consumption meters and the `count > 7` Filter.
pub fn q3_stage2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    zero_days: StreamRef<DailyConsumption, P::Meta>,
) -> StreamRef<BlackoutAlert, P::Meta> {
    let per_day = q.aggregate(
        "q3-zero-count",
        zero_days,
        day_window(),
        |_: &DailyConsumption| 0u8,
        |w: &WindowView<'_, u8, DailyConsumption, P::Meta>| BlackoutAlert {
            zero_meters: w.len() as u32,
        },
    );
    q.filter("q3-alert", per_day, |a: &BlackoutAlert| {
        a.zero_meters > Q3_MIN_ZERO_METERS
    })
}

/// Builds the whole Q3 graph on one query.
pub fn build_q3<P: ProvenanceSystem>(
    q: &mut Query<P>,
    readings: StreamRef<MeterReading, P::Meta>,
) -> StreamRef<BlackoutAlert, P::Meta> {
    let zero_days = q3_stage1(q, readings);
    q3_stage2(q, zero_days)
}

/// Provenance reach of a Q3 sink tuple: two nested day-long windows.
pub fn q3_provenance_window() -> Duration {
    Q3_DAY_WINDOW + Q3_DAY_WINDOW + Duration::from_hours(1)
}

// ---------------------------------------------------------------------------
// Q4 — meter anomaly detection (Smart Grid)
// ---------------------------------------------------------------------------

/// First stage of Q4 (SPE instance 1 in Figure 11C): the Multiplex splitting the
/// readings into the per-meter daily Aggregate and the midnight Filter. Returns the
/// two streams that the second stage joins.
pub fn q4_stage1<P: ProvenanceSystem>(
    q: &mut Query<P>,
    readings: StreamRef<MeterReading, P::Meta>,
) -> (
    StreamRef<DailyConsumption, P::Meta>,
    StreamRef<MeterReading, P::Meta>,
) {
    let branches = q.multiplex("q4-mux", readings, 2);
    let mut branches = branches.into_iter();
    let to_aggregate = branches.next().expect("two branches");
    let to_filter = branches.next().expect("two branches");
    let daily = q.aggregate(
        "q4-daily-sum",
        to_aggregate,
        day_window(),
        |r: &MeterReading| r.meter_id,
        |w: &WindowView<'_, u32, MeterReading, P::Meta>| DailyConsumption {
            meter_id: *w.key,
            total: w.payloads().map(|r| r.consumption).sum(),
        },
    );
    let midnight = q.filter("q4-midnight", to_filter, |r: &MeterReading| {
        r.hour_of_day == 0
    });
    (daily, midnight)
}

/// Second stage of Q4 (SPE instance 2 in Figure 11C): the one-hour Join of the daily
/// totals with the midnight readings and the anomaly-threshold Filter.
pub fn q4_stage2<P: ProvenanceSystem>(
    q: &mut Query<P>,
    daily: StreamRef<DailyConsumption, P::Meta>,
    midnight: StreamRef<MeterReading, P::Meta>,
) -> StreamRef<AnomalyAlert, P::Meta> {
    let joined = q.join(
        "q4-join",
        daily,
        midnight,
        Q4_JOIN_WINDOW,
        |d: &DailyConsumption, r: &MeterReading| d.meter_id == r.meter_id,
        |d: &DailyConsumption, r: &MeterReading| AnomalyAlert {
            meter_id: d.meter_id,
            consumption_diff: (r.consumption * 24).abs_diff(d.total),
        },
    );
    q.filter("q4-alert", joined, |a: &AnomalyAlert| {
        a.consumption_diff > Q4_ANOMALY_THRESHOLD
    })
}

/// Builds the whole Q4 graph on one query.
pub fn build_q4<P: ProvenanceSystem>(
    q: &mut Query<P>,
    readings: StreamRef<MeterReading, P::Meta>,
) -> StreamRef<AnomalyAlert, P::Meta> {
    let (daily, midnight) = q4_stage1(q, readings);
    q4_stage2(q, daily, midnight)
}

/// Provenance reach of a Q4 sink tuple: one day-long window plus the Join window.
pub fn q4_provenance_window() -> Duration {
    Q3_DAY_WINDOW + Q4_JOIN_WINDOW + Duration::from_hours(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_road::{LinearRoadConfig, LinearRoadGenerator};
    use crate::smart_grid::{SmartGridConfig, SmartGridGenerator};
    use genealog_spe::provenance::NoProvenance;

    #[test]
    fn q1_detects_exactly_the_broken_down_cars() {
        let config = LinearRoadConfig::default();
        let generator = LinearRoadGenerator::new(config);
        let expected: std::collections::BTreeSet<u32> =
            generator.breakdown_cars().into_iter().collect();

        let mut q = Query::new(NoProvenance);
        let reports = q.source("linear-road", generator);
        let alerts = build_q1(&mut q, reports);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();

        let detected: std::collections::BTreeSet<u32> =
            out.tuples().iter().map(|t| t.data.car_id).collect();
        assert_eq!(detected, expected);
        // Every alert has exactly 4 zero-speed reports at one position.
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.data.count == 4 && t.data.distinct_pos == 1));
    }

    #[test]
    fn q2_detects_exactly_the_accident_positions() {
        let config = LinearRoadConfig::default();
        let generator = LinearRoadGenerator::new(config);
        let accident_groups = generator.accident_groups();
        assert!(!accident_groups.is_empty());

        let mut q = Query::new(NoProvenance);
        let reports = q.source("linear-road", generator);
        let alerts = build_q2(&mut q, reports);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();

        let alerts = out.tuples();
        assert!(!alerts.is_empty());
        assert!(alerts.iter().all(|t| t.data.stopped_cars >= 2));
        // Each accident group (>= 2 cars stopped at one position) is reported at least once.
        assert!(alerts.len() >= accident_groups.len());
    }

    #[test]
    fn q3_detects_the_blackout_day() {
        let config = SmartGridConfig::default();
        let mut q = Query::new(NoProvenance);
        let readings = q.source("smart-grid", SmartGridGenerator::new(config));
        let alerts = build_q3(&mut q, readings);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();

        let alerts = out.tuples();
        assert_eq!(alerts.len(), 1, "exactly one blackout day is injected");
        assert_eq!(alerts[0].data.zero_meters, config.blackout_meters);
        // The alert carries the blackout day's timestamp.
        assert_eq!(
            alerts[0].ts.as_millis(),
            config.blackout_day as u64 * Q3_DAY_WINDOW.as_millis()
        );
    }

    #[test]
    fn q3_raises_no_alert_without_enough_blackout_meters() {
        let config = SmartGridConfig {
            blackout_meters: 5, // below the > 7 threshold
            ..SmartGridConfig::default()
        };
        let mut q = Query::new(NoProvenance);
        let readings = q.source("smart-grid", SmartGridGenerator::new(config));
        let alerts = build_q3(&mut q, readings);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn q4_detects_exactly_the_anomalous_meters() {
        let config = SmartGridConfig::default();
        let generator = SmartGridGenerator::new(config);
        let expected: std::collections::BTreeSet<u32> =
            generator.anomalous_meters().into_iter().collect();
        assert!(!expected.is_empty());

        let mut q = Query::new(NoProvenance);
        let readings = q.source("smart-grid", generator);
        let alerts = build_q4(&mut q, readings);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();

        let detected: std::collections::BTreeSet<u32> =
            out.tuples().iter().map(|t| t.data.meter_id).collect();
        assert_eq!(detected, expected);
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.data.consumption_diff > Q4_ANOMALY_THRESHOLD));
    }

    #[test]
    fn healthy_meters_never_trigger_q4() {
        let config = SmartGridConfig {
            anomaly_every: 0,
            blackout_meters: 0,
            ..SmartGridConfig::default()
        };
        let mut q = Query::new(NoProvenance);
        let readings = q.source("smart-grid", SmartGridGenerator::new(config));
        let alerts = build_q4(&mut q, readings);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn provenance_windows_cover_the_query_windows() {
        assert!(q1_provenance_window() >= Q1_WINDOW_SIZE);
        assert!(q2_provenance_window() >= Q1_WINDOW_SIZE + Q2_ACCIDENT_WINDOW);
        assert!(q3_provenance_window() >= Q3_DAY_WINDOW + Q3_DAY_WINDOW);
        assert!(q4_provenance_window() >= Q3_DAY_WINDOW + Q4_JOIN_WINDOW);
    }

    #[test]
    fn stage_split_equals_full_query_for_q1() {
        let config = LinearRoadConfig::small();
        // Full query.
        let mut q_full = Query::new(NoProvenance);
        let reports = q_full.source("lr", LinearRoadGenerator::new(config));
        let alerts = build_q1(&mut q_full, reports);
        let out_full = q_full.collecting_sink("alerts", alerts);
        q_full.deploy().unwrap().wait().unwrap();
        // Staged query (still within one process, but composed from the two stages).
        let mut q_staged = Query::new(NoProvenance);
        let reports = q_staged.source("lr", LinearRoadGenerator::new(config));
        let counts = q1_stage1(&mut q_staged, reports);
        let alerts = q1_stage2(&mut q_staged, counts);
        let out_staged = q_staged.collecting_sink("alerts", alerts);
        q_staged.deploy().unwrap().wait().unwrap();

        let full: Vec<_> = out_full.tuples().iter().map(|t| (t.ts, t.data)).collect();
        let staged: Vec<_> = out_staged.tuples().iter().map(|t| (t.ts, t.data)).collect();
        assert_eq!(full, staged);
    }
}
