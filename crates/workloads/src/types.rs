//! Tuple schemas of the evaluation queries.
//!
//! Source schemas follow the paper: Linear Road position reports are
//! `⟨ts, car_id, speed, pos⟩` and smart-meter readings are `⟨ts, meter_id, cons⟩`
//! (the timestamp lives on the engine tuple, not in the payload). Intermediate and
//! alert schemas mirror the figures of §7.

/// A Linear Road position report (`⟨car_id, speed, pos⟩`), emitted every 30 seconds
/// per car.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PositionReport {
    /// Vehicle identifier.
    pub car_id: u32,
    /// Reported speed (0 when the car is stationary).
    pub speed: u32,
    /// Position on the expressway (single scalar position, as in the paper's
    /// simplified schema).
    pub pos: u32,
}

/// Output of Q1's Aggregate and of the final Q1 Filter: per-car statistics over the
/// 120-second window (`⟨car_id, count, dist_pos, last_pos⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoppedCarCount {
    /// Vehicle identifier (the group-by key).
    pub car_id: u32,
    /// Number of zero-speed reports of the car in the window.
    pub count: u32,
    /// Number of distinct positions among those reports.
    pub distinct_pos: u32,
    /// Last reported position (the extra field Q2 groups by).
    pub last_pos: u32,
}

/// Output of Q2: an accident alert (`⟨last_pos, count⟩` with `count >= 2` stopped cars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccidentAlert {
    /// Position at which the stopped cars were detected.
    pub pos: u32,
    /// Number of distinct stopped cars at the position.
    pub stopped_cars: u32,
}

/// A smart-meter reading (`⟨meter_id, cons⟩`), emitted hourly.
///
/// The reading also carries the local hour of day (0–23); the paper's Q4 filters
/// midnight readings with a predicate on the timestamp (`ts % 24 == 0`), and exposing
/// the hour in the payload lets the same predicate be expressed with a standard
/// payload Filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterReading {
    /// Meter identifier.
    pub meter_id: u32,
    /// Energy consumed in the past hour (integer consumption units).
    pub consumption: u32,
    /// Local hour of day of the reading (0 = midnight).
    pub hour_of_day: u32,
}

/// Output of the per-meter daily aggregation in Q3/Q4 (`⟨meter_id, cons_sum⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DailyConsumption {
    /// Meter identifier (the group-by key).
    pub meter_id: u32,
    /// Total consumption over the day.
    pub total: u32,
}

/// Output of Q3: a blackout alert (`⟨count⟩` meters with zero daily consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlackoutAlert {
    /// Number of meters that reported zero consumption for the whole day.
    pub zero_meters: u32,
}

/// Output of Q4: an anomaly alert
/// (`⟨meter_id, cons_diff⟩` where the midnight reading is inconsistent with the daily total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnomalyAlert {
    /// Meter identifier.
    pub meter_id: u32,
    /// Absolute difference between the extrapolated midnight consumption and the
    /// daily total.
    pub consumption_diff: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn schemas_are_value_types() {
        fn assert_value<T: Copy + Eq + std::hash::Hash + std::fmt::Debug + Send + Sync>() {}
        assert_value::<PositionReport>();
        assert_value::<StoppedCarCount>();
        assert_value::<AccidentAlert>();
        assert_value::<MeterReading>();
        assert_value::<DailyConsumption>();
        assert_value::<BlackoutAlert>();
        assert_value::<AnomalyAlert>();
    }

    #[test]
    fn reports_hash_and_compare_by_value() {
        let a = PositionReport {
            car_id: 1,
            speed: 0,
            pos: 7,
        };
        let b = PositionReport {
            car_id: 1,
            speed: 0,
            pos: 7,
        };
        assert_eq!(a, b);
        let set: HashSet<PositionReport> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }
}
