//! A deterministic, seeded simulator of the Smart Grid workload.
//!
//! The original evaluation uses hourly consumption readings from a real smart-grid
//! deployment. Those traces are not available, so this module synthesises them: every
//! meter reports an hourly consumption around a configurable baseline; on a chosen day
//! a configurable set of meters reports zero consumption for the whole day (Q3's
//! blackout trigger), and selected meters report a disproportionate consumption at
//! midnight (Q4's anomaly trigger). The simulation is fully determined by its
//! configuration and seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use genealog_spe::operator::source::SourceGenerator;
use genealog_spe::{Duration, Timestamp};

use crate::types::MeterReading;

/// Configuration of the Smart Grid simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartGridConfig {
    /// Number of smart meters.
    pub meters: u32,
    /// Number of simulated days.
    pub days: u32,
    /// Interval between readings of one meter (1 hour in the paper).
    pub report_period: Duration,
    /// Baseline hourly consumption of a healthy meter.
    pub base_consumption: u32,
    /// Random noise added to the baseline (uniform in `0..=noise`).
    pub noise: u32,
    /// Number of meters that black out together on `blackout_day` (0 = no blackout).
    /// Q3 raises an alert when more than 7 meters report zero for a whole day.
    pub blackout_meters: u32,
    /// Day (0-based) on which the blackout happens.
    pub blackout_day: u32,
    /// Every `anomaly_every`-th meter reports an anomalous midnight value on
    /// `anomaly_day` (0 = no anomalies).
    pub anomaly_every: u32,
    /// Day (0-based) on which the midnight anomalies happen.
    pub anomaly_day: u32,
    /// Consumption reported at midnight by an anomalous meter.
    pub anomaly_midnight_consumption: u32,
    /// Seed of the pseudo-random generator.
    pub seed: u64,
}

impl Default for SmartGridConfig {
    fn default() -> Self {
        SmartGridConfig {
            meters: 100,
            days: 3,
            report_period: Duration::from_hours(1),
            base_consumption: 10,
            noise: 2,
            blackout_meters: 8,
            blackout_day: 1,
            anomaly_every: 10,
            anomaly_day: 1,
            anomaly_midnight_consumption: 500,
            seed: 7,
        }
    }
}

impl SmartGridConfig {
    /// A small configuration convenient for unit tests.
    pub fn small() -> Self {
        SmartGridConfig {
            meters: 20,
            days: 2,
            blackout_day: 0,
            anomaly_day: 0,
            ..Default::default()
        }
    }

    /// Total number of readings the simulation will emit.
    pub fn total_readings(&self) -> u64 {
        self.meters as u64 * self.days as u64 * 24
    }
}

/// The Smart Grid reading generator.
#[derive(Debug, Clone)]
pub struct SmartGridGenerator {
    config: SmartGridConfig,
    rng: SmallRng,
    hour: u32,
    meter: u32,
}

impl SmartGridGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero meters or zero days.
    pub fn new(config: SmartGridConfig) -> Self {
        assert!(config.meters > 0, "the simulation needs at least one meter");
        assert!(config.days > 0, "the simulation needs at least one day");
        SmartGridGenerator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            hour: 0,
            meter: 0,
        }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &SmartGridConfig {
        &self.config
    }

    /// Whether `meter` blacks out on `day`.
    pub fn is_blackout(&self, meter: u32, day: u32) -> bool {
        day == self.config.blackout_day && meter < self.config.blackout_meters
    }

    /// Whether `meter` reports an anomalous midnight value on `day`.
    pub fn is_anomalous(&self, meter: u32, day: u32) -> bool {
        self.config.anomaly_every > 0
            && day == self.config.anomaly_day
            && meter.is_multiple_of(self.config.anomaly_every)
            && !self.is_blackout(meter, day)
    }

    /// Meters expected to trigger Q4 anomaly alerts.
    pub fn anomalous_meters(&self) -> Vec<u32> {
        (0..self.config.meters)
            .filter(|&m| self.is_anomalous(m, self.config.anomaly_day))
            .collect()
    }

    /// Materialises the whole simulation as a timestamped vector.
    pub fn to_vec(config: SmartGridConfig) -> Vec<(Timestamp, MeterReading)> {
        let mut generator = SmartGridGenerator::new(config);
        let mut out = Vec::with_capacity(config.total_readings() as usize);
        while let Some(item) = generator.next_tuple() {
            out.push(item);
        }
        out
    }
}

impl SourceGenerator for SmartGridGenerator {
    type Item = MeterReading;

    fn next_tuple(&mut self) -> Option<(Timestamp, MeterReading)> {
        let total_hours = self.config.days * 24;
        if self.hour >= total_hours {
            return None;
        }
        let day = self.hour / 24;
        let hour_of_day = self.hour % 24;
        let meter = self.meter;

        let consumption = if self.is_blackout(meter, day) {
            0
        } else if self.is_anomalous(meter, day) && hour_of_day == 0 {
            self.config.anomaly_midnight_consumption
        } else if self.config.noise > 0 {
            self.config.base_consumption + self.rng.gen_range(0..=self.config.noise)
        } else {
            self.config.base_consumption
        };

        let ts = Timestamp::from_millis(self.hour as u64 * self.config.report_period.as_millis());
        let reading = MeterReading {
            meter_id: meter,
            consumption,
            hour_of_day,
        };

        self.meter += 1;
        if self.meter >= self.config.meters {
            self.meter = 0;
            self.hour += 1;
        }
        Some((ts, reading))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_one_reading_per_meter_per_hour_in_order() {
        let config = SmartGridConfig {
            meters: 4,
            days: 1,
            ..SmartGridConfig::default()
        };
        let readings = SmartGridGenerator::to_vec(config);
        assert_eq!(readings.len(), 4 * 24);
        assert!(readings.windows(2).all(|w| w[0].0 <= w[1].0));
        // The first four readings are the four meters at hour 0.
        assert!(readings[..4]
            .iter()
            .all(|(ts, r)| ts.as_secs() == 0 && r.hour_of_day == 0));
        // The last reading is at hour 23.
        assert_eq!(readings.last().unwrap().1.hour_of_day, 23);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = SmartGridGenerator::to_vec(SmartGridConfig::small());
        let b = SmartGridGenerator::to_vec(SmartGridConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn blackout_meters_report_zero_for_the_whole_blackout_day() {
        let config = SmartGridConfig::default();
        let generator = SmartGridGenerator::new(config);
        let readings = SmartGridGenerator::to_vec(config);
        for meter in 0..config.blackout_meters {
            assert!(generator.is_blackout(meter, config.blackout_day));
            let day_readings: Vec<_> = readings
                .iter()
                .filter(|(ts, r)| {
                    r.meter_id == meter
                        && ts.as_millis() / Duration::from_days(1).as_millis()
                            == config.blackout_day as u64
                })
                .collect();
            assert_eq!(day_readings.len(), 24);
            assert!(day_readings.iter().all(|(_, r)| r.consumption == 0));
        }
        // A healthy meter never reports zero.
        let healthy: Vec<_> = readings
            .iter()
            .filter(|(_, r)| r.meter_id == config.blackout_meters + 1)
            .collect();
        assert!(healthy.iter().all(|(_, r)| r.consumption > 0));
    }

    #[test]
    fn anomalous_meters_spike_only_at_midnight_of_the_anomaly_day() {
        let config = SmartGridConfig::default();
        let generator = SmartGridGenerator::new(config);
        let anomalous = generator.anomalous_meters();
        assert!(!anomalous.is_empty());
        let readings = SmartGridGenerator::to_vec(config);
        for meter in anomalous {
            let spikes: Vec<_> = readings
                .iter()
                .filter(|(_, r)| {
                    r.meter_id == meter && r.consumption == config.anomaly_midnight_consumption
                })
                .collect();
            assert_eq!(spikes.len(), 1);
            assert_eq!(spikes[0].1.hour_of_day, 0);
        }
    }

    #[test]
    fn blackout_meters_are_not_also_anomalous() {
        let config = SmartGridConfig {
            blackout_day: 1,
            anomaly_day: 1,
            anomaly_every: 1,
            ..SmartGridConfig::default()
        };
        let generator = SmartGridGenerator::new(config);
        for meter in 0..config.blackout_meters {
            assert!(!generator.is_anomalous(meter, 1));
        }
    }

    #[test]
    fn total_reading_count_matches_config() {
        let config = SmartGridConfig {
            meters: 5,
            days: 2,
            ..SmartGridConfig::default()
        };
        assert_eq!(config.total_readings(), 240);
        assert_eq!(SmartGridGenerator::to_vec(config).len(), 240);
    }

    #[test]
    #[should_panic(expected = "at least one meter")]
    fn zero_meters_is_rejected() {
        let _ = SmartGridGenerator::new(SmartGridConfig {
            meters: 0,
            ..SmartGridConfig::default()
        });
    }
}
