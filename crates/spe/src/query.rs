//! The typed query builder.
//!
//! A [`Query`] is a DAG of operators connected by streams. The builder API is typed:
//! every operator-adding method consumes the [`StreamRef`]s of its input streams (so a
//! stream can be consumed exactly once — fan-out is expressed with
//! [`Query::multiplex`], matching the operator model of the paper's §2) and returns
//! the `StreamRef`s of the streams it produces.
//!
//! The query is parameterised by a [`ProvenanceSystem`]: deploying the same query with
//! [`NoProvenance`](crate::provenance::NoProvenance), with `genealog::GeneaLog` or with
//! `genealog_baseline::AriadneBaseline` yields the NP / GL / BL configurations compared
//! in the paper's evaluation.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};

use genealog_metrics::MetricsRegistry;

use crate::channel::{stream_channel, BatchConfig, OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::fusion::{ChainEntry, PendingChain, StageCounters, StageInfo};
use crate::metrics::OpMetrics;
use crate::operator::aggregate::{AggregateOp, WindowView};
use crate::operator::filter::FilterStage;
use crate::operator::join::JoinOp;
use crate::operator::map::{MapStage, MetaMapStage};
use crate::operator::multiplex::MultiplexOp;
use crate::operator::sink::{CollectedStream, SinkOp, SinkStats};
use crate::operator::source::{SourceConfig, SourceGenerator, SourceOp};
use crate::operator::union::UnionOp;
use crate::operator::{FusedStage, Operator};
use crate::provenance::ProvenanceSystem;
use crate::runtime::{OperatorSpec, QueryHandle, Runtime};
use crate::state::{CheckpointConfig, CheckpointHandle};
use crate::time::Duration;
use crate::tuple::TupleData;
use crate::window::WindowSpec;

/// Identifier of an operator node inside a query graph.
pub type NodeId = usize;

/// The role of an operator node (used for introspection and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeKind {
    /// A Source operator.
    Source,
    /// A Map operator.
    Map,
    /// A Filter operator.
    Filter,
    /// A Multiplex operator.
    Multiplex,
    /// A Union operator.
    Union,
    /// An Aggregate operator.
    Aggregate,
    /// A Join operator.
    Join,
    /// A Sink operator.
    Sink,
    /// A shuffle exchange: hash-partitions a keyed stream across shard instances.
    Partition,
    /// One shard instance of a key-partitioned Aggregate.
    ShardedAggregate,
    /// One shard instance of a key-partitioned Join.
    ShardedJoin,
    /// The provenance-safe fan-in reunifying shard outputs into one ordered stream.
    ShardMerge,
    /// A fused chain of stateless operators running on one thread (see
    /// [`crate::fusion`]).
    Fused,
    /// An operator provided by an extension crate (unfolders, Send/Receive, ...).
    Custom(&'static str),
}

impl NodeKind {
    /// Short label used in DOT exports and reports.
    pub fn label(&self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::Map => "map",
            NodeKind::Filter => "filter",
            NodeKind::Multiplex => "multiplex",
            NodeKind::Union => "union",
            NodeKind::Aggregate => "aggregate",
            NodeKind::Join => "join",
            NodeKind::Sink => "sink",
            NodeKind::Partition => "partition",
            NodeKind::ShardedAggregate => "sharded-aggregate",
            NodeKind::ShardedJoin => "sharded-join",
            NodeKind::ShardMerge => "shard-merge",
            NodeKind::Fused => "fused",
            NodeKind::Custom(name) => name,
        }
    }
}

/// Membership of a node in a group of parallel shard instances.
///
/// All nodes sharing a group name are one *logical* operator split over `instances`
/// threads: the runtime folds their statistics into a single
/// [`OperatorReport`](crate::runtime::OperatorReport) and DOT exports annotate them
/// with the shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGroup {
    /// Name of the logical operator the shards belong to.
    pub name: String,
    /// Number of parallel instances in the group.
    pub instances: usize,
}

/// A route splicing one *remote* shard of a key-partitioned operator into the plan
/// of the originating SPE instance.
///
/// The callback receives the originating query, the shard index and the shard's
/// partitioned sub-stream; it must install whatever carries the sub-stream out of the
/// process (an instrumented Send operator onto a link) and return the stream that
/// comes back from the remote instance (a Receive operator on the return link). The
/// `genealog-distributed` crate provides ready-made routes via its shard-group
/// deployment helpers.
pub type RemoteRoute<P, I, O> = Box<
    dyn FnOnce(
        &mut Query<P>,
        usize,
        StreamRef<I, <P as ProvenanceSystem>::Meta>,
    ) -> StreamRef<O, <P as ProvenanceSystem>::Meta>,
>;

/// A [`RemoteRoute`] for a two-input (join) shard: the callback receives both
/// partitioned sub-streams of the shard and returns the stream coming back from the
/// remote instance.
pub type RemoteJoinRoute<P, L, R, O> = Box<
    dyn FnOnce(
        &mut Query<P>,
        usize,
        StreamRef<L, <P as ProvenanceSystem>::Meta>,
        StreamRef<R, <P as ProvenanceSystem>::Meta>,
    ) -> StreamRef<O, <P as ProvenanceSystem>::Meta>,
>;

/// Where one shard instance of a key-partitioned operator executes.
///
/// [`Query::sharded_aggregate_placed`](crate::parallel) takes one placement per
/// shard: `Local` shards run as threads of the originating SPE instance (the
/// behaviour of [`Query::sharded_aggregate`](crate::parallel)); `Remote` shards are
/// spliced out to another SPE instance through a [`RemoteRoute`]. The Partition
/// exchange, the provenance-safe fan-in and the joint channel budgeting are identical
/// for both, so local and remote shards can be mixed freely within one group.
pub enum ShardPlacement<P: ProvenanceSystem, I, O> {
    /// The shard runs in this process, as its own operator thread.
    Local,
    /// The shard runs on another SPE instance reached through the given route.
    Remote(RemoteRoute<P, I, O>),
}

impl<P: ProvenanceSystem, I, O> ShardPlacement<P, I, O> {
    /// `instances` local placements (the single-process default), clamped to at
    /// least one.
    pub fn all_local(instances: usize) -> Vec<Self> {
        (0..instances.max(1))
            .map(|_| ShardPlacement::Local)
            .collect()
    }

    /// Wraps a route callback as a remote placement.
    pub fn remote<F>(route: F) -> Self
    where
        F: FnOnce(&mut Query<P>, usize, StreamRef<I, P::Meta>) -> StreamRef<O, P::Meta> + 'static,
    {
        ShardPlacement::Remote(Box::new(route))
    }

    /// True for remote placements.
    pub fn is_remote(&self) -> bool {
        matches!(self, ShardPlacement::Remote(_))
    }
}

impl<P: ProvenanceSystem, I, O> std::fmt::Debug for ShardPlacement<P, I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlacement::Local => f.write_str("Local"),
            ShardPlacement::Remote(_) => f.write_str("Remote(..)"),
        }
    }
}

/// Where one shard instance of a key-partitioned *join* executes (see
/// [`ShardPlacement`]; a join shard consumes two partitioned sub-streams).
pub enum JoinShardPlacement<P: ProvenanceSystem, L, R, O> {
    /// The shard runs in this process, as its own operator thread.
    Local,
    /// The shard runs on another SPE instance reached through the given route.
    Remote(RemoteJoinRoute<P, L, R, O>),
}

impl<P: ProvenanceSystem, L, R, O> JoinShardPlacement<P, L, R, O> {
    /// `instances` local placements, clamped to at least one.
    pub fn all_local(instances: usize) -> Vec<Self> {
        (0..instances.max(1))
            .map(|_| JoinShardPlacement::Local)
            .collect()
    }

    /// Wraps a route callback as a remote placement.
    pub fn remote<F>(route: F) -> Self
    where
        F: FnOnce(
                &mut Query<P>,
                usize,
                StreamRef<L, P::Meta>,
                StreamRef<R, P::Meta>,
            ) -> StreamRef<O, P::Meta>
            + 'static,
    {
        JoinShardPlacement::Remote(Box::new(route))
    }

    /// True for remote placements.
    pub fn is_remote(&self) -> bool {
        matches!(self, JoinShardPlacement::Remote(_))
    }
}

impl<P: ProvenanceSystem, L, R, O> std::fmt::Debug for JoinShardPlacement<P, L, R, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinShardPlacement::Local => f.write_str("Local"),
            JoinShardPlacement::Remote(_) => f.write_str("Remote(..)"),
        }
    }
}

/// Static description of an operator node.
pub struct NodeInfo {
    /// Operator name (unique within the query).
    pub name: String,
    /// Operator role.
    pub kind: NodeKind,
    /// Shard group this node belongs to, if it is part of a parallel operator.
    pub shard_group: Option<ShardGroup>,
    operator: Option<Box<dyn Operator>>,
}

impl std::fmt::Debug for NodeInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeInfo")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("shard_group", &self.shard_group)
            .field("has_operator", &self.operator.is_some())
            .finish()
    }
}

/// A typed, move-only handle to a stream produced by an operator.
///
/// Consuming a `StreamRef` (by passing it to another builder method) attaches exactly
/// one consumer to the stream.
#[derive(Debug)]
pub struct StreamRef<T, M> {
    slot: OutputSlot<T, M>,
    producer: NodeId,
    label: String,
    /// How many sibling channels share this stream's logical edge budget: the N
    /// streams of a shard fan-out each carry `capacity_share = N`, so attaching a
    /// consumer allocates `channel_capacity / N` elements (floor one batch) instead
    /// of the full per-edge budget. 1 for ordinary streams.
    pub(crate) capacity_share: usize,
}

impl<T, M> StreamRef<T, M> {
    /// The node that produces this stream.
    pub fn producer(&self) -> NodeId {
        self.producer
    }

    /// The label of the stream (operator name plus output index).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Configuration shared by all operators of a query.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Capacity (in elements) of the bounded channels between operators. The builder
    /// converts it to a batch bound (`max(1, channel_capacity / batch_size)`), so the
    /// element-level buffer budget per edge is independent of the batch size.
    pub channel_capacity: usize,
    /// Default batching configuration of operator outputs. Individual operators can
    /// override it via [`Query::set_batch_config`] before they are added.
    pub batch: BatchConfig,
    /// Default number of parallel instances for sharded operators added with
    /// [`Parallelism::default()`](crate::parallel::Parallelism). Individual operators
    /// override it with [`Parallelism::instances`](crate::parallel::Parallelism::instances).
    pub parallelism: usize,
    /// Whether the physical-plan fusion pass collapses contiguous chains of
    /// stateless single-input/single-output operators (filter → map → map …) into
    /// single-thread fused pipelines with no intermediate channels (see
    /// [`crate::fusion`]). Off by default: fused plans produce the same results and
    /// provenance but report fused chains as one operator, so fusion is opt-in.
    pub fusion: bool,
    /// Whether the query publishes into a live [`MetricsRegistry`] (per-operator
    /// tuple counters, queue-depth gauges, back-pressure stall counters, sink
    /// latency histograms, checkpoint gauges). On by default — the hot path is a
    /// handful of relaxed atomic increments; [`QueryConfig::with_metrics`]`(false)`
    /// reduces it to the counters the end-of-run report needs anyway.
    pub metrics: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            channel_capacity: 1024,
            batch: BatchConfig::default(),
            parallelism: 1,
            fusion: false,
            metrics: true,
        }
    }
}

impl QueryConfig {
    /// Returns the configuration with a different default batch size.
    pub fn with_batch_size(mut self, size: usize) -> Self {
        self.batch = BatchConfig::with_size(size);
        self
    }

    /// Returns the configuration with batching disabled (flush every element),
    /// reproducing the engine's original per-element transport.
    pub fn unbatched(mut self) -> Self {
        self.batch = BatchConfig::unbatched();
        self
    }

    /// Returns the configuration with a different default shard count for parallel
    /// operators (clamped to at least 1).
    pub fn with_parallelism(mut self, instances: usize) -> Self {
        self.parallelism = instances.max(1);
        self
    }

    /// Returns the configuration with the stateless-chain fusion pass enabled or
    /// disabled.
    pub fn with_fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// Returns the configuration with live metrics publication enabled or disabled.
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }
}

/// A continuous query under construction.
pub struct Query<P: ProvenanceSystem> {
    provenance: P,
    config: QueryConfig,
    /// Batch configuration stamped onto output slots of subsequently added operators.
    current_batch: BatchConfig,
    nodes: Vec<NodeInfo>,
    edges: Vec<(NodeId, NodeId)>,
    /// Element-level buffer headroom of each edge, aligned with `edges` (0 for the
    /// channel-free stage-to-stage edges inside a fused chain).
    edge_budgets: Vec<usize>,
    /// Per-edge `(capacity, batch_size)` of the bounded channel, aligned with
    /// `edges`; `None` for the channel-free edges inside a fused chain. Consumed
    /// by [`Query::plan_facts`] for the deploy-time analyzer.
    edge_channels: Vec<Option<(usize, usize)>>,
    /// Number of provenance collectors attached to this query (see
    /// [`Query::note_provenance_collector`]).
    provenance_collectors: usize,
    /// Pending fused chains, keyed by the node id of each chain's current tail.
    fused_tails: HashMap<NodeId, ChainEntry>,
    /// Checks run at deployment time to detect dangling output streams.
    slot_checks: Vec<(String, Box<dyn Fn() -> bool + Send>)>,
    stop: Arc<AtomicBool>,
    next_origin: u32,
    /// Checkpoint configuration shared with every checkpoint-aware operator. The
    /// cell is handed to operators at construction time and read when they start
    /// running, so [`Query::set_checkpoints`] works at any point before deployment.
    checkpoints: CheckpointHandle,
    /// The live metrics registry of the query (disabled when
    /// [`QueryConfig::metrics`] is off).
    registry: Arc<MetricsRegistry>,
    /// Per-node metrics cells, aligned with `nodes`. Handed to operators when they
    /// are installed and bound to logical names at deploy time.
    node_metrics: Vec<OpMetrics>,
}

impl<P: ProvenanceSystem> Query<P> {
    /// Creates an empty query using the given provenance system.
    pub fn new(provenance: P) -> Self {
        Self::with_config(provenance, QueryConfig::default())
    }

    /// Creates an empty query with an explicit configuration.
    pub fn with_config(provenance: P, config: QueryConfig) -> Self {
        Query {
            provenance,
            config,
            current_batch: config.batch,
            nodes: Vec::new(),
            edges: Vec::new(),
            edge_budgets: Vec::new(),
            edge_channels: Vec::new(),
            provenance_collectors: 0,
            fused_tails: HashMap::new(),
            slot_checks: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            next_origin: 0,
            checkpoints: Arc::new(OnceLock::new()),
            registry: if config.metrics {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            },
            node_metrics: Vec::new(),
        }
    }

    /// The live metrics registry the query's operators publish into. Shared with
    /// the [`QueryHandle`] at deploy time; hand it to a control endpoint to expose
    /// the running query.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Enables epoch-based checkpointing: Sources inject an epoch barrier every
    /// [`interval`](CheckpointConfig::interval) tuples and every stateful operator
    /// and sink snapshots its state into the configured
    /// [`CheckpointStore`](crate::state::CheckpointStore) when the barrier reaches
    /// it. Must be called before [`Query::deploy`]; calling it twice keeps the
    /// first configuration.
    pub fn set_checkpoints(&self, config: CheckpointConfig) {
        let _ = self.checkpoints.set(config);
    }

    /// The shared checkpoint handle, for extension crates that construct
    /// checkpoint-aware operators (e.g. distributed shard splicing).
    pub fn checkpoint_handle(&self) -> CheckpointHandle {
        Arc::clone(&self.checkpoints)
    }

    /// The provenance system the query was built with.
    pub fn provenance(&self) -> &P {
        &self.provenance
    }

    /// Records that a provenance collector (e.g. a provenance sink built by
    /// `attach_provenance_sink`) is attached to this query. The deploy-time
    /// analyzer warns (GL022) when a GL plan reaches its sinks without one.
    pub fn note_provenance_collector(&mut self) {
        self.provenance_collectors += 1;
    }

    /// Snapshots the query graph into the plain-data [`PlanFacts`] the
    /// deploy-time analyzer (`genealog-analysis`) runs over. Cheap (no channels
    /// or threads are touched), callable any time before deployment; logical
    /// builders attach their pre-lowering [`LogicalFacts`] on top (see
    /// [`LogicalPlan::analyze`](crate::logical::LogicalPlan::analyze)).
    ///
    /// [`PlanFacts`]: genealog_analysis::PlanFacts
    /// [`LogicalFacts`]: genealog_analysis::LogicalFacts
    pub fn plan_facts(&self) -> genealog_analysis::PlanFacts {
        let fused_away: usize = self
            .fused_tails
            .values()
            .map(|entry| entry.nodes.len().saturating_sub(1))
            .sum();
        let nodes = self
            .nodes
            .iter()
            .map(|n| genealog_analysis::NodeFacts {
                name: n.name.clone(),
                kind: n.kind.label().to_string(),
                group: n.shard_group.as_ref().map(|g| g.name.clone()),
                instances: n.shard_group.as_ref().map_or(1, |g| g.instances),
                remote: matches!(n.kind.label(), "send" | "receive"),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .zip(&self.edge_channels)
            .map(|(&(from, to), channel)| genealog_analysis::EdgeFacts {
                from,
                to,
                capacity: channel.map_or(0, |(c, _)| c),
                batch_size: channel.map_or(0, |(_, b)| b),
                fused: channel.is_none(),
            })
            .collect();
        genealog_analysis::PlanFacts {
            provenance: self.provenance.label().to_string(),
            channel_capacity: self.config.channel_capacity,
            fusion: self.config.fusion,
            checkpoint_interval: self.checkpoints.get().map(|c| c.interval),
            checkpoint_durable: self
                .checkpoints
                .get()
                .map(|c| c.store.backend().is_durable()),
            metrics: self.config.metrics,
            host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            threads: self.nodes.len().saturating_sub(fused_away),
            provenance_collectors: self.provenance_collectors,
            nodes,
            edges,
            logical: None,
        }
    }

    /// The query configuration.
    pub fn config(&self) -> QueryConfig {
        self.config
    }

    /// The batch configuration applied to subsequently added operators.
    pub fn batch_config(&self) -> BatchConfig {
        self.current_batch
    }

    /// Overrides the batch configuration for operators added *after* this call,
    /// allowing per-operator batching (e.g. large batches inside a throughput-bound
    /// pipeline segment, `BatchConfig::unbatched()` ahead of a latency-critical sink).
    pub fn set_batch_config(&mut self, batch: BatchConfig) {
        self.current_batch = batch;
    }

    /// Handle that, when set to `true`, asks every Source to stop injecting tuples.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    // ------------------------------------------------------------------
    // Extension API: used by the unfolder operators of `genealog` and the
    // Send/Receive endpoints of `genealog-distributed` to register custom
    // operators while reusing the engine's wiring and validation.
    // ------------------------------------------------------------------

    /// Registers a new operator node and returns its id. The node must later receive
    /// its runtime operator through [`Query::set_operator`].
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(NodeInfo {
            name: name.into(),
            kind,
            shard_group: None,
            operator: None,
        });
        self.node_metrics.push(OpMetrics::deferred());
        id
    }

    /// Assigns a node to a shard group: all nodes of one group are shard instances of
    /// the same logical operator, reported as one aggregated
    /// [`OperatorReport`](crate::runtime::OperatorReport) and rendered with their
    /// shard count in DOT exports.
    pub fn set_shard_group(&mut self, node: NodeId, group: impl Into<String>, instances: usize) {
        self.nodes[node].shard_group = Some(ShardGroup {
            name: group.into(),
            instances: instances.max(1),
        });
    }

    /// Attaches `consumer` to `stream`, returning the receiving end of the channel.
    pub fn attach_input<T: TupleData>(
        &mut self,
        stream: StreamRef<T, P::Meta>,
        consumer: NodeId,
    ) -> StreamReceiver<T, P::Meta> {
        // The configured capacity counts elements; the channel is bounded in batches,
        // so convert with ceiling division to keep the element budget no smaller than
        // configured regardless of the producer's batch size. Streams that are one of
        // N siblings of a shard fan-out carry `capacity_share = N` and get 1/N of the
        // budget each (floor one batch), so the total buffered-element headroom of a
        // logical edge is independent of its physical fan-out.
        let batch_size = stream.slot.batch_config().size;
        let share = stream.capacity_share.max(1);
        let capacity = self.config.channel_capacity.div_ceil(share);
        let batches = crate::channel::batch_budget(capacity, batch_size);
        let (mut tx, rx) = stream_channel(batches);
        if self.registry.is_enabled() {
            // One edge key per physical channel: the producing stream's label is
            // unique per output port, the consumer name disambiguates fan-ins.
            let edge = format!("{}->{}", stream.label, self.nodes[consumer].name);
            tx.set_stall_counter(self.registry.counter(
                "genealog_channel_backpressure_stalls_total",
                &[("edge", &edge)],
            ));
            let depth = rx.depth_handle();
            self.registry.gauge_fn(
                "genealog_channel_queue_depth",
                &[("edge", &edge)],
                Arc::new(move || depth.load(std::sync::atomic::Ordering::Relaxed) as u64),
            );
        }
        stream.slot.connect(tx);
        self.edges.push((stream.producer, consumer));
        self.edge_budgets.push(batches * batch_size.max(1));
        self.edge_channels.push(Some((capacity, batch_size)));
        rx
    }

    /// Creates a new output stream for `producer`, returning the slot to hand to the
    /// operator and the `StreamRef` to hand to the rest of the query.
    pub fn new_output_stream<T: TupleData>(
        &mut self,
        producer: NodeId,
        label: impl Into<String>,
    ) -> (OutputSlot<T, P::Meta>, StreamRef<T, P::Meta>) {
        let slot = OutputSlot::with_config(self.current_batch);
        let stream = StreamRef {
            slot: slot.clone(),
            producer,
            label: label.into(),
            capacity_share: 1,
        };
        let producer_name = self.nodes[producer].name.clone();
        let check_slot = slot.clone();
        self.slot_checks
            .push((producer_name, Box::new(move || check_slot.is_connected())));
        (slot, stream)
    }

    /// Installs the runtime operator of a node registered with [`Query::add_node`].
    ///
    /// # Panics
    /// Panics if the node already has an operator.
    pub fn set_operator(&mut self, node: NodeId, mut operator: Box<dyn Operator>) {
        let info = &mut self.nodes[node];
        assert!(
            info.operator.is_none(),
            "operator already installed for node `{}`",
            info.name
        );
        operator.set_metrics(self.node_metrics[node].clone());
        info.operator = Some(operator);
    }

    /// Allocates a fresh origin id (used by Sources and Receive operators to build the
    /// unique tuple ids of §6).
    pub fn next_origin_id(&mut self) -> u32 {
        let id = self.next_origin;
        self.next_origin += 1;
        id
    }

    /// Registers a stateless single-input/single-output operator expressed as a
    /// [`FusedStage`]. This is the single construction path for Filter and Map:
    ///
    /// * if fusion is enabled and `input` is the tail stream of a pending fused
    ///   chain with a compatible shard group, the stage *extends* that chain — no
    ///   channel is allocated between the two stages;
    /// * otherwise the stage starts a new chain of length one, pulling from a
    ///   regular channel out of the (unfusable) producer.
    ///
    /// Either way the node is sealed into a runnable [`FusedOp`](crate::fusion::FusedOp)
    /// at deployment time, so fused and unfused plans execute identical per-tuple
    /// code and differ only in how many threads and channels carry it.
    pub(crate) fn add_fused_stage<I, O, S>(
        &mut self,
        name: &str,
        kind: NodeKind,
        group: Option<ShardGroup>,
        input: StreamRef<I, P::Meta>,
        stage: S,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        S: FusedStage<I, O, P::Meta>,
    {
        let node = self.add_node(name, kind);
        self.nodes[node].shard_group = group.clone();
        let counters = Arc::new(StageCounters::default());
        let info = StageInfo {
            name: group
                .as_ref()
                .map_or_else(|| name.to_string(), |g| g.name.clone()),
            counters: Arc::clone(&counters),
        };
        // A stateless stage keeps its input's shard membership: its output stream
        // inherits the capacity share, so per-shard stage pipelines stay jointly
        // budgeted all the way to the fan-in.
        let share = input.capacity_share;
        let extend = self.config.fusion
            && self
                .fused_tails
                .get(&input.producer)
                .is_some_and(|entry| entry.accepts(group.as_ref()));
        let (slot, mut stream) = self.new_output_stream(node, format!("{name}.out"));
        stream.capacity_share = share;
        if extend {
            let mut entry = self
                .fused_tails
                .remove(&input.producer)
                .expect("chain tail");
            // Bypass the old tail's output slot: the stages are connected by direct
            // calls, not a channel. The discard mark satisfies deploy validation.
            input.slot.mark_discard();
            self.edges.push((input.producer, node));
            self.edge_budgets.push(0);
            self.edge_channels.push(None);
            let chain = entry
                .pending
                .into_any()
                .downcast::<PendingChain<I, P::Meta>>()
                .expect("fused chain tail type mismatch");
            entry.pending =
                Box::new(chain.then(Box::new(stage), Arc::clone(&counters), slot.clone()));
            entry.nodes.push(node);
            entry.stages.push(info);
            entry.merge_group(group);
            self.fused_tails.insert(node, entry);
        } else {
            let rx = self.attach_input(input, node);
            let chain = PendingChain::start(
                rx,
                Box::new(stage) as Box<dyn FusedStage<I, O, P::Meta>>,
                Arc::clone(&counters),
                slot.clone(),
            );
            self.fused_tails.insert(
                node,
                ChainEntry {
                    nodes: vec![node],
                    stages: vec![info],
                    group,
                    pending: Box::new(chain),
                },
            );
        }
        stream
    }

    // ------------------------------------------------------------------
    // Standard operators
    // ------------------------------------------------------------------

    /// Adds a Source backed by `generator` with the default source configuration.
    pub fn source<G: SourceGenerator>(
        &mut self,
        name: &str,
        generator: G,
    ) -> StreamRef<G::Item, P::Meta> {
        self.source_with(name, generator, SourceConfig::default())
    }

    /// Adds a Source backed by `generator` with an explicit configuration.
    pub fn source_with<G: SourceGenerator>(
        &mut self,
        name: &str,
        generator: G,
        config: SourceConfig,
    ) -> StreamRef<G::Item, P::Meta> {
        let node = self.add_node(name, NodeKind::Source);
        let source_id = self.next_origin_id();
        let (slot, stream) = self.new_output_stream(node, format!("{name}.out"));
        let op = SourceOp::new(
            name,
            source_id,
            generator,
            config,
            slot,
            self.provenance.clone(),
            Arc::clone(&self.stop),
            Arc::clone(&self.checkpoints),
        );
        self.set_operator(node, Box::new(op));
        stream
    }

    /// Adds a Map producing zero or more output payloads per input payload.
    pub fn map<I, O, F>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        function: F,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        F: FnMut(&I) -> Vec<O> + Send + 'static,
    {
        let provenance = self.provenance.clone();
        self.add_fused_stage(
            name,
            NodeKind::Map,
            None,
            input,
            MapStage::new(function, provenance),
        )
    }

    /// Adds a meta-aware Map whose function receives the whole input tuple (payload
    /// *and* provenance metadata). This is the instrumented-Map facility used by the
    /// provenance unfolders of the `genealog` crate (§5.1 of the paper).
    pub fn map_with_meta<I, O, F>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        function: F,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        F: FnMut(&Arc<crate::tuple::GTuple<I, P::Meta>>) -> Vec<O> + Send + 'static,
    {
        let provenance = self.provenance.clone();
        self.add_fused_stage(
            name,
            NodeKind::Map,
            None,
            input,
            MetaMapStage::new(function, provenance),
        )
    }

    /// Adds a Map producing exactly one output payload per input payload.
    pub fn map_one<I, O, F>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        mut function: F,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        F: FnMut(&I) -> O + Send + 'static,
    {
        self.map(name, input, move |data| vec![function(data)])
    }

    /// Adds a Filter forwarding the tuples that satisfy `predicate`.
    pub fn filter<T, F>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        predicate: F,
    ) -> StreamRef<T, P::Meta>
    where
        T: TupleData,
        F: FnMut(&T) -> bool + Send + 'static,
    {
        self.add_fused_stage(
            name,
            NodeKind::Filter,
            None,
            input,
            FilterStage::new(predicate),
        )
    }

    /// Adds a Multiplex copying every input tuple to `outputs` output streams.
    pub fn multiplex<T>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        outputs: usize,
    ) -> Vec<StreamRef<T, P::Meta>>
    where
        T: TupleData,
    {
        assert!(outputs > 0, "Multiplex requires at least one output");
        let node = self.add_node(name, NodeKind::Multiplex);
        let rx = self.attach_input(input, node);
        let mut slots = Vec::with_capacity(outputs);
        let mut streams = Vec::with_capacity(outputs);
        for i in 0..outputs {
            let (slot, stream) = self.new_output_stream(node, format!("{name}.out{i}"));
            slots.push(slot);
            streams.push(stream);
        }
        let op = MultiplexOp::new(name, rx, slots, self.provenance.clone());
        self.set_operator(node, Box::new(op));
        streams
    }

    /// Adds a Union deterministically merging `inputs` into one stream.
    pub fn union<T>(
        &mut self,
        name: &str,
        inputs: Vec<StreamRef<T, P::Meta>>,
    ) -> StreamRef<T, P::Meta>
    where
        T: TupleData,
    {
        assert!(!inputs.is_empty(), "Union requires at least one input");
        let node = self.add_node(name, NodeKind::Union);
        let rxs: Vec<_> = inputs
            .into_iter()
            .map(|stream| self.attach_input(stream, node))
            .collect();
        let (slot, stream) = self.new_output_stream(node, format!("{name}.out"));
        let op = UnionOp::new(name, rxs, slot);
        self.set_operator(node, Box::new(op));
        stream
    }

    /// Adds an Aggregate over a sliding time window with a group-by key.
    pub fn aggregate<I, O, K, KF, AF>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        spec: WindowSpec,
        key_fn: KF,
        agg_fn: AF,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        K: Ord + Clone + Send + Sync + 'static,
        KF: FnMut(&I) -> K + Send + 'static,
        AF: FnMut(&WindowView<'_, K, I, P::Meta>) -> O + Send + 'static,
    {
        let node = self.add_node(name, NodeKind::Aggregate);
        let rx = self.attach_input(input, node);
        let (slot, stream) = self.new_output_stream(node, format!("{name}.out"));
        let op = AggregateOp::new(
            name,
            rx,
            slot,
            spec,
            key_fn,
            agg_fn,
            self.provenance.clone(),
            Arc::clone(&self.checkpoints),
        );
        self.set_operator(node, Box::new(op));
        stream
    }

    /// Adds a Join of two streams within the time window `window`.
    pub fn join<L, R, O, PR, CF>(
        &mut self,
        name: &str,
        left: StreamRef<L, P::Meta>,
        right: StreamRef<R, P::Meta>,
        window: Duration,
        predicate: PR,
        combine: CF,
    ) -> StreamRef<O, P::Meta>
    where
        L: TupleData,
        R: TupleData,
        O: TupleData,
        PR: FnMut(&L, &R) -> bool + Send + 'static,
        CF: FnMut(&L, &R) -> O + Send + 'static,
    {
        let node = self.add_node(name, NodeKind::Join);
        let left_rx = self.attach_input(left, node);
        let right_rx = self.attach_input(right, node);
        let (slot, stream) = self.new_output_stream(node, format!("{name}.out"));
        let op = JoinOp::new(
            name,
            left_rx,
            right_rx,
            slot,
            window,
            predicate,
            combine,
            self.provenance.clone(),
            Arc::clone(&self.checkpoints),
        );
        self.set_operator(node, Box::new(op));
        stream
    }

    /// Adds a Sink invoking `callback` for every sink tuple; returns its statistics.
    pub fn sink<T, F>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        callback: F,
    ) -> Arc<SinkStats>
    where
        T: TupleData,
        F: FnMut(&Arc<crate::tuple::GTuple<T, P::Meta>>) + Send + 'static,
    {
        let stats = SinkStats::new();
        self.sink_into(name, input, callback, Arc::clone(&stats));
        stats
    }

    /// Adds a Sink with a caller-provided statistics handle — the building block of
    /// [`Query::sink`], and of the logical layer's eagerly-created sink handles
    /// (the handle exists before the plan is lowered, so it can be returned to the
    /// caller while the sink itself is wired at lowering time).
    pub fn sink_into<T, F>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        callback: F,
        stats: Arc<SinkStats>,
    ) where
        T: TupleData,
        F: FnMut(&Arc<crate::tuple::GTuple<T, P::Meta>>) + Send + 'static,
    {
        self.add_sink(name, input, callback, stats, None);
    }

    /// The single construction path for sinks: `collected` names the collection the
    /// callback feeds (if any), which doubles as the sink's checkpointable state.
    fn add_sink<T, F>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        callback: F,
        stats: Arc<SinkStats>,
        collected: Option<CollectedStream<T, P::Meta>>,
    ) where
        T: TupleData,
        F: FnMut(&Arc<crate::tuple::GTuple<T, P::Meta>>) + Send + 'static,
    {
        let node = self.add_node(name, NodeKind::Sink);
        let rx = self.attach_input(input, node);
        let op = SinkOp::new(
            name,
            rx,
            callback,
            stats,
            collected,
            Arc::clone(&self.checkpoints),
        );
        self.set_operator(node, Box::new(op));
    }

    /// Adds a Sink collecting every sink tuple in memory (convenient for tests,
    /// examples and provenance collection).
    pub fn collecting_sink<T>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
    ) -> CollectedStream<T, P::Meta>
    where
        T: TupleData,
    {
        let collected = CollectedStream::new();
        self.collecting_sink_into(name, input, &collected);
        collected
    }

    /// Adds a Sink pushing every sink tuple into a caller-provided collection (see
    /// [`Query::sink_into`]).
    pub fn collecting_sink_into<T>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        collected: &CollectedStream<T, P::Meta>,
    ) where
        T: TupleData,
    {
        let copy = collected.clone();
        let stats = Arc::clone(collected.stats());
        self.add_sink(
            name,
            input,
            move |t| copy.push(Arc::clone(t)),
            stats,
            Some(collected.clone()),
        );
    }

    /// Explicitly discards a stream: its elements are dropped without a consumer.
    pub fn discard<T>(&mut self, stream: StreamRef<T, P::Meta>) {
        stream.slot.mark_discard();
    }

    // ------------------------------------------------------------------
    // Introspection & deployment
    // ------------------------------------------------------------------

    /// Number of operator nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The `(producer, consumer)` edges of the query graph.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Element-level buffer headroom of each edge, aligned with [`Query::edges`].
    ///
    /// The headroom is the channel's bound in batches times the producer's batch
    /// size: how many elements the edge can absorb before back-pressure engages.
    /// The N channels of a shard fan-out are budgeted *jointly* — each reports
    /// roughly `channel_capacity / N` — and the channel-free stage-to-stage edges
    /// inside a fused chain report 0.
    pub fn edge_budgets(&self) -> &[usize] {
        &self.edge_budgets
    }

    /// Names and kinds of the operator nodes.
    pub fn node_summaries(&self) -> Vec<(String, NodeKind)> {
        self.nodes
            .iter()
            .map(|n| (n.name.clone(), n.kind))
            .collect()
    }

    /// Renders the query graph in Graphviz DOT format.
    ///
    /// Shard-group members carry their shard count on the label (`×N`) and exchange
    /// edges (out of a Partition, into a ShardMerge) are drawn dashed. A fused chain
    /// of two or more stateless stages renders as a single boxed node listing the
    /// stage names; its channel-free internal edges are not drawn. Node names are
    /// escaped, so user-supplied names containing quotes or backslashes cannot break
    /// the DOT output.
    pub fn to_dot(&self) -> String {
        let mut dot = String::from("digraph query {\n  rankdir=LR;\n");
        dot.push_str(&self.to_dot_fragment("n"));
        dot.push_str("}\n");
        dot
    }

    /// Renders the node and edge statements of the query graph without the
    /// surrounding `digraph` wrapper, with every node id prefixed by `prefix`.
    ///
    /// This is the building block for rendering *distributed* deployments: each SPE
    /// instance renders its own fragment under a distinct prefix and an outer
    /// assembler (e.g. `genealog_distributed::deployment::instances_dot`) wraps the
    /// fragments in one cluster per instance, making process boundaries visible.
    /// Send and Receive endpoints (nodes of kind `Custom("send")` /
    /// `Custom("receive")`) are drawn with the `cds` shape to mark where a stream
    /// leaves or enters the instance.
    pub fn to_dot_fragment(&self, prefix: &str) -> String {
        fn escape(name: &str) -> String {
            name.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut dot = String::new();
        // Members of a multi-stage fused chain all render through the chain's head.
        // Chains are rendered in head-node order so the output is deterministic.
        let mut chain_head: HashMap<NodeId, NodeId> = HashMap::new();
        let mut chains: Vec<&ChainEntry> = self
            .fused_tails
            .values()
            .filter(|e| e.nodes.len() > 1)
            .collect();
        chains.sort_by_key(|e| e.nodes[0]);
        for entry in chains {
            let head = entry.nodes[0];
            for &member in &entry.nodes {
                chain_head.insert(member, head);
            }
            let stages = entry
                .nodes
                .iter()
                .map(|&member| escape(&self.nodes[member].name))
                .collect::<Vec<_>>()
                .join(" \u{2192} ");
            let shards = match &entry.group {
                Some(group) if group.instances > 1 => format!(" \u{d7}{}", group.instances),
                _ => String::new(),
            };
            dot.push_str(&format!(
                "  {prefix}{head} [shape=box label=\"{stages}\\n(fused{shards})\"];\n"
            ));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            if chain_head.contains_key(&id) {
                continue;
            }
            let shards = match &node.shard_group {
                Some(group) if group.instances > 1 => format!(" \u{d7}{}", group.instances),
                _ => String::new(),
            };
            // Instance-boundary endpoints render as "cds" (a tagged box pointing
            // off the page): the stream leaves or enters the process here.
            let shape = match node.kind {
                NodeKind::Custom(kind) if kind == "send" || kind == "receive" => "shape=cds ",
                _ => "",
            };
            dot.push_str(&format!(
                "  {}{} [{}label=\"{}\\n({}{})\"];\n",
                prefix,
                id,
                shape,
                escape(&node.name),
                node.kind.label(),
                shards
            ));
        }
        for (from, to) in &self.edges {
            let (f, t) = (
                chain_head.get(from).copied().unwrap_or(*from),
                chain_head.get(to).copied().unwrap_or(*to),
            );
            if f == t {
                continue; // channel-free edge inside a fused chain
            }
            let exchange = matches!(self.nodes[*from].kind, NodeKind::Partition)
                || matches!(self.nodes[*to].kind, NodeKind::ShardMerge);
            let attrs = if exchange { " [style=dashed]" } else { "" };
            dot.push_str(&format!("  {prefix}{f} -> {prefix}{t}{attrs};\n"));
        }
        dot
    }

    /// Validates the query, runs the physical-plan fusion pass and spawns one thread
    /// per physical operator.
    ///
    /// The fusion pass seals every pending stateless chain collected by the builder:
    /// a chain of one stage becomes an ordinary single-operator thread; a chain of
    /// two or more stages becomes one [`FusedOp`](crate::fusion::FusedOp) thread
    /// whose report still names the original operators (see
    /// [`OperatorReport::stages`](crate::runtime::OperatorReport)).
    ///
    /// # Errors
    /// Returns [`SpeError::UnconnectedStream`] if an output stream has no consumer and
    /// was not discarded, or [`SpeError::InvalidQuery`] if a node has no operator.
    pub fn deploy(mut self) -> Result<QueryHandle, SpeError> {
        for (producer, check) in &self.slot_checks {
            if !check() {
                return Err(SpeError::UnconnectedStream {
                    producer: producer.clone(),
                });
            }
        }
        // The fusion pass: index the collected chains by their head node, so specs
        // come out in node-creation order, and remember every fused member.
        let mut chains: HashMap<NodeId, ChainEntry> = HashMap::new();
        let mut members: HashSet<NodeId> = HashSet::new();
        for (_, entry) in self.fused_tails.drain() {
            members.extend(entry.nodes.iter().copied());
            chains.insert(entry.nodes[0], entry);
        }
        self.register_collectors(&chains, &members);
        let mut specs = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.into_iter().enumerate() {
            if let Some(entry) = chains.remove(&id) {
                let single = entry.nodes.len() == 1;
                let head = Arc::clone(&entry.stages.first().expect("chain stage").counters);
                let name = if single {
                    node.name.clone()
                } else {
                    entry
                        .stages
                        .iter()
                        .map(|s| s.name.as_str())
                        .collect::<Vec<_>>()
                        .join("+")
                };
                let op = entry.pending.seal(name, head);
                specs.push(OperatorSpec {
                    kind: if single { node.kind } else { NodeKind::Fused },
                    group: entry.group,
                    stages: if single { Vec::new() } else { entry.stages },
                    op: Box::new(op),
                });
            } else if members.contains(&id) {
                // Folded into the chain sealed at its head node.
                continue;
            } else {
                let op = node.operator.ok_or_else(|| {
                    SpeError::InvalidQuery(format!(
                        "node `{}` has no operator installed",
                        node.name
                    ))
                })?;
                specs.push(OperatorSpec {
                    kind: node.kind,
                    group: node.shard_group,
                    stages: Vec::new(),
                    op,
                });
            }
        }
        if specs.is_empty() {
            return Err(SpeError::InvalidQuery("query has no operators".into()));
        }
        Ok(Runtime::spawn(
            specs,
            self.stop,
            self.checkpoints,
            self.registry,
        ))
    }

    /// Binds every operator's metrics cell to its logical name and registers the
    /// registry collectors: per-logical-operator tuple counters (summed over shard
    /// instances and fused-stage counters sharing the name) and the checkpoint-path
    /// gauges.
    fn register_collectors(&self, chains: &HashMap<NodeId, ChainEntry>, members: &HashSet<NodeId>) {
        use std::collections::BTreeMap;

        use genealog_metrics::Counter;

        // Physical counter pairs of thread-per-operator nodes, grouped by logical
        // name (the shard-group name folds N instances into one label).
        type CounterPair = (Arc<Counter>, Arc<Counter>);
        let mut op_groups: BTreeMap<String, Vec<CounterPair>> = BTreeMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.operator.is_none() || members.contains(&id) {
                // Fused-chain members report through their stage counters below.
                continue;
            }
            let logical = node
                .shard_group
                .as_ref()
                .map_or(node.name.as_str(), |g| g.name.as_str());
            let cell = &self.node_metrics[id];
            cell.bind(logical, &self.registry);
            if let Some(pair) = cell.counter_pair() {
                op_groups.entry(logical.to_string()).or_default().push(pair);
            }
        }
        if !self.registry.is_enabled() {
            return;
        }
        // Stage counters of fused chains (including single-stage "chains", i.e.
        // plain Filter/Map operators), grouped the same way — StageInfo::name is
        // already the logical name.
        let mut stage_groups: BTreeMap<String, Vec<Arc<StageCounters>>> = BTreeMap::new();
        for entry in chains.values() {
            for info in &entry.stages {
                stage_groups
                    .entry(info.name.clone())
                    .or_default()
                    .push(Arc::clone(&info.counters));
            }
        }
        let names: std::collections::BTreeSet<&String> =
            op_groups.keys().chain(stage_groups.keys()).collect();
        for name in names {
            let pairs = op_groups.get(name).cloned().unwrap_or_default();
            let stages = stage_groups.get(name).cloned().unwrap_or_default();
            let (in_pairs, in_stages) = (pairs.clone(), stages.clone());
            self.registry.counter_fn(
                "genealog_operator_tuples_in_total",
                &[("operator", name)],
                Arc::new(move || {
                    in_pairs.iter().map(|(i, _)| i.get()).sum::<u64>()
                        + in_stages.iter().map(|c| c.tuples_in()).sum::<u64>()
                }),
            );
            self.registry.counter_fn(
                "genealog_operator_tuples_out_total",
                &[("operator", name)],
                Arc::new(move || {
                    pairs.iter().map(|(_, o)| o.get()).sum::<u64>()
                        + stages.iter().map(|c| c.tuples_out()).sum::<u64>()
                }),
            );
        }
        if let Some(config) = self.checkpoints.get() {
            let store = Arc::clone(&config.store);
            let (bytes, written, epoch, latency) = (
                Arc::clone(&store),
                Arc::clone(&store),
                Arc::clone(&store),
                store,
            );
            self.registry.gauge_fn(
                "genealog_checkpoint_snapshot_bytes",
                &[],
                Arc::new(move || bytes.backend().serialized_bytes() as u64),
            );
            self.registry.counter_fn(
                "genealog_checkpoint_bytes_written_total",
                &[],
                Arc::new(move || written.backend().bytes_written()),
            );
            self.registry.gauge_fn(
                "genealog_checkpoint_latest_complete_epoch",
                &[],
                Arc::new(move || epoch.latest_complete_epoch().map_or(0, |e| e + 1)),
            );
            self.registry.gauge_fn(
                "genealog_checkpoint_epoch_commit_latency_ns",
                &[],
                Arc::new(move || latency.last_epoch_commit_latency_ns().unwrap_or(0)),
            );
        }
    }
}

impl<P: ProvenanceSystem> std::fmt::Debug for Query<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("provenance", &self.provenance.label())
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::source::VecSource;
    use crate::provenance::NoProvenance;

    #[test]
    fn builds_and_runs_a_linear_query() {
        let mut q = Query::new(NoProvenance);
        let src = q.source(
            "numbers",
            VecSource::with_period((0..10i64).collect(), 1_000),
        );
        let evens = q.filter("evens", src, |x| x % 2 == 0);
        let doubled = q.map_one("double", evens, |x| x * 2);
        let out = q.collecting_sink("sink", doubled);
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edges().len(), 3);
        let report = q.deploy().unwrap().wait().unwrap();
        assert_eq!(out.len(), 5);
        let values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
        assert_eq!(values, vec![0, 4, 8, 12, 16]);
        assert!(report.operator_stats().len() == 4);
    }

    #[test]
    fn multiplex_union_round_trip() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("numbers", VecSource::with_period((0..20i64).collect(), 500));
        let branches = q.multiplex("mux", src, 2);
        let mut it = branches.into_iter();
        let small = q.filter("small", it.next().unwrap(), |x| *x < 5);
        let large = q.filter("large", it.next().unwrap(), |x| *x >= 15);
        let merged = q.union("union", vec![small, large]);
        let out = q.collecting_sink("sink", merged);
        q.deploy().unwrap().wait().unwrap();
        let mut values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
        // The union is timestamp-ordered, which here equals value order.
        assert_eq!(values, vec![0, 1, 2, 3, 4, 15, 16, 17, 18, 19]);
        values.sort_unstable();
        assert_eq!(values.len(), 10);
    }

    #[test]
    fn unconnected_stream_is_rejected_at_deploy() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("numbers", VecSource::with_period(vec![1i64], 1));
        let _dangling = q.filter("dangling", src, |_| true);
        let err = q.deploy().unwrap_err();
        assert!(matches!(err, SpeError::UnconnectedStream { producer } if producer == "dangling"));
    }

    #[test]
    fn discarded_stream_passes_validation() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1));
        let branches = q.multiplex("mux", src, 2);
        let mut it = branches.into_iter();
        let keep = it.next().unwrap();
        let toss = it.next().unwrap();
        let out = q.collecting_sink("sink", keep);
        q.discard(toss);
        q.deploy().unwrap().wait().unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_query_is_invalid() {
        let q = Query::new(NoProvenance);
        assert!(matches!(q.deploy(), Err(SpeError::InvalidQuery(_))));
    }

    #[test]
    fn dot_export_mentions_all_nodes() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("reports", VecSource::with_period(vec![1i64], 1));
        let flt = q.filter("speed0", src, |_| true);
        let _ = q.collecting_sink("alerts", flt);
        let dot = q.to_dot();
        assert!(dot.contains("reports"));
        assert!(dot.contains("speed0"));
        assert!(dot.contains("alerts"));
        assert!(dot.contains("n0 -> n1"));
        let kinds = q.node_summaries();
        assert_eq!(kinds[0].1, NodeKind::Source);
        assert_eq!(kinds[1].1, NodeKind::Filter);
        assert_eq!(kinds[2].1, NodeKind::Sink);
    }

    #[test]
    fn dot_export_escapes_hostile_node_names() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("evil\"]; bad [\\", VecSource::with_period(vec![1i64], 1));
        let _ = q.collecting_sink("sink", src);
        let dot = q.to_dot();
        // The quote and backslash are escaped, so the label cannot terminate early.
        assert!(dot.contains("evil\\\"]; bad [\\\\"));
        assert!(!dot.contains("label=\"evil\"]"));
    }

    #[test]
    fn dot_export_renders_shard_counts_and_exchange_edges() {
        use crate::operator::aggregate::WindowView;
        use crate::parallel::Parallelism;
        let mut q = Query::new(NoProvenance);
        let src = q.source(
            "src",
            VecSource::with_period((0..8u32).map(|i| (i, 0i64)).collect(), 1_000),
        );
        let agg = q.sharded_aggregate(
            "agg",
            src,
            WindowSpec::tumbling(crate::time::Duration::from_secs(4)).unwrap(),
            |t: &(u32, i64)| t.0,
            |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
            |o: &(u32, i64)| o.0,
            Parallelism::instances(4),
        );
        let _ = q.collecting_sink("sink", agg);
        let dot = q.to_dot();
        assert!(dot.contains("agg.exchange\\n(partition \u{d7}4)"));
        assert!(dot.contains("agg[0]\\n(sharded-aggregate \u{d7}4)"));
        assert!(dot.contains("agg.merge\\n(shard-merge \u{d7}4)"));
        // Exchange edges out of the partition and into the merge are dashed.
        assert!(dot.contains("[style=dashed]"));
        // An ordinary edge (source -> partition) stays solid.
        assert!(dot.contains("n0 -> n1;\n"));
    }

    #[test]
    fn fusion_collapses_stateless_chain_into_one_thread() {
        let run = |fusion: bool| {
            let mut q =
                Query::with_config(NoProvenance, QueryConfig::default().with_fusion(fusion));
            let src = q.source(
                "numbers",
                VecSource::with_period((0..10i64).collect(), 1_000),
            );
            let evens = q.filter("evens", src, |x| x % 2 == 0);
            let doubled = q.map_one("double", evens, |x| x * 2);
            let out = q.collecting_sink("sink", doubled);
            let report = q.deploy().unwrap().wait().unwrap();
            let values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
            (report, values)
        };

        let (unfused_report, unfused_values) = run(false);
        let (fused_report, fused_values) = run(true);
        assert_eq!(fused_values, vec![0, 4, 8, 12, 16]);
        assert_eq!(
            fused_values, unfused_values,
            "fusion must not change results"
        );

        // Unfused: 4 threads/reports. Fused: filter+map collapse into one.
        assert_eq!(unfused_report.operator_stats().len(), 4);
        assert_eq!(fused_report.operator_stats().len(), 3);
        let chain = fused_report.operator("evens+double").expect("chain report");
        assert_eq!(chain.kind, NodeKind::Fused);
        assert_eq!(chain.stats.tuples_in, 10, "chain input = head stage input");
        assert_eq!(
            chain.stats.tuples_out, 5,
            "chain output = tail stage output"
        );
        // The chain report still names the original operators, with their counters.
        assert_eq!(chain.stages.len(), 2);
        let evens = fused_report.fused_stage("evens").expect("filter stage");
        assert_eq!(evens.tuples_in, 10);
        assert_eq!(evens.tuples_out, 5);
        let double = fused_report.fused_stage("double").expect("map stage");
        assert_eq!(double.tuples_in, 5);
        assert_eq!(double.tuples_out, 5);
        // Unfused reports carry no stage breakdown and count identically.
        let plain = unfused_report.operator("evens").unwrap();
        assert!(plain.stages.is_empty());
        assert_eq!(plain.stats.tuples_out, 5);
    }

    #[test]
    fn fusion_stops_at_multi_stream_boundaries() {
        // multiplex (fan-out) and union (fan-in) are never fused; the stateless
        // stages on each branch fuse among themselves only.
        let mut q = Query::with_config(NoProvenance, QueryConfig::default().with_fusion(true));
        let src = q.source("numbers", VecSource::with_period((0..20i64).collect(), 500));
        let branches = q.multiplex("mux", src, 2);
        let mut it = branches.into_iter();
        let small = q.filter("small", it.next().unwrap(), |x| *x < 5);
        let small2 = q.map_one("small2", small, |x| x + 100);
        let large = q.filter("large", it.next().unwrap(), |x| *x >= 15);
        let merged = q.union("union", vec![small2, large]);
        let out = q.collecting_sink("sink", merged);
        let report = q.deploy().unwrap().wait().unwrap();
        let mut values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
        values.sort_unstable();
        assert_eq!(values, vec![15, 16, 17, 18, 19, 100, 101, 102, 103, 104]);
        // source, mux, fused(small+small2), large, union, sink = 6 physical ops.
        assert_eq!(report.operator_stats().len(), 6);
        assert!(report.operator("small+small2").is_some());
        assert!(
            report.operator("large").is_some(),
            "single-stage chains report as the plain operator"
        );
        assert!(report.operator("large").unwrap().stages.is_empty());
    }

    #[test]
    fn dot_export_renders_fused_chain_as_single_box() {
        let mut q = Query::with_config(NoProvenance, QueryConfig::default().with_fusion(true));
        let src = q.source("numbers", VecSource::with_period(vec![1i64], 1));
        let flt = q.filter("evens", src, |x| x % 2 == 0);
        let doubled = q.map_one("double", flt, |x| x * 2);
        let _ = q.collecting_sink("sink", doubled);
        let dot = q.to_dot();
        // One boxed node lists both stage names; the member nodes are not drawn.
        assert!(dot.contains("shape=box label=\"evens \u{2192} double\\n(fused)\""));
        assert!(!dot.contains("(filter)"));
        assert!(!dot.contains("(map)"));
        // Edges route through the chain box (head node id 1): source -> chain -> sink.
        assert!(dot.contains("n0 -> n1;\n"));
        assert!(dot.contains("n1 -> n3;\n"));
        // The channel-free internal edge is not drawn.
        assert!(!dot.contains("n1 -> n2"));
    }

    #[test]
    fn sink_with_callback_reports_latency_stats() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("numbers", VecSource::with_period((0..5i64).collect(), 100));
        let stats = q.sink("sink", src, |_| {});
        q.deploy().unwrap().wait().unwrap();
        assert_eq!(stats.tuple_count(), 5);
        assert_eq!(stats.latencies_ns().len(), 5);
    }

    #[test]
    fn aggregate_and_join_compose_in_a_query() {
        // Count readings per meter per tumbling 1-hour window, then join with the
        // original readings at the same hour.
        let mut q = Query::new(NoProvenance);
        let readings: Vec<(u32, i64)> = (0..8).map(|i| (i % 2, i as i64)).collect();
        let src = q.source(
            "meters",
            VecSource::with_period(readings, 15 * 60 * 1_000), // every 15 minutes
        );
        let branches = q.multiplex("mux", src, 2);
        let mut it = branches.into_iter();
        let left = it.next().unwrap();
        let right = it.next().unwrap();
        let counts = q.aggregate(
            "hourly",
            left,
            WindowSpec::tumbling(Duration::from_hours(1)).unwrap(),
            |r: &(u32, i64)| r.0,
            |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
        );
        let joined = q.join(
            "match",
            counts,
            right,
            Duration::from_hours(1),
            |c: &(u32, i64), r: &(u32, i64)| c.0 == r.0,
            |c: &(u32, i64), r: &(u32, i64)| (c.0, c.1, r.1),
        );
        let out = q.collecting_sink("sink", joined);
        q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        // Every joined tuple pairs a count with a reading of the same meter.
        for t in out.tuples() {
            assert!(t.data.0 == 0 || t.data.0 == 1);
        }
    }
}
