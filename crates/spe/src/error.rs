//! Error types for query construction and execution.

use std::fmt;

/// Error returned by query construction, deployment and execution.
///
/// The variants distinguish *construction-time* problems (invalid windows, unconnected
/// streams) from *run-time* problems (an operator thread panicking or a channel closing
/// unexpectedly).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpeError {
    /// A query was built with an invalid configuration (empty window, zero advance,
    /// a union with no inputs, ...). The payload describes the offending parameter.
    InvalidQuery(String),
    /// A stream produced by an operator was never connected to a downstream operator
    /// and was not explicitly discarded with [`crate::query::Query::discard`].
    UnconnectedStream {
        /// Name of the operator producing the dangling stream.
        producer: String,
    },
    /// An operator thread panicked while the query was running.
    OperatorPanicked {
        /// Name of the operator whose thread panicked.
        operator: String,
    },
    /// An operator failed at run time (e.g. its output channel closed prematurely).
    Runtime {
        /// Name of the failing operator.
        operator: String,
        /// Human-readable description of the failure.
        message: String,
    },
    /// The deploy-time analyzer found error-severity diagnostics and the planner
    /// runs with [`AnalysisMode::Deny`](crate::planner::AnalysisMode::Deny). The
    /// payload is the rendered diagnostics report.
    PlanRejected {
        /// The rendered [`Diagnostics`](genealog_analysis::Diagnostics) report
        /// (one line per finding plus a summary line).
        report: String,
    },
    /// Every recovery attempt of [`crate::state::run_with_recovery`] failed.
    RecoveryExhausted {
        /// Number of runs attempted (initial attempt included).
        attempts: usize,
        /// The error of the last failed attempt.
        last_error: Box<SpeError>,
    },
}

impl fmt::Display for SpeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            SpeError::UnconnectedStream { producer } => {
                write!(f, "output stream of operator `{producer}` is not connected")
            }
            SpeError::OperatorPanicked { operator } => {
                write!(f, "operator `{operator}` panicked")
            }
            SpeError::Runtime { operator, message } => {
                write!(f, "operator `{operator}` failed: {message}")
            }
            SpeError::PlanRejected { report } => {
                write!(f, "plan rejected by the deploy-time analyzer:\n{report}")
            }
            SpeError::RecoveryExhausted {
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts: {last_error}"
                )
            }
        }
    }
}

impl std::error::Error for SpeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpeError::InvalidQuery("window size must be positive".into());
        assert!(e.to_string().contains("window size"));
        let e = SpeError::UnconnectedStream {
            producer: "map".into(),
        };
        assert!(e.to_string().contains("map"));
        let e = SpeError::OperatorPanicked {
            operator: "agg".into(),
        };
        assert!(e.to_string().contains("agg"));
        let e = SpeError::Runtime {
            operator: "sink".into(),
            message: "channel closed".into(),
        };
        assert!(e.to_string().contains("channel closed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpeError>();
    }
}
