//! # genealog-spe — a deterministic, lightweight stream processing engine
//!
//! This crate is the *substrate* of the GeneaLog reproduction: a small stream
//! processing engine (SPE) in the spirit of [Liebre], the engine the original paper
//! builds on. It provides the standard streaming operators of the paper's §2
//! (Source, Map, Filter, Multiplex, Union, Aggregate, Join, Sink), deterministic
//! timestamp-ordered processing, sliding time windows, a typed query-builder API and
//! a thread-per-operator runtime with bounded, back-pressured channels. Stateful
//! operators can additionally run as N key-partitioned shard instances (the
//! [`parallel`] module: shuffle exchange → shards → provenance-safe fan-in) without
//! changing results or provenance.
//!
//! The engine deliberately knows nothing about *how* provenance metadata is
//! represented. Instead it exposes the [`provenance::ProvenanceSystem`] extension
//! point: every tuple is a [`tuple::GTuple<T, M>`] whose `M` metadata is produced by
//! the provenance system's hook exactly where the paper instruments the corresponding
//! operator. The `genealog` crate implements the paper's fixed-size metadata on top of
//! this hook; the `genealog-baseline` crate implements the Ariadne-style
//! variable-length annotations used as the evaluation baseline; [`provenance::NoProvenance`]
//! is the zero-cost "NP" configuration.
//!
//! ## Quick example
//!
//! ```rust
//! use genealog_spe::prelude::*;
//!
//! # fn main() -> Result<(), SpeError> {
//! // A query that doubles even numbers, with no provenance tracking.
//! let mut q = Query::new(NoProvenance);
//! let numbers = q.source("numbers", VecSource::with_period((0..100i64).collect(), 1_000));
//! let evens = q.filter("evens", numbers, |x| x % 2 == 0);
//! let doubled = q.map_one("double", evens, |x| x * 2);
//! let out = q.collecting_sink("out", doubled);
//! q.deploy()?.wait()?;
//! assert_eq!(out.tuples().len(), 50);
//! # Ok(())
//! # }
//! ```
//!
//! [Liebre]: https://github.com/vincenzo-gulisano/Liebre

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod fusion;
pub mod logical;
pub mod merge;
pub mod metrics;
pub mod operator;
pub mod parallel;
pub mod persist;
pub mod planner;
pub mod provenance;
pub mod query;
pub mod runtime;
pub mod state;
pub mod time;
pub mod tuple;
pub mod window;

/// Convenience re-exports of the types needed to build and run queries.
pub mod prelude {
    pub use crate::channel::{Batch, BatchConfig};
    pub use crate::error::SpeError;
    pub use crate::logical::{Analyzed, LogicalPlan, LogicalStream};
    pub use crate::operator::aggregate::WindowView;
    pub use crate::operator::sink::CollectedStream;
    pub use crate::operator::source::{RateLimit, SourceConfig, SourceGenerator, VecSource};
    pub use crate::parallel::Parallelism;
    pub use crate::planner::{AnalysisMode, PlannerConfig};
    pub use crate::provenance::{MetaData, NoProvenance, ProvenanceSystem};
    pub use crate::query::{Query, QueryConfig, StreamRef};
    pub use crate::runtime::{QueryHandle, QueryReport};
    pub use crate::state::{
        run_with_recovery, CheckpointConfig, CheckpointStore, InMemoryBackend, RecoveryConfig,
        SerializingBackend, Snapshot, StateBackend,
    };
    pub use crate::time::{Duration, Timestamp};
    pub use crate::tuple::{Element, GTuple, TupleData, TupleId};
    pub use crate::window::WindowSpec;
}

pub use channel::{Batch, BatchConfig};
pub use error::SpeError;
pub use logical::{Analyzed, LogicalPlan, LogicalStream};
pub use parallel::Parallelism;
pub use planner::{AnalysisMode, PlannerConfig};
pub use provenance::{NoProvenance, ProvenanceSystem};
pub use query::{Query, QueryConfig, StreamRef};
pub use runtime::{QueryHandle, QueryReport};
pub use state::{
    run_with_recovery, CheckpointConfig, CheckpointHandle, CheckpointStore, InMemoryBackend,
    RecoveryConfig, SerializingBackend, Snapshot, StateBackend,
};
pub use time::{Duration, Timestamp};
pub use tuple::{Element, GTuple, TupleData, TupleId};
pub use window::WindowSpec;
