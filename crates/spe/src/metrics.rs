//! Per-operator bindings into the live [`MetricsRegistry`].
//!
//! Every [`Query`](crate::query::Query) owns one registry. When a node is added
//! the query mints a deferred [`OpMetrics`] cell for it; at
//! [`deploy`](crate::query::Query::deploy) time the cell is bound to the node's
//! *logical* name (the shard-group name for sharded operators, so all shard
//! instances of one logical operator share a label) and the query registers
//! summing collectors over the physical counters. Operators receive the cell
//! through [`Operator::set_metrics`](crate::operator::Operator::set_metrics) and
//! publish through [`OpCounters`] — two private atomic counters on the hot path,
//! no locks, no registry lookups per tuple.

use std::sync::{Arc, OnceLock};

use genealog_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// The bound state of an [`OpMetrics`] cell.
struct Bound {
    /// Logical operator name used as the `operator` label.
    name: String,
    registry: Arc<MetricsRegistry>,
    /// Private (not registry-keyed) counters: each physical operator instance
    /// gets its own pair, and the query registers a collector summing the pairs
    /// of all instances sharing a logical name.
    tuples_in: Arc<Counter>,
    tuples_out: Arc<Counter>,
}

/// A late-bound handle an operator publishes metrics through.
///
/// Created deferred (unbound) when the node is added to the query and bound at
/// deploy time; an operator run outside a deployed query (as unit tests do by
/// calling [`Operator::run`](crate::operator::Operator::run) directly) binds
/// itself lazily to a detached disabled registry, so counting always works.
#[derive(Clone)]
pub struct OpMetrics {
    inner: Arc<OnceLock<Bound>>,
}

impl std::fmt::Debug for OpMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.get() {
            Some(bound) => write!(f, "OpMetrics({})", bound.name),
            None => write!(f, "OpMetrics(deferred)"),
        }
    }
}

impl Default for OpMetrics {
    fn default() -> Self {
        Self::deferred()
    }
}

impl OpMetrics {
    /// Creates an unbound cell.
    pub fn deferred() -> Self {
        OpMetrics {
            inner: Arc::new(OnceLock::new()),
        }
    }

    /// Binds the cell to a logical name and registry. Idempotent: the first
    /// bind wins, which also makes the lazy self-bind in [`Self::handles`]
    /// safe.
    pub(crate) fn bind(&self, name: &str, registry: &Arc<MetricsRegistry>) {
        let _ = self.inner.set(Bound {
            name: name.to_string(),
            registry: Arc::clone(registry),
            tuples_in: Arc::new(Counter::default()),
            tuples_out: Arc::new(Counter::default()),
        });
    }

    /// The physical counter pair, if the cell is bound. Used by the query to
    /// register summing collectors at deploy time.
    pub(crate) fn counter_pair(&self) -> Option<(Arc<Counter>, Arc<Counter>)> {
        self.inner
            .get()
            .map(|b| (Arc::clone(&b.tuples_in), Arc::clone(&b.tuples_out)))
    }

    /// The hot-path publishing handle. Binds lazily (to `fallback_name` and a
    /// detached disabled registry) when the operator runs outside a deployed
    /// query.
    pub fn handles(&self, fallback_name: &str) -> OpCounters {
        let bound = self.inner.get_or_init(|| Bound {
            name: fallback_name.to_string(),
            registry: MetricsRegistry::disabled(),
            tuples_in: Arc::new(Counter::default()),
            tuples_out: Arc::new(Counter::default()),
        });
        OpCounters {
            name: bound.name.clone(),
            registry: Arc::clone(&bound.registry),
            tuples_in: Arc::clone(&bound.tuples_in),
            tuples_out: Arc::clone(&bound.tuples_out),
        }
    }
}

/// The per-instance publishing handle held for the duration of a run: two
/// atomic counters plus access to registry gauges/histograms labelled with the
/// operator's logical name.
pub struct OpCounters {
    name: String,
    registry: Arc<MetricsRegistry>,
    tuples_in: Arc<Counter>,
    tuples_out: Arc<Counter>,
}

impl OpCounters {
    /// The logical operator name (shard-group name for sharded operators).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counts one input tuple.
    #[inline]
    pub fn inc_in(&self) {
        self.tuples_in.inc();
    }

    /// Counts `n` input tuples.
    #[inline]
    pub fn add_in(&self, n: u64) {
        self.tuples_in.add(n);
    }

    /// Counts one output tuple.
    #[inline]
    pub fn inc_out(&self) {
        self.tuples_out.inc();
    }

    /// Counts `n` output tuples.
    #[inline]
    pub fn add_out(&self, n: u64) {
        self.tuples_out.add(n);
    }

    /// Input tuples counted so far by this instance.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.get()
    }

    /// Output tuples counted so far by this instance.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.get()
    }

    /// Snapshot of this instance's counts as the end-of-run
    /// [`OperatorStats`](crate::operator::OperatorStats), under the operator's
    /// physical name.
    pub fn stats(&self, physical_name: &str) -> crate::operator::OperatorStats {
        let mut stats = crate::operator::OperatorStats::new(physical_name.to_string());
        stats.tuples_in = self.tuples_in();
        stats.tuples_out = self.tuples_out();
        stats
    }

    /// A registry gauge named `metric`, labelled `operator=<logical name>`.
    /// Inert (set is a no-op) when metrics are disabled.
    pub fn gauge(&self, metric: &'static str) -> Arc<Gauge> {
        self.registry.gauge(metric, &[("operator", &self.name)])
    }

    /// A registry histogram named `metric`, labelled `operator=<logical
    /// name>`. Inert when metrics are disabled.
    pub fn histogram(&self, metric: &'static str) -> Arc<Histogram> {
        self.registry.histogram(metric, &[("operator", &self.name)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_cell_binds_lazily_with_fallback_name() {
        let cell = OpMetrics::deferred();
        let counters = cell.handles("solo");
        counters.inc_in();
        counters.add_out(3);
        assert_eq!(counters.name(), "solo");
        let stats = counters.stats("solo");
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.tuples_out, 3);
        // The gauge from a lazily-bound (disabled) registry is inert.
        let g = counters.gauge("genealog_source_replay_offset");
        g.set(42);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bound_cell_shares_counters_across_clones() {
        let registry = MetricsRegistry::new();
        let cell = OpMetrics::deferred();
        cell.bind("agg", &registry);
        // A later lazy bind must not replace the deploy-time bind.
        let counters = cell.clone().handles("wrong-name");
        assert_eq!(counters.name(), "agg");
        counters.add_in(5);
        let (tin, tout) = cell.counter_pair().expect("bound");
        assert_eq!(tin.get(), 5);
        assert_eq!(tout.get(), 0);
    }
}
