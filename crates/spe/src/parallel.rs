//! Key-partitioned parallel execution: shuffle exchange, sharded operator instances
//! and a provenance-safe fan-in.
//!
//! The paper's evaluation runs each query as a single chain of operator threads, which
//! caps throughput at one core per operator. This module adds the next scaling axis:
//! a keyed stream is split by a **shuffle exchange** ([`PartitionOp`], a deterministic
//! hash partitioner writing to one stream channel per shard), each shard runs its own
//! instance of a stateful operator (Aggregate or Join) with private windows and state,
//! and the shard outputs are reunified by a **canonicalising fan-in**
//! ([`KeyedMergeOp`]) built on [`DeterministicMerge`].
//!
//! # Why this is provenance-safe
//!
//! GeneaLog's provenance model (instrumented tuples carrying chain pointers) is
//! shard-agnostic as long as per-key order is preserved:
//!
//! * the partitioner *forwards* tuples (the same `Arc`, like Filter and Union — a
//!   type (i) operator in the paper's Definition 3.1), so no metadata is created or
//!   rewritten on the way into a shard;
//! * every key lands on exactly one shard, so each shard's window store sees exactly
//!   the per-key tuple sequence the single-instance operator would see — the
//!   `aggregate_meta` / `join_meta` hooks fire with identical inputs and the `U1`,
//!   `U2` and `N` chain pointers come out identical;
//! * the fan-in forwards the same `Arc`s in a canonical global order (timestamp,
//!   then group key, then per-key emission order), so downstream operators and sinks
//!   observe the same stream — and the same contribution graphs — as the
//!   single-instance plan, for **any** shard count.
//!
//! The canonical order matters: [`DeterministicMerge`] alone breaks timestamp ties by
//! input index, which would interleave equal-timestamp windows of different keys
//! differently for different shard counts. [`KeyedMergeOp`] therefore buffers each
//! equal-timestamp run and stable-sorts it by the operator's group key before
//! releasing it.
//!
//! # Example
//!
//! ```rust
//! use genealog_spe::parallel::Parallelism;
//! use genealog_spe::prelude::*;
//! use genealog_spe::operator::aggregate::WindowView;
//!
//! # fn main() -> Result<(), SpeError> {
//! let mut q = Query::new(NoProvenance);
//! let readings = q.source(
//!     "meters",
//!     VecSource::with_period((0..100u32).map(|i| (i % 8, i as i64)).collect(), 1_000),
//! );
//! // Count readings per meter in 1-minute tumbling windows, on 4 parallel shards.
//! let counts = q.sharded_aggregate(
//!     "count",
//!     readings,
//!     WindowSpec::tumbling(Duration::from_secs(60))?,
//!     |r: &(u32, i64)| r.0,
//!     |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
//!     |o: &(u32, i64)| o.0,
//!     Parallelism::instances(4),
//! );
//! let out = q.collecting_sink("sink", counts);
//! q.deploy()?.wait()?;
//! assert!(!out.is_empty());
//! # Ok(())
//! # }
//! ```

use std::cmp::Ordering as CmpOrdering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::channel::{OutputHandle, OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::merge::{DeterministicMerge, MergedElement};
use crate::metrics::{OpCounters, OpMetrics};
use crate::operator::aggregate::{AggregateOp, WindowView};
use crate::operator::filter::FilterStage;
use crate::operator::join::JoinOp;
use crate::operator::map::MapStage;
use crate::operator::{Operator, OperatorStats};
use crate::provenance::{MetaData, ProvenanceSystem};
use crate::query::{JoinShardPlacement, NodeKind, Query, ShardGroup, ShardPlacement, StreamRef};
use crate::time::Duration;
use crate::tuple::{Element, GTuple, TupleData};
use crate::window::WindowSpec;

/// Boxed key comparator ordering the payloads of an equal-timestamp run.
pub type KeyComparator<T> = Box<dyn FnMut(&T, &T) -> CmpOrdering + Send>;

/// Number of parallel instances a sharded operator runs with.
///
/// [`Parallelism::default()`] defers to the query-wide default
/// ([`QueryConfig::parallelism`](crate::query::QueryConfig)); an explicit
/// [`Parallelism::instances`] overrides it per operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Parallelism {
    /// Explicit instance count; 0 means "use the query default".
    instances: usize,
}

impl Parallelism {
    /// Runs the operator with exactly `n` parallel instances (clamped to at least 1,
    /// so an explicit request never silently falls back to the query default).
    pub const fn instances(n: usize) -> Self {
        Parallelism {
            instances: if n == 0 { 1 } else { n },
        }
    }

    /// Alias of [`Parallelism::instances`] reading naturally as a planner hint on a
    /// [`LogicalStream`](crate::logical::LogicalStream): `.with(Parallelism::shards(4))`.
    pub const fn shards(n: usize) -> Self {
        Self::instances(n)
    }

    /// Resolves the effective instance count against the query-wide default.
    pub fn resolve(self, default: usize) -> usize {
        let n = if self.instances == 0 {
            default
        } else {
            self.instances
        };
        n.max(1)
    }
}

/// Deterministic shard assignment: hashes `key` and reduces it modulo `shards`.
///
/// The hasher is seeded with a fixed state, so the assignment is stable across runs
/// and processes — a requirement for reproducible sharded execution (and for the
/// byte-identical output guarantee of the shard-equivalence tests).
pub fn shard_of<K: Hash + ?Sized>(key: &K, shards: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % shards.max(1) as u64) as usize
}

/// The shuffle-exchange operator: routes each tuple to the shard owning its key.
///
/// Partition is a *forwarding* operator (no provenance instrumentation, Definition 3.1
/// type (i)): it moves the input `Arc` to exactly one output, so shard-local operators
/// see the very tuples — and the very metadata — the single-instance plan would see.
/// Watermarks and the end-of-stream marker are broadcast to every shard, which keeps
/// each shard's window-closing schedule identical to the unsharded operator's.
pub struct PartitionOp<T, M> {
    name: String,
    input: StreamReceiver<T, M>,
    outputs: Vec<OutputSlot<T, M>>,
    shard_fn: Box<dyn FnMut(&T) -> usize + Send>,
    metrics: OpMetrics,
}

impl<T, M> PartitionOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    /// Creates a Partition operator.
    ///
    /// `shard_fn` must return an index below `outputs.len()` (out-of-range indices
    /// are clamped to the last shard).
    ///
    /// # Panics
    /// Panics if `outputs` is empty.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, M>,
        outputs: Vec<OutputSlot<T, M>>,
        shard_fn: Box<dyn FnMut(&T) -> usize + Send>,
    ) -> Self {
        assert!(
            !outputs.is_empty(),
            "Partition requires at least one output"
        );
        PartitionOp {
            name: name.into(),
            input,
            outputs,
            shard_fn,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<T, M> Operator for PartitionOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut outs: Vec<_> = self.outputs.iter().map(OutputSlot::open).collect();
        let counters = self.metrics.handles(&self.name);
        let last = outs.len() - 1;
        loop {
            for element in self.input.recv_batch() {
                match element {
                    Element::Tuple(tuple) => {
                        counters.inc_in();
                        let shard = (self.shard_fn)(&tuple.data).min(last);
                        // A closed shard means the query is shutting down; losing a
                        // key range would corrupt results, so stop the whole exchange.
                        if outs[shard].send_tuple(tuple).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                        counters.inc_out();
                    }
                    Element::Watermark(ts) => {
                        for out in &mut outs {
                            if out.send_watermark(ts).is_err() {
                                return Ok(counters.stats(&self.name));
                            }
                        }
                    }
                    Element::Barrier(epoch) => {
                        // Broadcast like watermarks: every shard observes the cut at
                        // the same position in its key range, so the shard instances
                        // snapshot a consistent global cut.
                        for out in &mut outs {
                            if out.send_barrier(epoch).is_err() {
                                return Ok(counters.stats(&self.name));
                            }
                        }
                    }
                    Element::End => {
                        for out in &mut outs {
                            let _ = out.send_end();
                        }
                        return Ok(counters.stats(&self.name));
                    }
                }
            }
        }
    }
}

/// The provenance-safe fan-in reunifying shard outputs into one canonical stream.
///
/// Built on [`DeterministicMerge`] for the global timestamp order, with one extra
/// step: each run of equal-timestamp tuples is buffered and stable-sorted by the
/// operator's group key before release. The merge alone breaks timestamp ties by
/// input index, which depends on how keys were spread over shards; the key sort makes
/// the output order `(timestamp, key, per-key emission order)` — independent of the
/// shard count, including the degenerate single-shard plan.
///
/// Like Union, the fan-in *forwards* tuples (same `Arc`), so GeneaLog chain pointers
/// pass through untouched.
///
/// The equal-timestamp run buffer is bounded by the number of tuples the upstream
/// operator emits *at one timestamp* (for an aggregate: at most one window output per
/// group key), not by a channel capacity — canonical ordering requires the whole run
/// before it can be sorted. Extremely skewed workloads (e.g. a join producing
/// quadratically many matches at a single timestamp) pay for that run in memory.
pub struct KeyedMergeOp<T, M> {
    name: String,
    inputs: Vec<StreamReceiver<T, M>>,
    output: OutputSlot<T, M>,
    cmp: KeyComparator<T>,
    metrics: OpMetrics,
}

impl<T, M> KeyedMergeOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    /// Creates a fan-in over the given shard outputs, ordering equal-timestamp runs
    /// with `cmp` (a comparison on the payloads' group keys).
    ///
    /// # Panics
    /// Panics if `inputs` is empty.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<StreamReceiver<T, M>>,
        output: OutputSlot<T, M>,
        cmp: KeyComparator<T>,
    ) -> Self {
        assert!(!inputs.is_empty(), "ShardMerge requires at least one input");
        KeyedMergeOp {
            name: name.into(),
            inputs,
            output,
            cmp,
            metrics: OpMetrics::deferred(),
        }
    }

    /// Sorts the buffered equal-timestamp run by key (stable, so per-key emission
    /// order survives) and releases it downstream. Returns `false` on shutdown.
    fn flush_run(
        run: &mut Vec<Arc<GTuple<T, M>>>,
        cmp: &mut (dyn FnMut(&T, &T) -> CmpOrdering + Send),
        out: &mut OutputHandle<T, M>,
        counters: &OpCounters,
    ) -> bool {
        run.sort_by(|a, b| cmp(&a.data, &b.data));
        for tuple in run.drain(..) {
            if out.send_tuple(tuple).is_err() {
                return false;
            }
            counters.inc_out();
        }
        true
    }
}

impl<T, M> Operator for KeyedMergeOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        let mut merge = DeterministicMerge::new(self.inputs);
        let mut cmp = self.cmp;
        // The run of equal-timestamp tuples currently being collected. It is released
        // once the merge proves the timestamp is complete (a later tuple, a strictly
        // later watermark, or end-of-stream).
        let mut run: Vec<Arc<GTuple<T, M>>> = Vec::new();
        loop {
            match merge.next() {
                MergedElement::Tuple(tuple, _) => {
                    counters.inc_in();
                    if run.first().is_some_and(|head| head.ts != tuple.ts)
                        && !Self::flush_run(&mut run, &mut *cmp, &mut out, &counters)
                    {
                        return Ok(counters.stats(&self.name));
                    }
                    run.push(tuple);
                }
                MergedElement::Watermark(ts) => {
                    // A watermark beyond the run's timestamp proves the run complete.
                    // A watermark at or below it must still be forwarded (held tuples
                    // have ts >= the watermark, so ordering semantics are preserved).
                    if run.first().is_some_and(|head| ts > head.ts)
                        && !Self::flush_run(&mut run, &mut *cmp, &mut out, &counters)
                    {
                        return Ok(counters.stats(&self.name));
                    }
                    if out.send_watermark(ts).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                MergedElement::Barrier(epoch) => {
                    // The aligned barrier proves every shard has emitted all outputs
                    // for the windows closed before the cut (watermarks precede the
                    // barrier on every shard channel), so the held run is complete:
                    // flush it and the fan-in crosses the barrier stateless.
                    if !Self::flush_run(&mut run, &mut *cmp, &mut out, &counters) {
                        return Ok(counters.stats(&self.name));
                    }
                    if out.send_barrier(epoch).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                MergedElement::End => {
                    let _ = Self::flush_run(&mut run, &mut *cmp, &mut out, &counters);
                    let _ = out.send_end();
                    return Ok(counters.stats(&self.name));
                }
            }
        }
    }
}

impl<P: ProvenanceSystem> Query<P> {
    /// Adds a shuffle exchange: hash-partitions `input` into `shards` streams, with
    /// all tuples of one key routed to the same shard. Watermarks are broadcast.
    ///
    /// The partitioner forwards tuples without copying or re-instrumenting them, so
    /// provenance metadata passes through untouched.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn partition<T, K, KF>(
        &mut self,
        name: &str,
        input: StreamRef<T, P::Meta>,
        shards: usize,
        mut key_fn: KF,
    ) -> Vec<StreamRef<T, P::Meta>>
    where
        T: TupleData,
        K: Hash,
        KF: FnMut(&T) -> K + Send + 'static,
    {
        assert!(shards > 0, "Partition requires at least one shard");
        let node = self.add_node(name, NodeKind::Partition);
        self.set_shard_group(node, name, shards);
        let rx = self.attach_input(input, node);
        let mut slots = Vec::with_capacity(shards);
        let mut streams = Vec::with_capacity(shards);
        for i in 0..shards {
            let (slot, mut stream) = self.new_output_stream(node, format!("{name}.shard{i}"));
            // The N shard channels are one logical edge split N ways: budget them
            // jointly so the exchange cannot buffer N× the configured capacity.
            stream.capacity_share = shards;
            slots.push(slot);
            streams.push(stream);
        }
        let shard_fn = Box::new(move |data: &T| shard_of(&key_fn(data), shards));
        let op = PartitionOp::new(name, rx, slots, shard_fn);
        self.set_operator(node, Box::new(op));
        streams
    }

    /// Adds a provenance-safe fan-in over shard outputs: the merged stream is ordered
    /// by `(timestamp, out_key, per-key emission order)`, independent of how many
    /// shards produced it.
    ///
    /// # Panics
    /// Panics if `inputs` is empty.
    pub fn keyed_merge<T, K, OK>(
        &mut self,
        name: &str,
        inputs: Vec<StreamRef<T, P::Meta>>,
        out_key: OK,
    ) -> StreamRef<T, P::Meta>
    where
        T: TupleData,
        K: Ord,
        OK: FnMut(&T) -> K + Send + 'static,
    {
        self.keyed_merge_cmp(name, inputs, crate::planner::merge_cmp(out_key))
    }

    /// [`Query::keyed_merge`] with an explicit run comparator instead of a key
    /// extractor (the form the planner stores while a shard region is open).
    pub(crate) fn keyed_merge_cmp<T>(
        &mut self,
        name: &str,
        inputs: Vec<StreamRef<T, P::Meta>>,
        cmp: KeyComparator<T>,
    ) -> StreamRef<T, P::Meta>
    where
        T: TupleData,
    {
        assert!(!inputs.is_empty(), "ShardMerge requires at least one input");
        let node = self.add_node(name, NodeKind::ShardMerge);
        self.set_shard_group(node, name, inputs.len());
        let rxs: Vec<_> = inputs
            .into_iter()
            .map(|stream| self.attach_input(stream, node))
            .collect();
        let (slot, stream) = self.new_output_stream(node, format!("{name}.out"));
        let op = KeyedMergeOp::new(name, rxs, slot, cmp);
        self.set_operator(node, Box::new(op));
        stream
    }

    /// Adds a key-partitioned Aggregate running `parallelism` shard instances.
    ///
    /// Semantics are identical to [`Query::aggregate`]: a sliding window `spec` with
    /// group-by `key_fn` and aggregation `agg_fn`. The stream is hash-partitioned on
    /// the group key, each shard aggregates its keys with a private window store, and
    /// the shard outputs are reunified in canonical `(timestamp, key)` order via
    /// `out_key` (the group key re-extracted from an output payload). Output tuples,
    /// their order, and their GeneaLog contribution graphs are identical for every
    /// shard count.
    #[allow(clippy::too_many_arguments)] // mirrors aggregate() plus the sharding knobs
    pub fn sharded_aggregate<I, O, K, KF, AF, OK>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        spec: WindowSpec,
        key_fn: KF,
        agg_fn: AF,
        out_key: OK,
        parallelism: Parallelism,
    ) -> StreamRef<O, P::Meta>
    where
        I: TupleData,
        O: TupleData,
        K: Ord + Hash + Clone + Send + Sync + 'static,
        KF: FnMut(&I) -> K + Clone + Send + 'static,
        AF: FnMut(&WindowView<'_, K, I, P::Meta>) -> O + Clone + Send + 'static,
        OK: FnMut(&O) -> K + Send + 'static,
    {
        let instances = parallelism.resolve(self.config().parallelism);
        let shards = self.shard_aggregate_streams(
            name,
            input,
            spec,
            key_fn,
            agg_fn,
            ShardPlacement::all_local(instances),
        );
        self.keyed_merge(&format!("{name}.merge"), shards, out_key)
    }

    /// Lowering core of a placed sharded Aggregate: the exchange and the shard
    /// instances (local threads or remote splices), *without* the fan-in. The
    /// returned shard streams carry the joint capacity share; the caller closes the
    /// region with [`Query::keyed_merge`] / `keyed_merge_cmp` — immediately
    /// ([`Query::sharded_aggregate`]) or after further per-shard stages (the planner).
    pub(crate) fn shard_aggregate_streams<I, O, K, KF, AF>(
        &mut self,
        name: &str,
        input: StreamRef<I, P::Meta>,
        spec: WindowSpec,
        key_fn: KF,
        agg_fn: AF,
        placements: Vec<ShardPlacement<P, I, O>>,
    ) -> Vec<StreamRef<O, P::Meta>>
    where
        I: TupleData,
        O: TupleData,
        K: Ord + Hash + Clone + Send + Sync + 'static,
        KF: FnMut(&I) -> K + Clone + Send + 'static,
        AF: FnMut(&WindowView<'_, K, I, P::Meta>) -> O + Clone + Send + 'static,
    {
        assert!(
            !placements.is_empty(),
            "a sharded operator needs at least one shard placement"
        );
        let instances = placements.len();
        let shards = self.partition(
            &format!("{name}.exchange"),
            input,
            instances,
            key_fn.clone(),
        );
        let mut outs = Vec::with_capacity(instances);
        for (i, (shard, placement)) in shards.into_iter().zip(placements).enumerate() {
            let mut stream = match placement {
                ShardPlacement::Local => {
                    let shard_name = format!("{name}[{i}]");
                    let node = self.add_node(shard_name.clone(), NodeKind::ShardedAggregate);
                    self.set_shard_group(node, name, instances);
                    let rx = self.attach_input(shard, node);
                    let (slot, stream) = self.new_output_stream(node, format!("{shard_name}.out"));
                    let op = AggregateOp::new(
                        shard_name,
                        rx,
                        slot,
                        spec,
                        key_fn.clone(),
                        agg_fn.clone(),
                        self.provenance().clone(),
                        self.checkpoint_handle(),
                    );
                    self.set_operator(node, Box::new(op));
                    stream
                }
                ShardPlacement::Remote(route) => route(self, i, shard),
            };
            // Shard outputs feeding the fan-in are one logical edge, whether the
            // shard ran in-process or on a remote instance.
            stream.capacity_share = instances;
            outs.push(stream);
        }
        outs
    }

    /// Adds a key-partitioned equi-key Join running `parallelism` shard instances.
    ///
    /// Both inputs are hash-partitioned on their key extractors (`left_key`,
    /// `right_key`), so matching pairs always meet inside the same shard; `predicate`
    /// further filters candidate pairs *within* a key — pairs whose keys differ never
    /// meet, which is what makes the join shardable. Shard outputs are reunified in
    /// canonical `(timestamp, out_key, per-key emission order)`.
    #[allow(clippy::too_many_arguments)] // mirrors join() plus the sharding knobs
    pub fn sharded_join<L, R, O, K, LK, RK, OK, PR, CF>(
        &mut self,
        name: &str,
        left: StreamRef<L, P::Meta>,
        right: StreamRef<R, P::Meta>,
        window: Duration,
        left_key: LK,
        right_key: RK,
        out_key: OK,
        predicate: PR,
        combine: CF,
        parallelism: Parallelism,
    ) -> StreamRef<O, P::Meta>
    where
        L: TupleData,
        R: TupleData,
        O: TupleData,
        K: Ord + Hash + Clone + Send + 'static,
        LK: FnMut(&L) -> K + Send + 'static,
        RK: FnMut(&R) -> K + Send + 'static,
        OK: FnMut(&O) -> K + Send + 'static,
        PR: FnMut(&L, &R) -> bool + Clone + Send + 'static,
        CF: FnMut(&L, &R) -> O + Clone + Send + 'static,
    {
        let instances = parallelism.resolve(self.config().parallelism);
        let shards = self.shard_join_streams(
            name,
            left,
            right,
            window,
            left_key,
            right_key,
            predicate,
            combine,
            JoinShardPlacement::all_local(instances),
        );
        self.keyed_merge(&format!("{name}.merge"), shards, out_key)
    }

    /// Lowering core of a placed sharded Join (see
    /// [`Query::shard_aggregate_streams`]): both exchanges and the shard instances,
    /// without the fan-in.
    #[allow(clippy::too_many_arguments)] // the full join declaration in one place
    pub(crate) fn shard_join_streams<L, R, O, K, LK, RK, PR, CF>(
        &mut self,
        name: &str,
        left: StreamRef<L, P::Meta>,
        right: StreamRef<R, P::Meta>,
        window: Duration,
        left_key: LK,
        right_key: RK,
        predicate: PR,
        combine: CF,
        placements: Vec<JoinShardPlacement<P, L, R, O>>,
    ) -> Vec<StreamRef<O, P::Meta>>
    where
        L: TupleData,
        R: TupleData,
        O: TupleData,
        K: Ord + Hash + Clone + Send + 'static,
        LK: FnMut(&L) -> K + Send + 'static,
        RK: FnMut(&R) -> K + Send + 'static,
        PR: FnMut(&L, &R) -> bool + Clone + Send + 'static,
        CF: FnMut(&L, &R) -> O + Clone + Send + 'static,
    {
        assert!(
            !placements.is_empty(),
            "a sharded operator needs at least one shard placement"
        );
        let instances = placements.len();
        let lefts = self.partition(&format!("{name}.lx"), left, instances, left_key);
        let rights = self.partition(&format!("{name}.rx"), right, instances, right_key);
        let mut outs = Vec::with_capacity(instances);
        for (i, ((l, r), placement)) in lefts.into_iter().zip(rights).zip(placements).enumerate() {
            let mut stream = match placement {
                JoinShardPlacement::Local => {
                    let shard_name = format!("{name}[{i}]");
                    let node = self.add_node(shard_name.clone(), NodeKind::ShardedJoin);
                    self.set_shard_group(node, name, instances);
                    let left_rx = self.attach_input(l, node);
                    let right_rx = self.attach_input(r, node);
                    let (slot, stream) = self.new_output_stream(node, format!("{shard_name}.out"));
                    let op = JoinOp::new(
                        shard_name,
                        left_rx,
                        right_rx,
                        slot,
                        window,
                        predicate.clone(),
                        combine.clone(),
                        self.provenance().clone(),
                        self.checkpoint_handle(),
                    );
                    self.set_operator(node, Box::new(op));
                    stream
                }
                JoinShardPlacement::Remote(route) => route(self, i, l, r),
            };
            // Shard outputs feeding the fan-in are one logical edge, whether the
            // shard ran in-process or on a remote instance.
            stream.capacity_share = instances;
            outs.push(stream);
        }
        outs
    }

    /// Lowering core of a per-shard Filter (one instance per shard stream, grouped
    /// for reporting; fuses within each shard under the fusion pass).
    ///
    /// Each shard gets its own instance `name[i]` of the predicate; the instances
    /// form a shard group, so the runtime folds their statistics into one report and
    /// DOT exports annotate them with the shard count. Under
    /// [`QueryConfig::fusion`](crate::query::QueryConfig) consecutive per-shard
    /// stateless stages fuse *within* each shard — never across the exchange or the
    /// fan-in, which are multi-stream fusion boundaries.
    pub(crate) fn filter_shard_streams<T, F>(
        &mut self,
        name: &str,
        shards: Vec<StreamRef<T, P::Meta>>,
        predicate: F,
    ) -> Vec<StreamRef<T, P::Meta>>
    where
        T: TupleData,
        F: FnMut(&T) -> bool + Clone + Send + 'static,
    {
        assert!(
            !shards.is_empty(),
            "a per-shard Filter requires at least one shard"
        );
        let instances = shards.len();
        shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                self.add_fused_stage(
                    &format!("{name}[{i}]"),
                    NodeKind::Filter,
                    Some(ShardGroup {
                        name: name.to_string(),
                        instances,
                    }),
                    shard,
                    FilterStage::new(predicate.clone()),
                )
            })
            .collect()
    }

    /// Lowering core of a per-shard Map (see [`Query::filter_shard_streams`]).
    pub(crate) fn map_shard_streams<I, O, F>(
        &mut self,
        name: &str,
        shards: Vec<StreamRef<I, P::Meta>>,
        function: F,
    ) -> Vec<StreamRef<O, P::Meta>>
    where
        I: TupleData,
        O: TupleData,
        F: FnMut(&I) -> Vec<O> + Clone + Send + 'static,
    {
        assert!(
            !shards.is_empty(),
            "a per-shard Map requires at least one shard"
        );
        let instances = shards.len();
        let provenance = self.provenance().clone();
        shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                self.add_fused_stage(
                    &format!("{name}[{i}]"),
                    NodeKind::Map,
                    Some(ShardGroup {
                        name: name.to_string(),
                        instances,
                    }),
                    shard,
                    MapStage::new(function.clone(), provenance.clone()),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::operator::source::VecSource;
    use crate::provenance::NoProvenance;
    use crate::time::Timestamp;

    fn tuple(ts: u64, key: u32, v: i64) -> Arc<GTuple<(u32, i64), ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, (key, v), ()))
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::default().resolve(1), 1);
        assert_eq!(Parallelism::default().resolve(8), 8);
        assert_eq!(Parallelism::instances(4).resolve(1), 4);
        // An explicit 0 clamps to one instance; it does NOT fall back to the default.
        assert_eq!(Parallelism::instances(0).resolve(3), 1);
        assert_eq!(Parallelism::default().resolve(0), 1);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7] {
            for key in 0u64..100 {
                let a = shard_of(&key, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of(&key, shards), "stable across calls");
            }
        }
        // Keys actually spread over shards (not all on one).
        let hit: std::collections::BTreeSet<usize> = (0u64..64).map(|k| shard_of(&k, 4)).collect();
        assert!(hit.len() > 1, "64 keys must use more than one of 4 shards");
    }

    #[test]
    fn partition_routes_keys_consistently_and_broadcasts_watermarks() {
        let (in_tx, in_rx) = stream_channel(64);
        let slots: Vec<OutputSlot<(u32, i64), ()>> = (0..3).map(|_| OutputSlot::new()).collect();
        let mut rxs = Vec::new();
        for slot in &slots {
            let (tx, rx) = stream_channel(64);
            slot.connect(tx);
            rxs.push(rx);
        }
        for i in 0..12u64 {
            in_tx
                .send(Element::Tuple(tuple(i, (i % 4) as u32, i as i64)))
                .unwrap();
        }
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(12)))
            .unwrap();
        in_tx.send(Element::End).unwrap();

        let op = PartitionOp::new(
            "part",
            in_rx,
            slots,
            Box::new(|t: &(u32, i64)| shard_of(&t.0, 3)),
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 12);
        assert_eq!(stats.tuples_out, 12);

        let mut key_to_shard: std::collections::BTreeMap<u32, usize> = Default::default();
        let mut total = 0;
        for (shard, rx) in rxs.iter_mut().enumerate() {
            let mut watermarks = 0;
            let mut last_value_per_key: std::collections::BTreeMap<u32, i64> = Default::default();
            loop {
                match rx.recv() {
                    Element::Tuple(t) => {
                        total += 1;
                        let prior = key_to_shard.insert(t.data.0, shard);
                        assert!(
                            prior.is_none_or(|p| p == shard),
                            "key {} seen on two shards",
                            t.data.0
                        );
                        // Per-key order is preserved.
                        if let Some(prev) = last_value_per_key.insert(t.data.0, t.data.1) {
                            assert!(prev < t.data.1);
                        }
                    }
                    Element::Watermark(_) => watermarks += 1,
                    Element::Barrier(_) => {}
                    Element::End => break,
                }
            }
            assert_eq!(watermarks, 1, "watermark broadcast to every shard");
        }
        assert_eq!(total, 12);
    }

    #[test]
    fn keyed_merge_canonicalises_equal_timestamp_runs() {
        // Two shards emit windows with the same timestamp for different keys; shard 1
        // holds the *smaller* key, so the raw merge tie-break (input index) would
        // order keys 2, 1 — the keyed merge must order them 1, 2.
        let (tx0, rx0) = stream_channel::<(u32, i64), ()>(16);
        let (tx1, rx1) = stream_channel::<(u32, i64), ()>(16);
        let out_slot = OutputSlot::new();
        let (out_tx, mut out_rx) = stream_channel(64);
        out_slot.connect(out_tx);

        tx0.send(Element::Tuple(tuple(10, 2, 20))).unwrap();
        tx0.send(Element::Tuple(tuple(10, 4, 40))).unwrap();
        tx0.send(Element::End).unwrap();
        tx1.send(Element::Tuple(tuple(10, 1, 10))).unwrap();
        tx1.send(Element::Tuple(tuple(10, 3, 30))).unwrap();
        tx1.send(Element::End).unwrap();

        let op = KeyedMergeOp::new(
            "merge",
            vec![rx0, rx1],
            out_slot,
            Box::new(|a: &(u32, i64), b: &(u32, i64)| a.0.cmp(&b.0)),
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 4);
        assert_eq!(stats.tuples_out, 4);

        let mut keys = Vec::new();
        loop {
            match out_rx.recv() {
                Element::Tuple(t) => keys.push(t.data.0),
                Element::Watermark(_) | Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        assert_eq!(keys, vec![1, 2, 3, 4]);
    }

    #[test]
    fn keyed_merge_releases_run_on_strictly_later_watermark() {
        let (tx0, rx0) = stream_channel::<(u32, i64), ()>(16);
        let out_slot = OutputSlot::new();
        let (out_tx, mut out_rx) = stream_channel(64);
        out_slot.connect(out_tx);

        tx0.send(Element::Tuple(tuple(5, 1, 1))).unwrap();
        // A watermark at the run's own timestamp must NOT release it (an equal-ts
        // tuple may still arrive)...
        tx0.send(Element::Watermark(Timestamp::from_secs(5)))
            .unwrap();
        tx0.send(Element::Tuple(tuple(5, 0, 0))).unwrap();
        // ...but a strictly later watermark must.
        tx0.send(Element::Watermark(Timestamp::from_secs(6)))
            .unwrap();
        tx0.send(Element::End).unwrap();

        let op = KeyedMergeOp::new(
            "merge",
            vec![rx0],
            out_slot,
            Box::new(|a: &(u32, i64), b: &(u32, i64)| a.0.cmp(&b.0)),
        );
        Box::new(op).run().unwrap();

        let mut seen: Vec<(bool, u64)> = Vec::new();
        loop {
            match out_rx.recv() {
                Element::Tuple(t) => seen.push((true, t.data.0 as u64)),
                Element::Watermark(ts) => seen.push((false, ts.as_secs())),
                Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        // Watermark 5 forwarded while the run is held; the run (key-sorted: 0 then 1)
        // is flushed before watermark 6 passes it.
        assert_eq!(seen, vec![(false, 5), (true, 0), (true, 1), (false, 6)]);
    }

    #[test]
    fn sharded_aggregate_matches_single_instance_aggregate() {
        fn run(instances: usize) -> Vec<(u64, u32, i64)> {
            let mut q = Query::new(NoProvenance);
            let items: Vec<(u32, i64)> = (0..64).map(|i| (i % 8, i as i64)).collect();
            let src = q.source("src", VecSource::with_period(items, 1_000));
            let sums = q.sharded_aggregate(
                "sum",
                src,
                WindowSpec::tumbling(Duration::from_secs(16)).unwrap(),
                |t: &(u32, i64)| t.0,
                |w: &WindowView<'_, u32, (u32, i64), ()>| {
                    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
                },
                |o: &(u32, i64)| o.0,
                Parallelism::instances(instances),
            );
            let out = q.collecting_sink("sink", sums);
            q.deploy().unwrap().wait().unwrap();
            out.tuples()
                .iter()
                .map(|t| (t.ts.as_secs(), t.data.0, t.data.1))
                .collect()
        }
        let one = run(1);
        let four = run(4);
        assert!(!one.is_empty());
        assert_eq!(one, four, "shard count must not change the output stream");
    }

    #[test]
    fn sharded_join_matches_pairs_within_keys() {
        let mut q = Query::new(NoProvenance);
        let left_items: Vec<(u32, i64)> = (0..16).map(|i| (i % 4, i as i64)).collect();
        let right_items: Vec<(u32, i64)> = (0..16).map(|i| (i % 4, 100 + i as i64)).collect();
        let left = q.source("left", VecSource::with_period(left_items, 1_000));
        let right = q.source("right", VecSource::with_period(right_items, 1_000));
        let joined = q.sharded_join(
            "match",
            left,
            right,
            Duration::from_secs(2),
            |l: &(u32, i64)| l.0,
            |r: &(u32, i64)| r.0,
            |o: &(u32, i64, i64)| o.0,
            |l: &(u32, i64), r: &(u32, i64)| l.0 == r.0,
            |l: &(u32, i64), r: &(u32, i64)| (l.0, l.1, r.1),
            Parallelism::instances(3),
        );
        let out = q.collecting_sink("sink", joined);
        q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        for t in out.tuples() {
            // Combined pairs agree on the key: left value i pairs with right 100 + j
            // where i ≡ j (mod 4).
            assert_eq!(t.data.1 % 4, (t.data.2 - 100) % 4);
        }
    }

    #[test]
    fn shard_group_reports_are_aggregated() {
        let mut q = Query::new(NoProvenance);
        let items: Vec<(u32, i64)> = (0..40).map(|i| (i % 5, i as i64)).collect();
        let src = q.source("src", VecSource::with_period(items, 1_000));
        let counts = q.sharded_aggregate(
            "agg",
            src,
            WindowSpec::tumbling(Duration::from_secs(10)).unwrap(),
            |t: &(u32, i64)| t.0,
            |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
            |o: &(u32, i64)| o.0,
            Parallelism::instances(4),
        );
        let out = q.collecting_sink("sink", counts);
        let report = q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        // The four shard threads appear as ONE report named after the logical
        // operator, with summed counters covering the whole input.
        let agg = report.operator("agg").expect("aggregated shard report");
        assert_eq!(agg.kind, NodeKind::ShardedAggregate);
        assert_eq!(agg.instances, 4);
        assert_eq!(agg.stats.tuples_in, 40);
        assert_eq!(agg.stats.tuples_out, out.len() as u64);
        assert!(
            report.operator("agg[0]").is_none(),
            "individual shard reports are folded away"
        );
        let exchange = report.operator("agg.exchange").expect("partition report");
        assert_eq!(exchange.kind, NodeKind::Partition);
        assert_eq!(exchange.stats.tuples_in, 40);
        assert_eq!(
            exchange.instances, 1,
            "the exchange is one thread, whatever its fan-out"
        );
    }

    #[test]
    fn shard_channels_are_budgeted_jointly() {
        use crate::query::QueryConfig;
        // The configured per-edge element budget must not be multiplied by the
        // exchange fan-out: the N partition channels (and the N shard-output
        // channels feeding the fan-in) share it, each getting capacity/N rounded up
        // to whole batches (floor one batch).
        let config = QueryConfig::default(); // 1024 elements, batch 32
        for n in [1usize, 2, 4] {
            let mut q = Query::with_config(NoProvenance, config);
            let items: Vec<(u32, i64)> = (0..8).map(|i| (i % 4, i as i64)).collect();
            let src = q.source("src", VecSource::with_period(items, 1_000));
            let counts = q.sharded_aggregate(
                "agg",
                src,
                WindowSpec::tumbling(Duration::from_secs(4)).unwrap(),
                |t: &(u32, i64)| t.0,
                |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
                |o: &(u32, i64)| o.0,
                Parallelism::instances(n),
            );
            let _ = q.collecting_sink("sink", counts);

            let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
            let mut exchange_total = 0usize;
            let mut fanin_total = 0usize;
            for ((from, to), budget) in q.edges().iter().zip(q.edge_budgets()) {
                if kinds[*from] == NodeKind::Partition {
                    exchange_total += budget;
                }
                if kinds[*to] == NodeKind::ShardMerge {
                    fanin_total += budget;
                }
            }
            // 1024 divides evenly by 1, 2 and 4 shards into whole 32-element
            // batches, so the joint headroom is exactly the configured capacity.
            assert_eq!(
                exchange_total, config.channel_capacity,
                "{n}-shard exchange headroom must equal the configured capacity"
            );
            assert_eq!(
                fanin_total, config.channel_capacity,
                "{n}-shard fan-in headroom must equal the configured capacity"
            );
        }
    }

    #[test]
    fn shard_channel_budget_floors_at_one_batch() {
        use crate::query::QueryConfig;
        // 8 shards sharing 100 elements with 32-element batches: each channel
        // floors at one whole batch rather than rounding down to zero.
        let mut q = Query::with_config(
            NoProvenance,
            QueryConfig {
                channel_capacity: 100,
                ..QueryConfig::default()
            },
        );
        let src = q.source(
            "src",
            VecSource::with_period((0..8u32).map(|i| (i, 0i64)).collect(), 1_000),
        );
        let shards = q.partition("part", src, 8, |t: &(u32, i64)| t.0);
        for shard in shards {
            let _ = q.collecting_sink(&format!("sink{}", shard.label()), shard);
        }
        let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
        for ((from, _), budget) in q.edges().iter().zip(q.edge_budgets()) {
            if kinds[*from] == NodeKind::Partition {
                assert_eq!(*budget, 32, "one whole batch per shard channel");
            }
        }
    }

    #[test]
    fn shard_local_stages_fuse_within_shards() {
        use crate::query::QueryConfig;
        // partition -> per-shard filter -> per-shard map -> keyed merge: with fusion
        // the stateless stages collapse within each shard (never across the exchange
        // or the fan-in), and the output stream is identical to the unfused plan.
        let run = |fusion: bool| {
            let mut q =
                Query::with_config(NoProvenance, QueryConfig::default().with_fusion(fusion));
            let items: Vec<(u32, i64)> = (0..64).map(|i| (i % 8, i as i64)).collect();
            let src = q.source("src", VecSource::with_period(items, 1_000));
            let shards = q.partition("part", src, 4, |t: &(u32, i64)| t.0);
            let kept = q.filter_shard_streams("keep", shards, |t: &(u32, i64)| t.1 % 2 == 0);
            let scaled = q.map_shard_streams("scale", kept, |t: &(u32, i64)| vec![(t.0, t.1 * 10)]);
            let merged = q.keyed_merge("merge", scaled, |t: &(u32, i64)| t.0);
            let out = q.collecting_sink("sink", merged);
            let report = q.deploy().unwrap().wait().unwrap();
            let values: Vec<(u64, u32, i64)> = out
                .tuples()
                .iter()
                .map(|t| (t.ts.as_secs(), t.data.0, t.data.1))
                .collect();
            (report, values)
        };
        let (unfused_report, unfused) = run(false);
        let (fused_report, fused) = run(true);
        assert!(!fused.is_empty());
        assert_eq!(fused, unfused, "shard-local fusion must not change results");
        // Unfused: src, part, 4 keep, 4 scale, merge, sink = 12 threads but the
        // shard groups fold to 6 reports; fused: the 4 keep+scale chains fold into
        // one grouped chain report.
        assert_eq!(unfused_report.operator_stats().len(), 6);
        assert_eq!(fused_report.operator_stats().len(), 5);
        let chain = fused_report.operator("keep+scale").expect("fused chain");
        assert_eq!(chain.kind, NodeKind::Fused);
        assert_eq!(chain.instances, 4, "one fused thread per shard");
        assert_eq!(chain.stats.tuples_in, 64);
        assert_eq!(chain.stats.tuples_out, 32);
        // Stage stats are summed across the shard chains under the logical names.
        let keep = fused_report.fused_stage("keep").expect("filter stage");
        assert_eq!(keep.tuples_in, 64);
        assert_eq!(keep.tuples_out, 32);
        let scale = fused_report.fused_stage("scale").expect("map stage");
        assert_eq!(scale.tuples_in, 32);
        assert_eq!(scale.tuples_out, 32);
        // Unfused grouped reports: same totals, reported per logical operator.
        assert_eq!(
            unfused_report.operator("keep").unwrap().stats.tuples_out,
            32
        );
        assert_eq!(unfused_report.operator("scale").unwrap().instances, 4);
    }

    #[test]
    fn query_default_parallelism_applies_to_sharded_operators() {
        use crate::query::QueryConfig;
        let mut q = Query::with_config(NoProvenance, QueryConfig::default().with_parallelism(3));
        let items: Vec<(u32, i64)> = (0..12).map(|i| (i % 3, i as i64)).collect();
        let src = q.source("src", VecSource::with_period(items, 1_000));
        let counts = q.sharded_aggregate(
            "agg",
            src,
            WindowSpec::tumbling(Duration::from_secs(4)).unwrap(),
            |t: &(u32, i64)| t.0,
            |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
            |o: &(u32, i64)| o.0,
            Parallelism::default(),
        );
        let out = q.collecting_sink("sink", counts);
        let report = q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        assert_eq!(report.operator("agg").unwrap().instances, 3);
    }
}
