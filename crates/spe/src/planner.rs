//! The planner: lowering [`LogicalPlan`](crate::logical::LogicalPlan)s to physical
//! [`Query`] graphs.
//!
//! The logical layer (see [`crate::logical`]) records *what* a query computes; this
//! module owns the decisions about *how* it executes:
//!
//! * **Parallelism** — a stateful operator annotated with
//!   [`Parallelism::shards`](crate::parallel::Parallelism::shards) (or placed
//!   explicitly) lowers to a Partition exchange, N shard instances and the
//!   provenance-safe fan-in; an unannotated operator lowers to the plain
//!   single-instance operator. The exchange is elided entirely when one local shard
//!   is requested — the planner, not the user, decides whether an exchange exists.
//! * **Placement** — each shard placement is either local (an operator thread of this
//!   SPE instance) or remote (spliced out through Send/Receive endpoints built by a
//!   [`ShardPlacement::Remote`](crate::query::ShardPlacement) route, e.g. the
//!   `remote_shard_group{,_gl}` helpers of the `genealog-distributed` crate).
//! * **Fusion** — [`PlannerConfig::fusion`] is **on by default**: every eligible
//!   stateless chain collapses into a single-thread fused pipeline, including the
//!   per-shard chains of an open shard region. (The legacy
//!   [`QueryConfig::fusion`](crate::query::QueryConfig) stays opt-in so existing
//!   physical-layer callers keep their report shapes.)
//! * **Shard regions** — between a sharded stateful operator and its fan-in the plan
//!   is an *open shard region* (`Lowered::Shards`): stateless operators lower to
//!   per-shard stages inside the region (the planner-owned successor of the
//!   removed `filter_shards`/`map_shards` entry points), and the canonical merge is inserted
//!   only where something genuinely needs the reunified stream — a stateful
//!   operator, a fan-out/fan-in, a sink, or a payload type change without a
//!   [`keyed`](crate::logical::LogicalStream::keyed) annotation.
//! * **Channel budgets** — lowering reuses the physical builder's joint edge
//!   budgeting: the N channels of an exchange (and of the fan-in, local or remote)
//!   share one per-edge element budget.

pub use genealog_analysis::AnalysisMode;

use crate::channel::BatchConfig;
use crate::parallel::KeyComparator;
use crate::provenance::ProvenanceSystem;
use crate::query::{Query, QueryConfig, StreamRef};
use crate::state::CheckpointConfig;
use crate::tuple::TupleData;

/// Configuration of the planner pass (see [`crate::logical`]).
///
/// Mirrors [`QueryConfig`] with one deliberate difference: **fusion is on by
/// default**. Fused chains report per-stage counters through
/// [`OperatorReport::stages`](crate::runtime::OperatorReport), so nothing is lost by
/// fusing; turn it off only to compare thread-per-operator execution.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Capacity (in elements) of the bounded channels between physical operators.
    pub channel_capacity: usize,
    /// Default batching configuration of operator outputs.
    pub batch: BatchConfig,
    /// Default shard count for stateful operators annotated with
    /// [`Parallelism::default()`](crate::parallel::Parallelism) (or not annotated at
    /// all). 1 lowers unannotated operators to their plain single-instance form.
    pub parallelism: usize,
    /// Whether eligible stateless chains fuse into single-thread pipelines.
    /// **On by default.**
    pub fusion: bool,
    /// When set, the lowered query runs with epoch-based checkpointing: sources
    /// inject barriers every [`CheckpointConfig::interval`] tuples and every
    /// stateful operator snapshots into the shared
    /// [`CheckpointStore`](crate::state::CheckpointStore). `None` (the default)
    /// lowers a checkpoint-free query — no barriers ever enter the dataflow.
    pub checkpoints: Option<CheckpointConfig>,
    /// Whether the lowered query publishes into a live
    /// [`MetricsRegistry`](genealog_metrics::MetricsRegistry) (see
    /// [`QueryConfig::metrics`]). On by default.
    pub metrics: bool,
    /// How lowering reacts to deploy-time analyzer findings (see
    /// `genealog-analysis`): [`AnalysisMode::Warn`] (the default) emits every
    /// finding on the global tracer and proceeds, [`AnalysisMode::Deny`] rejects
    /// plans with error-severity findings, [`AnalysisMode::Off`] skips the
    /// analyzer entirely.
    pub analysis: AnalysisMode,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            channel_capacity: 1024,
            batch: BatchConfig::default(),
            parallelism: 1,
            fusion: true,
            checkpoints: None,
            metrics: true,
            analysis: AnalysisMode::Warn,
        }
    }
}

impl PlannerConfig {
    /// Returns the configuration with a different default batch size.
    pub fn with_batch_size(mut self, size: usize) -> Self {
        self.batch = BatchConfig::with_size(size);
        self
    }

    /// Returns the configuration with batching disabled (flush every element).
    pub fn unbatched(mut self) -> Self {
        self.batch = BatchConfig::unbatched();
        self
    }

    /// Returns the configuration with a different per-edge channel capacity.
    pub fn with_channel_capacity(mut self, elements: usize) -> Self {
        self.channel_capacity = elements.max(1);
        self
    }

    /// Returns the configuration with a different default shard count (clamped to at
    /// least 1).
    pub fn with_parallelism(mut self, instances: usize) -> Self {
        self.parallelism = instances.max(1);
        self
    }

    /// Returns the configuration with the fusion pass enabled or disabled.
    pub fn with_fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// Returns the configuration with epoch-based checkpointing enabled: the lowered
    /// query registers its stateful operators with the config's store and sources
    /// inject a barrier every `config.interval` tuples.
    pub fn with_checkpoints(mut self, config: CheckpointConfig) -> Self {
        self.checkpoints = Some(config);
        self
    }

    /// Returns the configuration with live metrics publication enabled or disabled.
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Returns the configuration with a different deploy-time analysis mode.
    pub fn with_analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// The physical [`QueryConfig`] the planner hands to the lowered query.
    pub fn query_config(&self) -> QueryConfig {
        QueryConfig {
            channel_capacity: self.channel_capacity,
            batch: self.batch,
            parallelism: self.parallelism,
            fusion: self.fusion,
            metrics: self.metrics,
        }
    }
}

/// The planner's intermediate representation of one lowered logical stream.
///
/// A stream is either an ordinary physical stream, or an *open shard region*: the
/// per-shard streams of a key-partitioned operator whose canonical fan-in has not
/// been inserted yet. Keeping the region open lets downstream stateless operators
/// lower to per-shard stages (which fuse within each shard under
/// [`PlannerConfig::fusion`]) instead of forcing an early merge.
pub(crate) enum Lowered<P: ProvenanceSystem, T: TupleData> {
    /// A single reunified stream.
    Stream(StreamRef<T, P::Meta>),
    /// An open shard region awaiting its canonical fan-in.
    Shards {
        /// Logical name of the sharded operator (the fan-in is named
        /// `{group}.merge`, matching the legacy physical builder).
        group: String,
        /// The per-shard streams, already carrying the joint capacity share.
        streams: Vec<StreamRef<T, P::Meta>>,
        /// Comparator ordering equal-timestamp runs at the fan-in.
        cmp: KeyComparator<T>,
    },
}

impl<P: ProvenanceSystem, T: TupleData> Lowered<P, T> {
    /// Closes an open shard region by inserting the provenance-safe canonical
    /// fan-in; a plain stream passes through unchanged.
    pub(crate) fn seal(self, q: &mut Query<P>) -> StreamRef<T, P::Meta> {
        match self {
            Lowered::Stream(stream) => stream,
            Lowered::Shards {
                group,
                streams,
                cmp,
            } => q.keyed_merge_cmp(&format!("{group}.merge"), streams, cmp),
        }
    }
}

/// Builds the fan-in comparator from an output-key extractor (the merge orders
/// equal-timestamp runs by `(key, per-key emission order)`).
pub(crate) fn merge_cmp<T, K, OK>(mut out_key: OK) -> KeyComparator<T>
where
    T: TupleData,
    K: Ord,
    OK: FnMut(&T) -> K + Send + 'static,
{
    Box::new(move |a: &T, b: &T| out_key(a).cmp(&out_key(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_config_defaults_enable_fusion() {
        let config = PlannerConfig::default();
        assert!(config.fusion, "the planner fuses by default");
        assert_eq!(config.parallelism, 1);
        let qc = config.query_config();
        assert!(qc.fusion);
        assert_eq!(qc.channel_capacity, config.channel_capacity);
    }

    #[test]
    fn planner_config_builders_mirror_query_config() {
        let config = PlannerConfig::default()
            .with_batch_size(64)
            .with_parallelism(4)
            .with_channel_capacity(512)
            .with_fusion(false);
        let qc = config.query_config();
        assert_eq!(qc.batch.size, 64);
        assert_eq!(qc.parallelism, 4);
        assert_eq!(qc.channel_capacity, 512);
        assert!(!qc.fusion);
        // Explicit zeroes clamp instead of producing degenerate configs.
        assert_eq!(PlannerConfig::default().with_parallelism(0).parallelism, 1);
        assert_eq!(
            PlannerConfig::default()
                .with_channel_capacity(0)
                .channel_capacity,
            1
        );
    }

    #[test]
    fn merge_cmp_orders_by_extracted_key() {
        let mut cmp = merge_cmp(|t: &(u32, i64)| t.0);
        assert_eq!(cmp(&(1, 5), &(2, 0)), std::cmp::Ordering::Less);
        assert_eq!(cmp(&(3, 5), &(2, 9)), std::cmp::Ordering::Greater);
        assert_eq!(cmp(&(2, 1), &(2, 2)), std::cmp::Ordering::Equal);
    }
}
