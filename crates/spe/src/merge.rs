//! Deterministic, watermark-driven merging of multiple timestamp-sorted input streams.
//!
//! The paper assumes (§2) that operators with multiple input streams merge them *in
//! timestamp order*, so that query execution — and therefore provenance — is
//! deterministic and independent of thread interleaving or transmission latency.
//! [`DeterministicMerge`] implements that merge: it buffers elements per input and
//! only releases a tuple once every other input has proven (through a buffered tuple,
//! a watermark or end-of-stream) that it cannot produce an earlier one. Ties on the
//! timestamp are broken by input index, then by arrival order within an input, which
//! keeps the merge total and reproducible.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::channel::{Batch, StreamReceiver};
use crate::time::Timestamp;
use crate::tuple::{Element, GTuple};

/// An element produced by the merge, already in global timestamp order.
#[derive(Debug)]
pub enum MergedElement<T, M> {
    /// The next tuple in timestamp order, together with the index of the input stream
    /// it arrived on.
    Tuple(Arc<GTuple<T, M>>, usize),
    /// All inputs have progressed past this timestamp.
    Watermark(Timestamp),
    /// Every live input has delivered the barrier for this epoch and every buffered
    /// pre-barrier tuple has been released: the cut is aligned at this fan-in.
    Barrier(u64),
    /// Every input stream has ended and all buffers are drained.
    End,
}

#[derive(Debug)]
struct MergeInput<T, M> {
    rx: StreamReceiver<T, M>,
    buffer: VecDeque<Arc<GTuple<T, M>>>,
    /// Highest lower bound promised by this input (via watermarks or tuple timestamps).
    promised: Timestamp,
    /// Epoch barrier this input has reached and is now blocked on (checkpoint
    /// alignment): the input is not pumped again until every other live input
    /// reaches the same barrier.
    at_barrier: Option<u64>,
    ended: bool,
}

impl<T, M> MergeInput<T, M> {
    /// Smallest timestamp this input may still deliver.
    fn lower_bound(&self) -> Timestamp {
        if let Some(front) = self.buffer.front() {
            front.ts
        } else if self.ended || self.at_barrier.is_some() {
            // An input blocked on a barrier delivers nothing until the cut is
            // aligned, so it must not hold back the release of other inputs'
            // buffered pre-barrier tuples.
            Timestamp::MAX
        } else {
            self.promised
        }
    }

    /// Folds a received element into the local buffer/state.
    fn fold(&mut self, element: Element<T, M>) {
        match element {
            Element::Tuple(t) => {
                if t.ts > self.promised {
                    self.promised = t.ts;
                }
                self.buffer.push_back(t);
            }
            Element::Watermark(ts) => {
                if ts > self.promised {
                    self.promised = ts;
                }
            }
            Element::Barrier(epoch) => self.at_barrier = Some(epoch),
            Element::End => self.ended = true,
        }
    }

    /// Folds every element of a received batch, preserving arrival order.
    fn fold_batch(&mut self, batch: Batch<T, M>) {
        for element in batch {
            self.fold(element);
        }
    }
}

/// Merges `n` timestamp-sorted input streams into one timestamp-sorted element stream.
#[derive(Debug)]
pub struct DeterministicMerge<T, M> {
    inputs: Vec<MergeInput<T, M>>,
    emitted_watermark: Option<Timestamp>,
}

impl<T, M> DeterministicMerge<T, M> {
    /// Creates a merge over the given input streams.
    ///
    /// # Panics
    /// Panics if `receivers` is empty.
    pub fn new(receivers: Vec<StreamReceiver<T, M>>) -> Self {
        assert!(!receivers.is_empty(), "merge requires at least one input");
        DeterministicMerge {
            inputs: receivers
                .into_iter()
                .map(|rx| MergeInput {
                    rx,
                    buffer: VecDeque::new(),
                    promised: Timestamp::MIN,
                    at_barrier: None,
                    ended: false,
                })
                .collect(),
            emitted_watermark: None,
        }
    }

    /// Number of input streams.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Global lower bound: no future tuple can have a timestamp below this.
    fn frontier(&self) -> Timestamp {
        self.inputs
            .iter()
            .map(MergeInput::lower_bound)
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// Returns the next merged element, blocking on the inputs as needed.
    ///
    /// Not an `Iterator`: the merge never terminates by itself while inputs are
    /// open, and the blocking receive semantics do not fit `Iterator` adapters.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> MergedElement<T, M> {
        loop {
            // Candidate: the input with the smallest buffered head timestamp
            // (ties broken by input index because of the stable min_by_key scan).
            let candidate = self
                .inputs
                .iter()
                .enumerate()
                .filter_map(|(i, input)| input.buffer.front().map(|t| (i, t.ts)))
                .min_by_key(|&(i, ts)| (ts, i));

            let frontier = self.frontier();

            if let Some((idx, ts)) = candidate {
                // Safe to release the candidate if no other input can still produce an
                // earlier (or equally early, lower-index) tuple.
                let blocking = self.inputs.iter().enumerate().any(|(i, input)| {
                    input.buffer.front().is_none()
                        && !input.ended
                        && input.at_barrier.is_none()
                        && (input.promised < ts || (input.promised == ts && i < idx))
                });
                if !blocking {
                    let tuple = self.inputs[idx]
                        .buffer
                        .pop_front()
                        .expect("candidate buffer is non-empty");
                    return MergedElement::Tuple(tuple, idx);
                }
            } else {
                // No buffered tuples anywhere.
                if self.inputs.iter().all(|i| i.ended) {
                    return MergedElement::End;
                }
                // All live inputs blocked on a barrier and every pre-barrier tuple
                // released: the cut is aligned. Clear the marks and emit a single
                // barrier downstream (ended inputs count as trivially aligned).
                if self
                    .inputs
                    .iter()
                    .all(|i| i.ended || i.at_barrier.is_some())
                {
                    let epoch = self
                        .inputs
                        .iter()
                        .filter_map(|i| i.at_barrier)
                        .max()
                        .expect("at least one live input is at a barrier");
                    for input in &mut self.inputs {
                        input.at_barrier = None;
                    }
                    return MergedElement::Barrier(epoch);
                }
                // Propagate watermark progress so downstream windows can close even
                // while no tuples flow.
                if frontier > Timestamp::MIN
                    && frontier < Timestamp::MAX
                    && self.emitted_watermark.is_none_or(|w| frontier > w)
                {
                    self.emitted_watermark = Some(frontier);
                    return MergedElement::Watermark(frontier);
                }
            }

            // Receive more input. Blocking on one *specific* input can deadlock when
            // that input is quiet while another input's channel fills up and
            // back-pressures a shared upstream operator (e.g. a Multiplex feeding both
            // branches), so instead select over every input that has not yet ended and
            // fold whatever arrives first. The release decision above stays purely
            // timestamp-based, so determinism is unaffected by arrival order.
            if !self.pump_any() {
                return MergedElement::End;
            }
        }
    }

    /// Watermark the merge can currently guarantee to downstream operators.
    pub fn current_watermark(&self) -> Timestamp {
        self.frontier()
    }

    /// Blocks until any non-ended input delivers an element and folds it in.
    /// Returns `false` when every input has already ended.
    fn pump_any(&mut self) -> bool {
        // Drain partially consumed batches buffered inside a receiver before
        // selecting on the raw channels: elements held there (handed over by an
        // earlier per-element `recv`) would otherwise be invisible to the select.
        // Inputs blocked on a barrier are excluded entirely: consuming their
        // post-barrier elements before the cut is aligned would mix epochs. The
        // barrier is always the last element of the batch that carries it, so an
        // at-barrier input never holds unconsumed pre-barrier elements.
        for input in &mut self.inputs {
            if !input.ended && input.at_barrier.is_none() && input.rx.has_pending() {
                let batch = input.rx.recv_batch();
                input.fold_batch(batch);
                return true;
            }
        }
        let live: Vec<usize> = self
            .inputs
            .iter()
            .enumerate()
            .filter(|(_, input)| !input.ended && input.at_barrier.is_none())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return false;
        }
        let input_idx = {
            let mut select = crossbeam_channel::Select::new();
            for &i in &live {
                select.recv(self.inputs[i].rx.inner());
            }
            live[select.select().index()]
        };
        // Complete the receive through the StreamReceiver (not the raw channel) so
        // its element accounting stays correct; the operation is ready, so this does
        // not block, and a disconnect folds in as an End batch.
        let batch = self.inputs[input_idx].rx.recv_batch();
        self.inputs[input_idx].fold_batch(batch);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{stream_channel, StreamSender};
    use std::thread;

    type Tup = Arc<GTuple<i64, ()>>;

    fn t(ts: u64, v: i64) -> Tup {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    fn feed(tx: StreamSender<i64, ()>, items: Vec<(u64, i64)>) {
        for (ts, v) in items {
            tx.send(Element::Tuple(t(ts, v))).unwrap();
            tx.send(Element::Watermark(Timestamp::from_secs(ts)))
                .unwrap();
        }
        tx.send(Element::End).unwrap();
    }

    fn drain(merge: &mut DeterministicMerge<i64, ()>) -> Vec<(u64, i64, usize)> {
        let mut out = Vec::new();
        loop {
            match merge.next() {
                MergedElement::Tuple(tuple, idx) => out.push((tuple.ts.as_secs(), tuple.data, idx)),
                MergedElement::Watermark(_) | MergedElement::Barrier(_) => {}
                MergedElement::End => break,
            }
        }
        out
    }

    #[test]
    fn merges_two_sorted_streams_in_timestamp_order() {
        let (tx1, rx1) = stream_channel(16);
        let (tx2, rx2) = stream_channel(16);
        let h1 = thread::spawn(move || feed(tx1, vec![(1, 10), (3, 30), (5, 50)]));
        let h2 = thread::spawn(move || feed(tx2, vec![(2, 20), (4, 40), (6, 60)]));
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let out = drain(&mut merge);
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(
            out.iter().map(|&(ts, ..)| ts).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn ties_are_broken_by_input_index() {
        let (tx1, rx1) = stream_channel(16);
        let (tx2, rx2) = stream_channel(16);
        // Both inputs produce a tuple at ts=5; input 0 must win.
        feed(tx1, vec![(5, 100)]);
        feed(tx2, vec![(5, 200)]);
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let out = drain(&mut merge);
        assert_eq!(out, vec![(5, 100, 0), (5, 200, 1)]);
    }

    #[test]
    fn single_input_passthrough() {
        let (tx, rx) = stream_channel(16);
        feed(tx, vec![(1, 1), (2, 2)]);
        let mut merge = DeterministicMerge::new(vec![rx]);
        assert_eq!(merge.input_count(), 1);
        let out = drain(&mut merge);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input_does_not_block_the_merge() {
        let (tx1, rx1) = stream_channel(16);
        let (tx2, rx2) = stream_channel(16);
        feed(tx1, vec![(1, 1), (2, 2), (3, 3)]);
        // Input 2 ends immediately without tuples.
        tx2.send(Element::End).unwrap();
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let out = drain(&mut merge);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn watermarks_unblock_release_of_buffered_tuples() {
        let (tx1, rx1) = stream_channel(16);
        let (tx2, rx2) = stream_channel(16);
        // Input 0 has a tuple at ts=10 buffered, input 1 sends only a watermark at 20:
        // the tuple must be released without waiting for a tuple on input 1.
        tx1.send(Element::Tuple(t(10, 1))).unwrap();
        tx2.send(Element::Watermark(Timestamp::from_secs(20)))
            .unwrap();
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        match merge.next() {
            MergedElement::Tuple(tuple, 0) => assert_eq!(tuple.ts.as_secs(), 10),
            other => panic!("expected tuple from input 0, got {other:?}"),
        }
        tx1.send(Element::End).unwrap();
        tx2.send(Element::End).unwrap();
        // Possibly a few watermarks before the merge observes both End markers.
        loop {
            match merge.next() {
                MergedElement::End => break,
                MergedElement::Watermark(_) => continue,
                other => panic!("expected watermark or end, got {other:?}"),
            }
        }
    }

    #[test]
    fn emits_watermarks_while_idle() {
        let (tx1, rx1) = stream_channel::<i64, ()>(16);
        let (tx2, rx2) = stream_channel::<i64, ()>(16);
        tx1.send(Element::Watermark(Timestamp::from_secs(30)))
            .unwrap();
        tx2.send(Element::Watermark(Timestamp::from_secs(40)))
            .unwrap();
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        // Frontier is min(30, 40) = 30.
        match merge.next() {
            MergedElement::Watermark(ts) => assert_eq!(ts.as_secs(), 30),
            other => panic!("expected watermark, got {other:?}"),
        }
        tx1.send(Element::End).unwrap();
        tx2.send(Element::End).unwrap();
        loop {
            match merge.next() {
                MergedElement::End => break,
                MergedElement::Watermark(_) => continue,
                other => panic!("expected watermark or end, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_merge_panics() {
        let _ = DeterministicMerge::<i64, ()>::new(vec![]);
    }

    #[test]
    fn merge_drains_partially_consumed_batches() {
        // A receiver whose batch was partially consumed through recv() still hands
        // its locally buffered elements to the merge (pump_any drains pending
        // before selecting on the raw channels).
        let (tx1, mut rx1) = stream_channel::<i64, ()>(16);
        let (tx2, rx2) = stream_channel::<i64, ()>(16);
        let mut batch = crate::channel::Batch::new();
        batch.push(Element::Tuple(t(1, 10)));
        batch.push(Element::Tuple(t(2, 20)));
        tx1.send_batch(batch).unwrap();
        tx1.send(Element::End).unwrap();
        tx2.send(Element::End).unwrap();
        drop(tx1);
        drop(tx2);
        // Consume the first element directly; the second now sits in `pending`.
        assert_eq!(rx1.recv().as_tuple().unwrap().data, 10);
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let out = drain(&mut merge);
        assert_eq!(out, vec![(2, 20, 0)]);
    }

    #[test]
    fn select_path_receives_keep_element_accounting_accurate() {
        // Batches received through the select path must decrement the channel's
        // element counter exactly like direct receives: after a full drain the
        // receivers must report empty.
        let (tx1, rx1) = stream_channel::<i64, ()>(16);
        let (tx2, rx2) = stream_channel::<i64, ()>(16);
        let h1 = thread::spawn(move || {
            let mut batch = crate::channel::Batch::new();
            batch.push(Element::Tuple(t(1, 1)));
            batch.push(Element::Tuple(t(3, 3)));
            tx1.send_batch(batch).unwrap();
            tx1.send(Element::End).unwrap();
        });
        let h2 = thread::spawn(move || {
            let mut batch = crate::channel::Batch::new();
            batch.push(Element::Tuple(t(2, 2)));
            batch.push(Element::Tuple(t(4, 4)));
            tx2.send_batch(batch).unwrap();
            tx2.send(Element::End).unwrap();
        });
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let out = drain(&mut merge);
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(out.len(), 4);
        for input in &merge.inputs {
            assert!(input.rx.is_empty(), "drained receiver must report empty");
            assert_eq!(input.rx.len(), 0);
        }
    }

    #[test]
    fn barriers_align_across_inputs_before_being_forwarded() {
        let (tx1, rx1) = stream_channel::<i64, ()>(16);
        let (tx2, rx2) = stream_channel::<i64, ()>(16);
        // Input 0 reaches the barrier first, with a pre-barrier tuple still buffered;
        // input 1 trails with two tuples before its own barrier. The merge must
        // release every pre-barrier tuple, then emit exactly one aligned barrier.
        tx1.send(Element::Tuple(t(1, 10))).unwrap();
        tx1.send(Element::Barrier(1)).unwrap();
        tx2.send(Element::Tuple(t(2, 20))).unwrap();
        tx2.send(Element::Tuple(t(3, 30))).unwrap();
        tx2.send(Element::Barrier(1)).unwrap();
        tx1.send(Element::End).unwrap();
        tx2.send(Element::End).unwrap();
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let mut tuples = Vec::new();
        let mut barriers = Vec::new();
        loop {
            match merge.next() {
                MergedElement::Tuple(tuple, _) => {
                    assert!(barriers.is_empty(), "tuple released after the barrier");
                    tuples.push(tuple.ts.as_secs());
                }
                MergedElement::Barrier(epoch) => barriers.push(epoch),
                MergedElement::Watermark(_) => {}
                MergedElement::End => break,
            }
        }
        assert_eq!(tuples, vec![1, 2, 3]);
        assert_eq!(barriers, vec![1]);
    }

    #[test]
    fn barrier_aligns_against_an_ended_input() {
        let (tx1, rx1) = stream_channel::<i64, ()>(16);
        let (tx2, rx2) = stream_channel::<i64, ()>(16);
        tx1.send(Element::Tuple(t(1, 10))).unwrap();
        tx1.send(Element::Barrier(7)).unwrap();
        tx1.send(Element::End).unwrap();
        // Input 1 ends without ever seeing a barrier: it counts as aligned.
        tx2.send(Element::End).unwrap();
        let mut merge = DeterministicMerge::new(vec![rx1, rx2]);
        let mut saw_barrier = false;
        loop {
            match merge.next() {
                MergedElement::Barrier(epoch) => {
                    assert_eq!(epoch, 7);
                    saw_barrier = true;
                }
                MergedElement::End => break,
                _ => {}
            }
        }
        assert!(saw_barrier);
    }

    #[test]
    fn merge_of_many_inputs_is_globally_sorted() {
        let mut rxs = Vec::new();
        let mut handles = Vec::new();
        for k in 0..5u64 {
            let (tx, rx) = stream_channel(16);
            rxs.push(rx);
            handles.push(thread::spawn(move || {
                feed(
                    tx,
                    (0..20).map(|i| (k + i * 5, (k + i * 5) as i64)).collect(),
                )
            }));
        }
        let mut merge = DeterministicMerge::new(rxs);
        let out = drain(&mut merge);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(out.len(), 100);
        let ts: Vec<u64> = out.iter().map(|&(ts, ..)| ts).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }
}
