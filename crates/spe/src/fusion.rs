//! Physical-plan operator fusion: stateless chains collapsed into one thread.
//!
//! The thread-per-operator runtime pays one bounded channel — a lock, a wake-up and a
//! cache-line hand-off per batch — on **every** edge of the query graph, even between
//! operators that do nothing but forward or cheaply transform tuples. Batching (PR 1)
//! amortises that cost; fusion eliminates it: a contiguous chain of stateless
//! single-input/single-output operators (`filter → map → map …`) is collapsed into a
//! single [`FusedOp`] that runs every stage in one call stack on one thread, with no
//! intermediate channels, batches or back-pressure points. This is the classic
//! operator-chaining pass of production SPEs (Flink's chaining, Arcon's physical plan
//! collapse) applied to this engine's typed query builder.
//!
//! # How a chain is built
//!
//! The query builder keeps, per stateless node, a `PendingChain`: a composition of
//! [`FusedStage`]s rooted at the channel coming out of the nearest *unfusable*
//! upstream operator (a Source, a stateful operator, a Multiplex/Union, a shuffle
//! exchange or a shard merge). Adding another stateless operator on the chain's tail
//! stream extends the composition instead of allocating a channel; anything else —
//! attaching a stateful consumer, a sink, or deploying — seals the chain at its
//! current tail. Because [`StreamRef`](crate::query::StreamRef)s are consumed by
//! value, a chain tail has exactly one consumer by construction, so fusion never has
//! to reason about fan-out (fan-out is an explicit Multiplex, which is a fusion
//! boundary).
//!
//! Fusion composes with sharding: the per-shard streams of a
//! [`partition`](crate::query::Query::partition) are ordinary streams, so the
//! per-shard stateless stages the planner lowers into an open shard region fuse
//! *within* each shard — never across the exchange or the merge fan-in, which
//! are multi-stream operators and therefore natural boundaries.
//!
//! # Why fusion is provenance-transparent
//!
//! GeneaLog's instrumentation lives in the [`ProvenanceSystem`] hooks, and the fused
//! stages call exactly the hooks the standalone operators call, on exactly the same
//! `Arc`s, in exactly the same order: Filter forwards the input `Arc` untouched and
//! Map calls `map_meta(&input)` once per output tuple. The only thing fusion removes
//! is the transport between stages — which never touched metadata in the first place.
//! Contribution sets are therefore byte-identical fused vs unfused (pinned by
//! `tests/fusion.rs`).
//!
//! [`FusedStage`]: crate::operator::FusedStage
//! [`ProvenanceSystem`]: crate::provenance::ProvenanceSystem

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::channel::{ChannelClosed, OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::operator::{FusedStage, Operator, OperatorStats};
use crate::provenance::MetaData;
use crate::query::{NodeId, ShardGroup};
use crate::time::Timestamp;
use crate::tuple::{Element, GTuple, TupleData};

/// Per-stage tuple counters, shared between the running stage closures and the final
/// report so a fused chain can still account for each original operator.
///
/// A chain runs on a single thread; the atomics exist only to make the counters
/// shareable (`Sync`) between the chain and the runtime's reporting path, so relaxed
/// ordering is sufficient.
#[derive(Debug, Default)]
pub struct StageCounters {
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
}

impl StageCounters {
    pub(crate) fn add_in(&self) {
        self.tuples_in.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_out(&self) {
        self.tuples_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of input tuples the stage has processed.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    /// Number of output tuples the stage has emitted.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.load(Ordering::Relaxed)
    }
}

/// Reporting handle of one original operator folded into a fused chain: its logical
/// name plus the live counters of its stage.
#[derive(Debug, Clone)]
pub struct StageInfo {
    /// Logical operator name used in reports (the shard-group name for grouped
    /// stages, the node name otherwise).
    pub name: String,
    /// The stage's tuple counters.
    pub counters: Arc<StageCounters>,
}

impl StageInfo {
    /// Snapshot of the stage counters as an [`OperatorStats`] record.
    pub fn snapshot(&self) -> OperatorStats {
        let mut stats = OperatorStats::new(self.name.clone());
        stats.tuples_in = self.counters.tuples_in();
        stats.tuples_out = self.counters.tuples_out();
        stats
    }
}

/// Runs a sealed chain to completion: pulls elements from the captured head
/// receiver, passes tuples through the composed stages into the tuple sink, forwards
/// watermarks to the watermark sink and epoch barriers to the barrier sink, and
/// returns on end-of-stream or channel close. Stateless stages hold no state across
/// a barrier, so forwarding it through the chain boundary is the entire checkpoint
/// protocol for fused chains.
type ChainDriver<T, M> = Box<
    dyn FnOnce(
            &mut dyn FnMut(Arc<GTuple<T, M>>) -> Result<(), ChannelClosed>,
            &mut dyn FnMut(Timestamp) -> Result<(), ChannelClosed>,
            &mut dyn FnMut(u64) -> Result<(), ChannelClosed>,
        ) + Send,
>;

/// A fused chain under construction, typed by its current tail output `T`.
///
/// The chain owns the receiver of the channel entering its head stage and the output
/// slot of its tail stage; everything between is plain function composition.
pub(crate) struct PendingChain<T: TupleData, M: MetaData> {
    driver: ChainDriver<T, M>,
    /// Counters of the current tail stage. Its `tuples_out` is incremented at the
    /// chain's downstream boundary — at hand-off to the next stage when the chain is
    /// extended, after a successful channel send when it is sealed — so adjacent
    /// stage counters can never disagree about a hand-off, even when a closed
    /// downstream channel aborts processing midway.
    counters: Arc<StageCounters>,
    output: OutputSlot<T, M>,
}

impl<T: TupleData, M: MetaData> PendingChain<T, M> {
    /// Starts a chain at `stage`, pulling input from `rx` (the channel from the
    /// nearest unfusable upstream operator) and writing to `output` until extended.
    pub(crate) fn start<I: TupleData>(
        mut rx: StreamReceiver<I, M>,
        mut stage: Box<dyn FusedStage<I, T, M>>,
        counters: Arc<StageCounters>,
        output: OutputSlot<T, M>,
    ) -> Self {
        let stage_counters = Arc::clone(&counters);
        let driver: ChainDriver<T, M> = Box::new(move |emit, wm, barrier| loop {
            for element in rx.recv_batch() {
                match element {
                    Element::Tuple(tuple) => {
                        stage_counters.add_in();
                        if stage.process(tuple, &mut *emit).is_err() {
                            return;
                        }
                    }
                    Element::Watermark(ts) => {
                        if wm(ts).is_err() {
                            return;
                        }
                    }
                    Element::Barrier(epoch) => {
                        if barrier(epoch).is_err() {
                            return;
                        }
                    }
                    Element::End => return,
                }
            }
        });
        PendingChain {
            driver,
            counters,
            output,
        }
    }

    /// Extends the chain with one more stage. The old tail's output slot is dropped —
    /// the caller has already marked it as bypassed — and `output` becomes the new
    /// downstream boundary.
    pub(crate) fn then<O: TupleData>(
        self,
        mut stage: Box<dyn FusedStage<T, O, M>>,
        counters: Arc<StageCounters>,
        output: OutputSlot<O, M>,
    ) -> PendingChain<O, M> {
        let inner = self.driver;
        let prev = self.counters;
        let stage_counters = Arc::clone(&counters);
        let driver: ChainDriver<O, M> = Box::new(move |emit, wm, barrier| {
            inner(
                &mut |tuple| {
                    // The previous stage's output and this stage's input are the
                    // same hand-off event: count both sides together.
                    prev.add_out();
                    stage_counters.add_in();
                    stage.process(tuple, &mut *emit)
                },
                wm,
                barrier,
            )
        });
        PendingChain {
            driver,
            counters,
            output,
        }
    }
}

/// Type-erased handle to a [`PendingChain`], stored per chain tail in the query
/// builder. `into_any` recovers the typed chain for extension (the extending call
/// site knows the tail's output type statically from its `StreamRef`); `seal` turns
/// the chain into a runnable operator at deployment time.
pub(crate) trait SealableChain: Send {
    /// Recovers the typed chain for a downcast at an extension site.
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;

    /// Seals the chain into the operator that runs all stages on one thread. The
    /// tail stage's counters are the chain's own; only the head's are passed in.
    fn seal(self: Box<Self>, name: String, head: Arc<StageCounters>) -> FusedOp;
}

impl<T: TupleData, M: MetaData> SealableChain for PendingChain<T, M> {
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }

    fn seal(self: Box<Self>, name: String, head: Arc<StageCounters>) -> FusedOp {
        let driver = self.driver;
        let output = self.output;
        let tail = self.counters;
        let sink_tail = Arc::clone(&tail);
        FusedOp {
            name,
            head,
            tail,
            body: Box::new(move || {
                // Both sinks write to the same handle; the chain calls them strictly
                // sequentially on one thread, so the RefCell never contends.
                let out = std::cell::RefCell::new(output.open());
                driver(
                    &mut |t| {
                        out.borrow_mut().send_tuple(t)?;
                        // Counted only after a successful send: a tuple dropped by
                        // a closed downstream is not part of the chain's output,
                        // matching the standalone operators' accounting.
                        sink_tail.add_out();
                        Ok(())
                    },
                    &mut |ts| out.borrow_mut().send_watermark(ts),
                    &mut |epoch| out.borrow_mut().send_barrier(epoch),
                );
                let _ = out.into_inner().send_end();
            }),
        }
    }
}

/// A fused chain node collected by the query builder: the member nodes, the per-stage
/// reporting handles, the chain's shard group (when all stages belong to shard groups
/// of the same width) and the type-erased pending composition.
pub(crate) struct ChainEntry {
    /// Node ids of the fused stages, in stage order.
    pub(crate) nodes: Vec<NodeId>,
    /// Reporting handle of each stage, in stage order.
    pub(crate) stages: Vec<StageInfo>,
    /// Shard group of the whole chain (`None` for ungrouped chains). Grouped chains
    /// carry the member group names joined with `+`, identical across sibling shard
    /// chains, so the runtime folds the per-shard fused threads into one report.
    pub(crate) group: Option<ShardGroup>,
    /// The composable chain, downcast at extension sites, sealed at deployment.
    pub(crate) pending: Box<dyn SealableChain>,
}

impl ChainEntry {
    /// Whether a stage with the given shard group may extend this chain: both must
    /// be ungrouped, or both grouped with the same shard width (fusing across
    /// different widths would fuse across an exchange, which is never allowed).
    pub(crate) fn accepts(&self, group: Option<&ShardGroup>) -> bool {
        self.group.as_ref().map(|g| g.instances) == group.map(|g| g.instances)
    }

    /// Merges a newly fused stage's shard group into the chain group.
    pub(crate) fn merge_group(&mut self, group: Option<ShardGroup>) {
        self.group = match (self.group.take(), group) {
            (Some(mut current), Some(next)) => {
                current.name.push('+');
                current.name.push_str(&next.name);
                Some(current)
            }
            (None, None) => None,
            // `accepts` rules out grouped/ungrouped mixes.
            _ => unreachable!("fused stage group width mismatch"),
        };
    }
}

/// The fused operator: every stage of one stateless chain running on one thread.
///
/// Its own [`OperatorStats`] report the chain boundary (head input count, tail output
/// count); the per-stage counters of the original operators are reported through the
/// [`StageInfo`]s the runtime received at spawn time.
pub struct FusedOp {
    name: String,
    head: Arc<StageCounters>,
    tail: Arc<StageCounters>,
    body: Box<dyn FnOnce() + Send>,
}

impl std::fmt::Debug for FusedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedOp").field("name", &self.name).finish()
    }
}

impl Operator for FusedOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let this = *self;
        (this.body)();
        let mut stats = OperatorStats::new(this.name);
        stats.tuples_in = this.head.tuples_in();
        stats.tuples_out = this.tail.tuples_out();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::operator::filter::FilterStage;
    use crate::operator::map::MapStage;
    use crate::provenance::NoProvenance;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    /// Builds filter(even) → map(double) as a two-stage chain and runs it.
    #[test]
    fn two_stage_chain_runs_without_intermediate_channels() {
        let (in_tx, in_rx) = stream_channel::<i64, ()>(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        for i in 0..6i64 {
            in_tx.send(Element::Tuple(tuple(i as u64, i))).unwrap();
        }
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(6)))
            .unwrap();
        in_tx.send(Element::End).unwrap();

        let filter_counters = Arc::new(StageCounters::default());
        let map_counters = Arc::new(StageCounters::default());
        let chain = PendingChain::start(
            in_rx,
            Box::new(FilterStage::new(|v: &i64| v % 2 == 0)),
            Arc::clone(&filter_counters),
            OutputSlot::new(),
        );
        let chain = chain.then(
            Box::new(MapStage::new(|v: &i64| vec![v * 2], NoProvenance)),
            Arc::clone(&map_counters),
            out_slot,
        );
        let op = Box::new(chain).seal("evens+double".into(), Arc::clone(&filter_counters));
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.name, "evens+double");
        assert_eq!(stats.tuples_in, 6, "chain input = head stage input");
        assert_eq!(stats.tuples_out, 3, "chain output = tail stage output");
        assert_eq!(filter_counters.tuples_in(), 6);
        assert_eq!(filter_counters.tuples_out(), 3);
        assert_eq!(map_counters.tuples_in(), 3);
        assert_eq!(map_counters.tuples_out(), 3);

        let mut values = Vec::new();
        let mut watermarks = 0;
        loop {
            match out_rx.recv() {
                Element::Tuple(t) => values.push(t.data),
                Element::Watermark(_) => watermarks += 1,
                Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        assert_eq!(values, vec![0, 4, 8]);
        assert_eq!(watermarks, 1, "watermarks pass straight through the chain");
    }

    /// A closed downstream channel stops the chain gracefully mid-stream.
    #[test]
    fn chain_stops_when_downstream_closes() {
        let (in_tx, in_rx) = stream_channel::<i64, ()>(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, out_rx) = stream_channel::<i64, ()>(16);
        out_slot.connect(out_tx);
        drop(out_rx);

        in_tx.send(Element::Tuple(tuple(1, 2))).unwrap();
        in_tx.send(Element::End).unwrap();

        let counters = Arc::new(StageCounters::default());
        let chain = PendingChain::start(
            in_rx,
            Box::new(FilterStage::new(|_: &i64| true)),
            Arc::clone(&counters),
            out_slot,
        );
        let op = Box::new(chain).seal("f".into(), Arc::clone(&counters));
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.tuples_out, 0, "failed send is not counted");
    }

    /// Group compatibility: ungrouped fuses with ungrouped, equal widths fuse, and
    /// the merged group joins the member names.
    #[test]
    fn chain_group_rules() {
        let (_, rx) = stream_channel::<i64, ()>(1);
        let counters = Arc::new(StageCounters::default());
        let chain = PendingChain::<i64, ()>::start(
            rx,
            Box::new(FilterStage::new(|_: &i64| true)),
            counters,
            OutputSlot::new(),
        );
        let mut entry = ChainEntry {
            nodes: vec![0],
            stages: Vec::new(),
            group: Some(ShardGroup {
                name: "pre".into(),
                instances: 2,
            }),
            pending: Box::new(chain),
        };
        let same_width = ShardGroup {
            name: "post".into(),
            instances: 2,
        };
        let other_width = ShardGroup {
            name: "post".into(),
            instances: 4,
        };
        assert!(entry.accepts(Some(&same_width)));
        assert!(!entry.accepts(Some(&other_width)));
        assert!(!entry.accepts(None));
        entry.merge_group(Some(same_width));
        let merged = entry.group.as_ref().unwrap();
        assert_eq!(merged.name, "pre+post");
        assert_eq!(merged.instances, 2);
    }
}
