//! Batched stream channels connecting operators, and the output-port plumbing used by
//! the typed query builder.
//!
//! # Batched transport
//!
//! Operators exchange [`Batch`]es of [`Element`]s rather than individual elements, so
//! the per-tuple synchronisation cost of the underlying channel (lock, wake-up,
//! cache-line transfer) is amortised over [`BatchConfig::size`] tuples. The flush
//! policy preserves the engine's time semantics:
//!
//! * a **data tuple** is appended to the current batch, which is flushed once it
//!   reaches the configured size;
//! * a **watermark** is appended *and the batch is flushed immediately*, so a
//!   watermark is never reordered relative to the data elements that precede it and
//!   downstream windows close with unchanged timing;
//! * the **end-of-stream marker** likewise flushes the partial batch, so no element is
//!   ever stranded in a buffer.
//!
//! With `BatchConfig::size == 1` every element travels alone and the transport is
//! behaviourally identical to the original per-element design. Back-pressure is
//! retained: the channel is bounded in *batches*, so a fast producer still blocks when
//! the consumer falls behind.
//!
//! Every stream produced by an operator is consumed by **exactly one** downstream
//! operator (fan-out is expressed with the Multiplex operator, exactly as in the
//! paper's operator model). The builder hands the producing operator an
//! [`OutputSlot`]; when a consumer is attached, the slot is connected to the sending
//! half of a bounded channel and the consumer receives the receiving half. Unconnected
//! slots are rejected at deployment time unless explicitly discarded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use smallvec::SmallVec;

use crate::time::Timestamp;
use crate::tuple::{Element, GTuple};

/// Number of elements a [`Batch`] can hold without a heap allocation.
///
/// Deliberately smaller than the default [`BatchConfig`] size: the inline path is for
/// the frequent *runt* batches (watermark- and end-flushed partial runs, singleton
/// sends through [`StreamSender::send`]), while full-size data batches heap-allocate
/// once and are moved by pointer. A larger inline capacity would bloat every `Batch`
/// value moved through the channel.
pub const BATCH_INLINE_CAPACITY: usize = 8;

/// Per-operator batching configuration, threaded through the query builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of data elements accumulated before a batch is flushed downstream.
    /// Watermarks and end-of-stream markers always flush immediately.
    pub size: usize,
}

impl BatchConfig {
    /// A configuration flushing after every element (the unbatched seed behaviour).
    pub const fn unbatched() -> Self {
        BatchConfig { size: 1 }
    }

    /// A configuration flushing after `size` elements (clamped to at least 1).
    pub const fn with_size(size: usize) -> Self {
        BatchConfig {
            size: if size == 0 { 1 } else { size },
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { size: 32 }
    }
}

/// Converts an element-level buffer budget into a channel bound counted in batches.
///
/// The query builder configures channel capacity in *elements*; the underlying channel
/// is bounded in *batches*. Ceiling division guarantees the element budget is never
/// shrunk: `capacity = 100, batch_size = 32` yields 4 batch slots (128 elements of
/// head-room), not 3 (96).
///
/// The budget can only ever be *exceeded*, and only by the single-slot floor: a batch
/// size larger than the capacity still leaves one full batch in flight, which holds
/// `batch_size > capacity` elements. That over-allocation is not silent — it is
/// reported by [`batch_budget_checked`] and emitted as a
/// `batch-budget-over-allocation` event on the global
/// [`Tracer`](genealog_metrics::Tracer), once per distinct `capacity`/`batch_size`
/// combination (later occurrences of the same combination are routine once the
/// first is known; use [`batch_budget_checked`] to detect every case
/// programmatically). `capacity` here is the *per-channel* budget, which for shard
/// channels is the configured capacity already divided over the fan-out.
pub fn batch_budget(capacity: usize, batch_size: usize) -> usize {
    let (slots, over_allocated) = batch_budget_checked(capacity, batch_size);
    if over_allocated {
        genealog_metrics::Tracer::global().emit_once(
            "batch-budget-over-allocation",
            format!("capacity={capacity},batch={batch_size}"),
            format!(
                "batch size {batch_size} exceeds the channel's element budget of \
                 {capacity}; the one-batch floor over-allocates the channel to \
                 {batch_size} buffered elements"
            ),
        );
    }
    slots
}

/// [`batch_budget`] plus an explicit over-allocation flag.
///
/// Returns `(slots, over_allocated)`: `slots` is the channel bound in batches and
/// `over_allocated` is true exactly when the one-batch floor grants the edge *more*
/// elements than the configured capacity (i.e. `batch_size > capacity`, including the
/// degenerate `capacity == 0`). Callers that must not exceed an element budget can
/// use the flag to reject or clamp the configuration instead of relying on the log.
pub fn batch_budget_checked(capacity: usize, batch_size: usize) -> (usize, bool) {
    let size = batch_size.max(1);
    let slots = capacity.div_ceil(size).max(1);
    (slots, size > capacity)
}

/// A run of stream elements travelling through one channel send.
#[derive(Debug)]
pub struct Batch<T, M> {
    elements: SmallVec<[Element<T, M>; BATCH_INLINE_CAPACITY]>,
}

impl<T, M> Default for Batch<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, M> Batch<T, M> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Batch {
            elements: SmallVec::new(),
        }
    }

    /// Creates an empty batch sized for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Batch {
            elements: SmallVec::with_capacity(capacity),
        }
    }

    /// Creates a batch holding a single element.
    pub fn singleton(element: Element<T, M>) -> Self {
        let mut batch = Batch::new();
        batch.push(element);
        batch
    }

    /// Creates a batch holding only the end-of-stream marker.
    pub fn end() -> Self {
        Batch::singleton(Element::End)
    }

    /// Appends an element.
    pub fn push(&mut self, element: Element<T, M>) {
        self.elements.push(element);
    }

    /// Number of elements in the batch.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the batch holds no element.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterator over the contained elements.
    pub fn iter(&self) -> std::slice::Iter<'_, Element<T, M>> {
        self.elements.iter()
    }
}

impl<T, M> IntoIterator for Batch<T, M> {
    type Item = Element<T, M>;
    type IntoIter = std::vec::IntoIter<Element<T, M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.into_iter()
    }
}

impl<'a, T, M> IntoIterator for &'a Batch<T, M> {
    type Item = &'a Element<T, M>;
    type IntoIter = std::slice::Iter<'a, Element<T, M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T, M> Extend<Element<T, M>> for Batch<T, M> {
    fn extend<I: IntoIterator<Item = Element<T, M>>>(&mut self, iter: I) {
        self.elements.extend(iter);
    }
}

/// Error returned when sending on a stream whose consumer has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "downstream operator has shut down")
    }
}

impl std::error::Error for ChannelClosed {}

/// Sending half of a stream channel (batch-granular).
#[derive(Debug)]
pub struct StreamSender<T, M> {
    tx: Sender<Batch<T, M>>,
    /// Elements currently queued in the channel (shared with the receiver so
    /// [`StreamReceiver::len`] stays element-accurate under batching).
    queued_elements: Arc<AtomicUsize>,
    /// Optional back-pressure stall counter, incremented whenever a send finds the
    /// channel full and has to block. `None` (the default) keeps the hot path to a
    /// single blocking send.
    stalls: Option<Arc<genealog_metrics::Counter>>,
}

impl<T, M> Clone for StreamSender<T, M> {
    fn clone(&self) -> Self {
        StreamSender {
            tx: self.tx.clone(),
            queued_elements: Arc::clone(&self.queued_elements),
            stalls: self.stalls.clone(),
        }
    }
}

/// Receiving half of a stream channel.
///
/// The receiver unpacks arriving batches transparently: [`StreamReceiver::recv`]
/// yields one element at a time from an internal cursor, while
/// [`StreamReceiver::recv_batch`] hands over a whole batch for operators that iterate
/// their input in bulk.
#[derive(Debug)]
pub struct StreamReceiver<T, M> {
    rx: Receiver<Batch<T, M>>,
    /// Elements of partially consumed batches, in arrival order.
    pending: VecDeque<Element<T, M>>,
    /// Elements currently queued in the channel (shared with the senders).
    queued_elements: Arc<AtomicUsize>,
}

/// Creates a bounded stream channel with the given capacity (in batches).
///
/// Bounded capacity is what provides back-pressure: a fast upstream operator blocks
/// when the downstream operator cannot keep up, exactly like the queue-based
/// communication of the paper's SPE instances. Under batching the bound counts
/// *batches*, so the element-level buffer scales with the configured batch size.
pub fn stream_channel<T, M>(capacity: usize) -> (StreamSender<T, M>, StreamReceiver<T, M>) {
    let (tx, rx) = bounded(capacity.max(1));
    let queued_elements = Arc::new(AtomicUsize::new(0));
    (
        StreamSender {
            tx,
            queued_elements: Arc::clone(&queued_elements),
            stalls: None,
        },
        StreamReceiver {
            rx,
            pending: VecDeque::new(),
            queued_elements,
        },
    )
}

impl<T, M> StreamSender<T, M> {
    /// Sends a single element (as a one-element batch), blocking while the channel is
    /// full.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the consumer has been dropped.
    pub fn send(&self, element: Element<T, M>) -> Result<(), ChannelClosed> {
        self.send_batch(Batch::singleton(element))
    }

    /// Sends a whole batch, blocking while the channel is full. Empty batches are
    /// dropped without a channel operation.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the consumer has been dropped.
    pub fn send_batch(&self, batch: Batch<T, M>) -> Result<(), ChannelClosed> {
        if batch.is_empty() {
            return Ok(());
        }
        let elements = batch.len();
        self.queued_elements.fetch_add(elements, Ordering::Relaxed);
        // With a stall counter attached, try a non-blocking send first so a full
        // channel is observable before the blocking send parks the producer.
        let batch = match &self.stalls {
            Some(stalls) => match self.tx.send_timeout(batch, std::time::Duration::ZERO) {
                Ok(()) => return Ok(()),
                Err(crossbeam_channel::SendTimeoutError::Timeout(batch)) => {
                    stalls.inc();
                    batch
                }
                Err(crossbeam_channel::SendTimeoutError::Disconnected(_)) => {
                    self.queued_elements.fetch_sub(elements, Ordering::Relaxed);
                    return Err(ChannelClosed);
                }
            },
            None => batch,
        };
        self.tx.send(batch).map_err(|_| {
            self.queued_elements.fetch_sub(elements, Ordering::Relaxed);
            ChannelClosed
        })
    }

    /// Attaches a back-pressure stall counter: every send that finds the channel
    /// full bumps it once before blocking. Called by the query builder when the
    /// owning query has metrics enabled.
    pub fn set_stall_counter(&mut self, counter: Arc<genealog_metrics::Counter>) {
        self.stalls = Some(counter);
    }
}

impl<T, M> StreamReceiver<T, M> {
    /// The underlying channel receiver (used by multi-input operators to `select`
    /// over several inputs without committing to a blocking receive on one of them).
    ///
    /// Callers selecting on the raw receiver must drain [`StreamReceiver::has_pending`]
    /// elements first; the engine's multi-input operators do.
    pub(crate) fn inner(&self) -> &Receiver<Batch<T, M>> {
        &self.rx
    }

    /// True if elements of a partially consumed batch are buffered locally.
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Receives the next element, blocking until one is available.
    ///
    /// Returns [`Element::End`] if the producer has been dropped without sending an
    /// explicit end-of-stream marker, so consumers can treat both cases uniformly.
    pub fn recv(&mut self) -> Element<T, M> {
        loop {
            if let Some(element) = self.pending.pop_front() {
                return element;
            }
            match self.rx.recv() {
                Ok(batch) => {
                    self.queued_elements
                        .fetch_sub(batch.len(), Ordering::Relaxed);
                    self.pending.extend(batch);
                }
                Err(_) => return Element::End,
            }
        }
    }

    /// Receives the next run of elements, blocking until at least one is available.
    ///
    /// Returns a batch holding only [`Element::End`] if the producer has been dropped
    /// without an explicit end-of-stream marker.
    pub fn recv_batch(&mut self) -> Batch<T, M> {
        if !self.pending.is_empty() {
            let mut batch = Batch::with_capacity(self.pending.len());
            batch.extend(self.pending.drain(..));
            return batch;
        }
        match self.rx.recv() {
            Ok(batch) => {
                self.queued_elements
                    .fetch_sub(batch.len(), Ordering::Relaxed);
                batch
            }
            Err(_) => Batch::end(),
        }
    }

    /// Receives the next element, waiting at most `timeout`.
    ///
    /// Returns `None` on timeout and `Some(Element::End)` if the producer went away.
    pub fn recv_timeout(&mut self, timeout: std::time::Duration) -> Option<Element<T, M>> {
        if let Some(element) = self.pending.pop_front() {
            return Some(element);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(batch) => {
                self.queued_elements
                    .fetch_sub(batch.len(), Ordering::Relaxed);
                self.pending.extend(batch);
                self.pending.pop_front()
            }
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Element::End),
        }
    }

    /// Shared element-depth cell of the channel, for wiring queue-depth gauges.
    /// Counts elements queued in the channel (not the receiver's locally buffered
    /// run of a partially consumed batch).
    pub fn depth_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.queued_elements)
    }

    /// Number of elements currently buffered: queued in the channel plus locally
    /// buffered elements of a partially consumed batch.
    pub fn len(&self) -> usize {
        self.queued_elements.load(Ordering::Relaxed) + self.pending.len()
    }

    /// True if nothing is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug)]
enum SlotState<T, M> {
    Unconnected,
    Connected(StreamSender<T, M>),
    Discard,
}

/// The output port of an operator for one of its output streams.
///
/// Cloning an `OutputSlot` yields a handle to the *same* port (the builder keeps one
/// clone inside the producing operator and one inside the [`StreamRef`] it returns).
/// The slot carries the [`BatchConfig`] the builder assigned to the producing
/// operator; [`OutputSlot::open`] bakes it into the returned [`OutputHandle`].
///
/// [`StreamRef`]: crate::query::StreamRef
#[derive(Debug)]
pub struct OutputSlot<T, M> {
    state: Arc<Mutex<SlotState<T, M>>>,
    batch: BatchConfig,
}

impl<T, M> Clone for OutputSlot<T, M> {
    fn clone(&self) -> Self {
        OutputSlot {
            state: Arc::clone(&self.state),
            batch: self.batch,
        }
    }
}

impl<T, M> Default for OutputSlot<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, M> OutputSlot<T, M> {
    /// Creates a new, unconnected output slot that flushes after every element
    /// (matching the pre-batching behaviour for direct users of the channel layer).
    pub fn new() -> Self {
        Self::with_config(BatchConfig::unbatched())
    }

    /// Creates a new, unconnected output slot with the given batching configuration.
    pub fn with_config(batch: BatchConfig) -> Self {
        OutputSlot {
            state: Arc::new(Mutex::new(SlotState::Unconnected)),
            batch,
        }
    }

    /// The batching configuration operators opened from this slot will use.
    pub fn batch_config(&self) -> BatchConfig {
        self.batch
    }

    /// Connects the slot to a consumer's channel.
    ///
    /// # Panics
    /// Panics if the slot is already connected or discarded; the query builder
    /// guarantees this cannot happen because stream handles are consumed by value.
    pub fn connect(&self, sender: StreamSender<T, M>) {
        let mut state = self.state.lock();
        match &*state {
            SlotState::Unconnected => *state = SlotState::Connected(sender),
            _ => panic!("output slot connected twice"),
        }
    }

    /// Marks the slot as intentionally unconnected: elements sent to it are dropped.
    pub fn mark_discard(&self) {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Unconnected) {
            *state = SlotState::Discard;
        }
    }

    /// Whether a consumer (or an explicit discard) has been attached.
    pub fn is_connected(&self) -> bool {
        !matches!(*self.state.lock(), SlotState::Unconnected)
    }

    /// Resolves the slot into the handle the operator uses at run time.
    pub fn open(&self) -> OutputHandle<T, M> {
        let state = self.state.lock();
        let sender = match &*state {
            SlotState::Connected(sender) => Some(sender.clone()),
            SlotState::Discard | SlotState::Unconnected => None,
        };
        OutputHandle {
            sender,
            buffer: Batch::new(),
            batch_size: self.batch.size.max(1),
        }
    }
}

/// Run-time handle an operator uses to emit elements on one output stream.
///
/// The handle accumulates data tuples into a [`Batch`] and flushes it when the batch
/// reaches the configured size, when a watermark or end-of-stream marker is emitted,
/// or when [`OutputHandle::flush`] is called explicitly. A handle backed by a
/// discarded slot silently drops everything, which keeps operator code free of
/// special cases.
#[derive(Debug)]
pub struct OutputHandle<T, M> {
    sender: Option<StreamSender<T, M>>,
    buffer: Batch<T, M>,
    batch_size: usize,
}

impl<T, M> Clone for OutputHandle<T, M> {
    fn clone(&self) -> Self {
        OutputHandle {
            sender: self.sender.clone(),
            buffer: Batch::new(),
            batch_size: self.batch_size,
        }
    }
}

impl<T, M> OutputHandle<T, M> {
    /// Creates a handle that drops every element (used for discarded outputs).
    pub fn discard() -> Self {
        OutputHandle {
            sender: None,
            buffer: Batch::new(),
            batch_size: 1,
        }
    }

    /// The batch size this handle flushes at.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Emits a data tuple, flushing the accumulated batch once it is full.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_tuple(&mut self, tuple: Arc<GTuple<T, M>>) -> Result<(), ChannelClosed> {
        if self.sender.is_none() {
            return Ok(());
        }
        self.buffer.push(Element::Tuple(tuple));
        if self.buffer.len() >= self.batch_size {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Emits a watermark. Watermarks flush the batch immediately so they are never
    /// reordered relative to preceding data elements.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_watermark(&mut self, ts: Timestamp) -> Result<(), ChannelClosed> {
        if self.sender.is_none() {
            return Ok(());
        }
        self.buffer.push(Element::Watermark(ts));
        self.flush()
    }

    /// Emits an epoch barrier. Like watermarks, barriers flush the batch
    /// immediately, so a barrier is always the *last* element of the batch that
    /// carries it — fan-in alignment relies on this to know that an input which
    /// delivered a barrier has no pre-barrier elements left buffered.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_barrier(&mut self, epoch: u64) -> Result<(), ChannelClosed> {
        if self.sender.is_none() {
            return Ok(());
        }
        self.buffer.push(Element::Barrier(epoch));
        self.flush()
    }

    /// Emits the end-of-stream marker, flushing any partial batch ahead of it.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_end(&mut self) -> Result<(), ChannelClosed> {
        if self.sender.is_none() {
            return Ok(());
        }
        self.buffer.push(Element::End);
        self.flush()
    }

    /// Forwards an already-built element under the regular flush policy.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send(&mut self, element: Element<T, M>) -> Result<(), ChannelClosed> {
        match element {
            Element::Tuple(tuple) => self.send_tuple(tuple),
            Element::Watermark(ts) => self.send_watermark(ts),
            Element::Barrier(epoch) => self.send_barrier(epoch),
            Element::End => self.send_end(),
        }
    }

    /// Flushes the accumulated batch downstream, if any.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down; the
    /// buffered elements are dropped in that case, mirroring the pre-batching
    /// behaviour of a failed send.
    pub fn flush(&mut self) -> Result<(), ChannelClosed> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.buffer);
        match &self.sender {
            Some(tx) => tx.send_batch(batch),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    #[test]
    fn channel_round_trip_preserves_order() {
        let (tx, mut rx) = stream_channel::<i64, ()>(8);
        tx.send(Element::Tuple(tuple(1, 10))).unwrap();
        tx.send(Element::Watermark(Timestamp::from_secs(1)))
            .unwrap();
        tx.send(Element::End).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 10);
        assert!(matches!(rx.recv(), Element::Watermark(_)));
        assert!(rx.recv().is_end());
    }

    #[test]
    fn batched_send_preserves_order_across_batches() {
        let (tx, mut rx) = stream_channel::<i64, ()>(8);
        let mut batch = Batch::new();
        batch.push(Element::Tuple(tuple(1, 1)));
        batch.push(Element::Tuple(tuple(2, 2)));
        batch.push(Element::Watermark(Timestamp::from_secs(2)));
        tx.send_batch(batch).unwrap();
        tx.send_batch(Batch::end()).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        assert_eq!(rx.recv().as_tuple().unwrap().data, 2);
        assert!(matches!(rx.recv(), Element::Watermark(_)));
        assert!(rx.recv().is_end());
    }

    #[test]
    fn recv_batch_returns_whole_runs() {
        let (tx, mut rx) = stream_channel::<i64, ()>(8);
        let mut batch = Batch::with_capacity(2);
        batch.push(Element::Tuple(tuple(1, 1)));
        batch.push(Element::Tuple(tuple(2, 2)));
        tx.send_batch(batch).unwrap();
        let received = rx.recv_batch();
        assert_eq!(received.len(), 2);
        drop(tx);
        assert!(rx.recv_batch().iter().any(|e| e.is_end()));
    }

    #[test]
    fn recv_batch_drains_pending_elements_first() {
        let (tx, mut rx) = stream_channel::<i64, ()>(8);
        let mut batch = Batch::new();
        batch.push(Element::Tuple(tuple(1, 1)));
        batch.push(Element::Tuple(tuple(2, 2)));
        tx.send_batch(batch).unwrap();
        // recv() consumes the first element, leaving one pending.
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        assert!(rx.has_pending());
        let rest = rx.recv_batch();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.iter().next().unwrap().as_tuple().unwrap().data, 2);
    }

    #[test]
    fn recv_on_dropped_producer_yields_end() {
        let (tx, mut rx) = stream_channel::<i64, ()>(4);
        drop(tx);
        assert!(rx.recv().is_end());
    }

    #[test]
    fn send_to_dropped_consumer_errors() {
        let (tx, rx) = stream_channel::<i64, ()>(4);
        drop(rx);
        assert_eq!(tx.send(Element::End), Err(ChannelClosed));
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_and_disconnect() {
        let (tx, mut rx) = stream_channel::<i64, ()>(4);
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(5))
            .is_none());
        drop(tx);
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(5))
            .unwrap()
            .is_end());
    }

    #[test]
    fn output_slot_lifecycle() {
        let slot = OutputSlot::<i64, ()>::new();
        assert!(!slot.is_connected());
        let (tx, mut rx) = stream_channel(4);
        slot.connect(tx);
        assert!(slot.is_connected());
        let mut handle = slot.open();
        handle.send_tuple(tuple(3, 7)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 7);
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn output_slot_rejects_double_connection() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx1, _rx1) = stream_channel(1);
        let (tx2, _rx2) = stream_channel(1);
        slot.connect(tx1);
        slot.connect(tx2);
    }

    #[test]
    fn discarded_slot_drops_elements() {
        let slot = OutputSlot::<i64, ()>::new();
        slot.mark_discard();
        assert!(slot.is_connected());
        let mut handle = slot.open();
        handle.send_tuple(tuple(1, 1)).unwrap();
        handle.send_watermark(Timestamp::from_secs(1)).unwrap();
        handle.send_end().unwrap();
    }

    #[test]
    fn discard_does_not_override_connection() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx, mut rx) = stream_channel(4);
        slot.connect(tx);
        slot.mark_discard();
        slot.open().send_tuple(tuple(1, 5)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 5);
    }

    #[test]
    fn channel_capacity_provides_backpressure() {
        let (tx, mut rx) = stream_channel::<i64, ()>(2);
        tx.send(Element::Tuple(tuple(1, 1))).unwrap();
        tx.send(Element::Tuple(tuple(2, 2))).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        // A third send would block; spawn a thread to verify it completes after a recv.
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || tx2.send(Element::Tuple(tuple(3, 3))));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn backpressure_applies_to_full_batches_too() {
        let (tx, mut rx) = stream_channel::<i64, ()>(2);
        for i in 0..2 {
            let mut batch = Batch::new();
            batch.push(Element::Tuple(tuple(i, i as i64)));
            batch.push(Element::Tuple(tuple(i, i as i64 + 10)));
            tx.send_batch(batch).unwrap();
        }
        // The channel holds 2 batches (4 elements); a third batch must block until
        // the consumer drains a whole batch.
        let tx2 = tx.clone();
        let sender = std::thread::spawn(move || tx2.send_batch(Batch::singleton(Element::End)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!sender.is_finished(), "third batch must be back-pressured");
        let first = rx.recv_batch();
        assert_eq!(first.len(), 2);
        sender.join().unwrap().unwrap();
    }

    #[test]
    fn output_handle_accumulates_until_batch_is_full() {
        let slot = OutputSlot::<i64, ()>::with_config(BatchConfig::with_size(3));
        let (tx, mut rx) = stream_channel(8);
        slot.connect(tx);
        let mut handle = slot.open();
        assert_eq!(handle.batch_size(), 3);
        handle.send_tuple(tuple(1, 1)).unwrap();
        handle.send_tuple(tuple(2, 2)).unwrap();
        assert!(rx.is_empty(), "partial batch must not be flushed yet");
        handle.send_tuple(tuple(3, 3)).unwrap();
        let batch = rx.recv_batch();
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn watermark_flushes_partial_batch_in_order() {
        let slot = OutputSlot::<i64, ()>::with_config(BatchConfig::with_size(100));
        let (tx, mut rx) = stream_channel(8);
        slot.connect(tx);
        let mut handle = slot.open();
        handle.send_tuple(tuple(1, 1)).unwrap();
        handle.send_tuple(tuple(2, 2)).unwrap();
        handle.send_watermark(Timestamp::from_secs(2)).unwrap();
        // One batch arrives immediately, data strictly before the watermark.
        let batch = rx.recv_batch();
        let kinds: Vec<bool> = batch.iter().map(|e| e.as_tuple().is_some()).collect();
        assert_eq!(kinds, vec![true, true, false]);
    }

    #[test]
    fn end_flushes_partial_batch() {
        let slot = OutputSlot::<i64, ()>::with_config(BatchConfig::with_size(100));
        let (tx, mut rx) = stream_channel(8);
        slot.connect(tx);
        let mut handle = slot.open();
        handle.send_tuple(tuple(1, 7)).unwrap();
        handle.send_end().unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 7);
        assert!(rx.recv().is_end());
    }

    #[test]
    fn len_counts_elements_not_batches() {
        let (tx, mut rx) = stream_channel::<i64, ()>(8);
        let mut batch = Batch::new();
        batch.push(Element::Tuple(tuple(1, 1)));
        batch.push(Element::Tuple(tuple(2, 2)));
        batch.push(Element::Tuple(tuple(3, 3)));
        tx.send_batch(batch).unwrap();
        tx.send(Element::Tuple(tuple(4, 4))).unwrap();
        assert_eq!(rx.len(), 4, "two batches holding four elements");
        // Consuming one element unpacks the first batch into the pending buffer.
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        assert_eq!(rx.len(), 3);
        assert!(!rx.is_empty());
    }

    #[test]
    fn batch_budget_uses_ceiling_division() {
        // Exact division: unchanged.
        assert_eq!(batch_budget(1024, 32), 32);
        // Odd capacity/batch combinations round *up*, never shrinking the budget.
        assert_eq!(batch_budget(100, 32), 4); // 128 elements, not 96
        assert_eq!(batch_budget(1000, 128), 8); // 1024 elements, not 896
        assert_eq!(batch_budget(3, 2), 2);
        // A batch larger than the capacity still leaves one batch slot.
        assert_eq!(batch_budget(16, 100), 1);
        // Degenerate inputs are clamped to a working channel.
        assert_eq!(batch_budget(0, 8), 1);
        assert_eq!(batch_budget(8, 0), 8);
        assert_eq!(batch_budget(1, 1), 1);
    }

    #[test]
    fn batch_budget_signals_over_allocation() {
        // Within budget: rounding up stays at or below one extra batch, no signal.
        assert_eq!(batch_budget_checked(1024, 32), (32, false));
        assert_eq!(batch_budget_checked(100, 32), (4, false));
        assert_eq!(batch_budget_checked(3, 2), (2, false));
        assert_eq!(batch_budget_checked(1, 1), (1, false));
        // The one-batch floor grants MORE elements than configured: flagged.
        assert_eq!(batch_budget_checked(16, 100), (1, true));
        assert_eq!(batch_budget_checked(0, 8), (1, true));
        // The flag never fires when a whole batch fits within the capacity.
        for capacity in 1usize..64 {
            for batch in 1usize..=capacity {
                let (_, over) = batch_budget_checked(capacity, batch);
                assert!(!over, "capacity {capacity} batch {batch} fits");
            }
        }
    }

    #[test]
    fn stall_counter_counts_backpressure_blocks() {
        let (mut tx, mut rx) = stream_channel::<i64, ()>(1);
        let stalls = Arc::new(genealog_metrics::Counter::default());
        tx.set_stall_counter(Arc::clone(&stalls));
        tx.send(Element::Tuple(tuple(1, 1))).unwrap();
        assert_eq!(stalls.get(), 0, "uncontended send must not count a stall");
        let tx2 = tx.clone();
        let blocked = std::thread::spawn(move || tx2.send(Element::Tuple(tuple(2, 2))));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        blocked.join().unwrap().unwrap();
        assert_eq!(stalls.get(), 1, "the blocked send must count one stall");
    }

    #[test]
    fn over_allocation_warning_traces_exactly_once() {
        use genealog_metrics::{CountingSubscriber, Tracer};
        // A capacity/batch combination unique to this test, so parallel tests
        // triggering the warning for other combinations cannot interfere.
        let sub = CountingSubscriber::new("batch-budget-over-allocation", "capacity=7,batch=9931");
        Tracer::global().subscribe(sub.clone());
        assert_eq!(batch_budget(7, 9931), 1);
        assert_eq!(batch_budget(7, 9931), 1);
        assert_eq!(sub.hits(), 1, "warning must be emitted exactly once");
        // Combinations within budget never trace.
        let quiet = CountingSubscriber::new("batch-budget-over-allocation", "capacity=64,batch=8");
        Tracer::global().subscribe(quiet.clone());
        assert_eq!(batch_budget(64, 8), 8);
        assert_eq!(quiet.hits(), 0);
    }

    #[test]
    fn batch_size_one_flushes_every_element() {
        let slot = OutputSlot::<i64, ()>::with_config(BatchConfig::unbatched());
        let (tx, mut rx) = stream_channel(8);
        slot.connect(tx);
        let mut handle = slot.open();
        handle.send_tuple(tuple(1, 1)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        handle.send_tuple(tuple(2, 2)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 2);
    }
}
