//! Bounded stream channels connecting operators, and the output-port plumbing used by
//! the typed query builder.
//!
//! Every stream produced by an operator is consumed by **exactly one** downstream
//! operator (fan-out is expressed with the Multiplex operator, exactly as in the
//! paper's operator model). The builder hands the producing operator an
//! [`OutputSlot`]; when a consumer is attached, the slot is connected to the sending
//! half of a bounded channel and the consumer receives the receiving half. Unconnected
//! slots are rejected at deployment time unless explicitly discarded.

use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::time::Timestamp;
use crate::tuple::{Element, GTuple};

/// Error returned when sending on a stream whose consumer has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "downstream operator has shut down")
    }
}

impl std::error::Error for ChannelClosed {}

/// Sending half of a stream channel.
#[derive(Debug)]
pub struct StreamSender<T, M> {
    tx: Sender<Element<T, M>>,
}

impl<T, M> Clone for StreamSender<T, M> {
    fn clone(&self) -> Self {
        StreamSender {
            tx: self.tx.clone(),
        }
    }
}

/// Receiving half of a stream channel.
#[derive(Debug)]
pub struct StreamReceiver<T, M> {
    rx: Receiver<Element<T, M>>,
}

/// Creates a bounded stream channel with the given capacity (in elements).
///
/// Bounded capacity is what provides back-pressure: a fast upstream operator blocks
/// when the downstream operator cannot keep up, exactly like the queue-based
/// communication of the paper's SPE instances.
pub fn stream_channel<T, M>(capacity: usize) -> (StreamSender<T, M>, StreamReceiver<T, M>) {
    let (tx, rx) = bounded(capacity.max(1));
    (StreamSender { tx }, StreamReceiver { rx })
}

impl<T, M> StreamSender<T, M> {
    /// Sends an element, blocking while the channel is full.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the consumer has been dropped.
    pub fn send(&self, element: Element<T, M>) -> Result<(), ChannelClosed> {
        self.tx.send(element).map_err(|_| ChannelClosed)
    }
}

impl<T, M> StreamReceiver<T, M> {
    /// The underlying crossbeam receiver (used by multi-input operators to `select`
    /// over several inputs without committing to a blocking receive on one of them).
    pub(crate) fn inner(&self) -> &Receiver<Element<T, M>> {
        &self.rx
    }

    /// Receives the next element, blocking until one is available.
    ///
    /// Returns [`Element::End`] if the producer has been dropped without sending an
    /// explicit end-of-stream marker, so consumers can treat both cases uniformly.
    pub fn recv(&self) -> Element<T, M> {
        self.rx.recv().unwrap_or(Element::End)
    }

    /// Receives the next element, waiting at most `timeout`.
    ///
    /// Returns `None` on timeout and `Some(Element::End)` if the producer went away.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Element<T, M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(el) => Some(el),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Element::End),
        }
    }

    /// Number of elements currently buffered in the channel.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no element is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

#[derive(Debug)]
enum SlotState<T, M> {
    Unconnected,
    Connected(StreamSender<T, M>),
    Discard,
}

/// The output port of an operator for one of its output streams.
///
/// Cloning an `OutputSlot` yields a handle to the *same* port (the builder keeps one
/// clone inside the producing operator and one inside the [`StreamRef`] it returns).
///
/// [`StreamRef`]: crate::query::StreamRef
#[derive(Debug)]
pub struct OutputSlot<T, M> {
    state: Arc<Mutex<SlotState<T, M>>>,
}

impl<T, M> Clone for OutputSlot<T, M> {
    fn clone(&self) -> Self {
        OutputSlot {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T, M> Default for OutputSlot<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, M> OutputSlot<T, M> {
    /// Creates a new, unconnected output slot.
    pub fn new() -> Self {
        OutputSlot {
            state: Arc::new(Mutex::new(SlotState::Unconnected)),
        }
    }

    /// Connects the slot to a consumer's channel.
    ///
    /// # Panics
    /// Panics if the slot is already connected or discarded; the query builder
    /// guarantees this cannot happen because stream handles are consumed by value.
    pub fn connect(&self, sender: StreamSender<T, M>) {
        let mut state = self.state.lock();
        match &*state {
            SlotState::Unconnected => *state = SlotState::Connected(sender),
            _ => panic!("output slot connected twice"),
        }
    }

    /// Marks the slot as intentionally unconnected: elements sent to it are dropped.
    pub fn mark_discard(&self) {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Unconnected) {
            *state = SlotState::Discard;
        }
    }

    /// Whether a consumer (or an explicit discard) has been attached.
    pub fn is_connected(&self) -> bool {
        !matches!(*self.state.lock(), SlotState::Unconnected)
    }

    /// Resolves the slot into the handle the operator uses at run time.
    pub fn open(&self) -> OutputHandle<T, M> {
        let state = self.state.lock();
        match &*state {
            SlotState::Connected(sender) => OutputHandle {
                sender: Some(sender.clone()),
            },
            SlotState::Discard | SlotState::Unconnected => OutputHandle { sender: None },
        }
    }
}

/// Run-time handle an operator uses to emit elements on one output stream.
///
/// A handle backed by a discarded slot silently drops everything, which keeps operator
/// code free of special cases.
#[derive(Debug)]
pub struct OutputHandle<T, M> {
    sender: Option<StreamSender<T, M>>,
}

impl<T, M> Clone for OutputHandle<T, M> {
    fn clone(&self) -> Self {
        OutputHandle {
            sender: self.sender.clone(),
        }
    }
}

impl<T, M> OutputHandle<T, M> {
    /// Creates a handle that drops every element (used for discarded outputs).
    pub fn discard() -> Self {
        OutputHandle { sender: None }
    }

    /// Emits a data tuple.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_tuple(&self, tuple: Arc<GTuple<T, M>>) -> Result<(), ChannelClosed> {
        match &self.sender {
            Some(tx) => tx.send(Element::Tuple(tuple)),
            None => Ok(()),
        }
    }

    /// Emits a watermark.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_watermark(&self, ts: Timestamp) -> Result<(), ChannelClosed> {
        match &self.sender {
            Some(tx) => tx.send(Element::Watermark(ts)),
            None => Ok(()),
        }
    }

    /// Emits the end-of-stream marker.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send_end(&self) -> Result<(), ChannelClosed> {
        match &self.sender {
            Some(tx) => tx.send(Element::End),
            None => Ok(()),
        }
    }

    /// Forwards an already-built element.
    ///
    /// # Errors
    /// Returns [`ChannelClosed`] if the downstream operator has shut down.
    pub fn send(&self, element: Element<T, M>) -> Result<(), ChannelClosed> {
        match &self.sender {
            Some(tx) => tx.send(element),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    #[test]
    fn channel_round_trip_preserves_order() {
        let (tx, rx) = stream_channel::<i64, ()>(8);
        tx.send(Element::Tuple(tuple(1, 10))).unwrap();
        tx.send(Element::Watermark(Timestamp::from_secs(1))).unwrap();
        tx.send(Element::End).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 10);
        assert!(matches!(rx.recv(), Element::Watermark(_)));
        assert!(rx.recv().is_end());
    }

    #[test]
    fn recv_on_dropped_producer_yields_end() {
        let (tx, rx) = stream_channel::<i64, ()>(4);
        drop(tx);
        assert!(rx.recv().is_end());
    }

    #[test]
    fn send_to_dropped_consumer_errors() {
        let (tx, rx) = stream_channel::<i64, ()>(4);
        drop(rx);
        assert_eq!(tx.send(Element::End), Err(ChannelClosed));
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_and_disconnect() {
        let (tx, rx) = stream_channel::<i64, ()>(4);
        assert!(rx.recv_timeout(std::time::Duration::from_millis(5)).is_none());
        drop(tx);
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(5))
            .unwrap()
            .is_end());
    }

    #[test]
    fn output_slot_lifecycle() {
        let slot = OutputSlot::<i64, ()>::new();
        assert!(!slot.is_connected());
        let (tx, rx) = stream_channel(4);
        slot.connect(tx);
        assert!(slot.is_connected());
        let handle = slot.open();
        handle.send_tuple(tuple(3, 7)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 7);
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn output_slot_rejects_double_connection() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx1, _rx1) = stream_channel(1);
        let (tx2, _rx2) = stream_channel(1);
        slot.connect(tx1);
        slot.connect(tx2);
    }

    #[test]
    fn discarded_slot_drops_elements() {
        let slot = OutputSlot::<i64, ()>::new();
        slot.mark_discard();
        assert!(slot.is_connected());
        let handle = slot.open();
        handle.send_tuple(tuple(1, 1)).unwrap();
        handle.send_watermark(Timestamp::from_secs(1)).unwrap();
        handle.send_end().unwrap();
    }

    #[test]
    fn discard_does_not_override_connection() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx, rx) = stream_channel(4);
        slot.connect(tx);
        slot.mark_discard();
        slot.open().send_tuple(tuple(1, 5)).unwrap();
        assert_eq!(rx.recv().as_tuple().unwrap().data, 5);
    }

    #[test]
    fn channel_capacity_provides_backpressure() {
        let (tx, rx) = stream_channel::<i64, ()>(2);
        tx.send(Element::Tuple(tuple(1, 1))).unwrap();
        tx.send(Element::Tuple(tuple(2, 2))).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        // A third send would block; spawn a thread to verify it completes after a recv.
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || tx2.send(Element::Tuple(tuple(3, 3))));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().as_tuple().unwrap().data, 1);
        handle.join().unwrap().unwrap();
    }
}
