//! The Filter operator: forwards or discards tuples based on a predicate.
//!
//! Filter is a *forwarding* operator (the paper's type (i) in Definition 3.1): it does
//! not create new tuples, so no provenance instrumentation is defined for it — the same
//! `Arc` travels downstream, and with it the tuple's existing metadata.

use std::sync::Arc;

use crate::channel::{ChannelClosed, OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::fusion::{PendingChain, SealableChain, StageCounters};
use crate::operator::{FusedStage, Operator, OperatorStats};
use crate::provenance::MetaData;
use crate::tuple::{GTuple, TupleData};

/// The Filter semantics as a fusable [`FusedStage`]: forwards the input `Arc` when
/// the predicate holds, drops it otherwise. Because the same `Arc` travels on, the
/// tuple's provenance metadata passes through untouched — fused or not.
pub struct FilterStage<F> {
    predicate: F,
}

impl<F> FilterStage<F> {
    /// Creates a Filter stage from its predicate.
    pub fn new(predicate: F) -> Self {
        FilterStage { predicate }
    }
}

impl<T, F, M> FusedStage<T, T, M> for FilterStage<F>
where
    T: TupleData,
    F: FnMut(&T) -> bool + Send + 'static,
    M: MetaData,
{
    fn process(
        &mut self,
        tuple: Arc<GTuple<T, M>>,
        emit: &mut dyn FnMut(Arc<GTuple<T, M>>) -> Result<(), ChannelClosed>,
    ) -> Result<(), ChannelClosed> {
        if (self.predicate)(&tuple.data) {
            emit(tuple)
        } else {
            Ok(())
        }
    }
}

/// The Filter operator runtime.
pub struct FilterOp<T, F, M> {
    name: String,
    input: StreamReceiver<T, M>,
    output: OutputSlot<T, M>,
    predicate: F,
}

impl<T, F, M> FilterOp<T, F, M>
where
    T: TupleData,
    F: FnMut(&T) -> bool + Send + 'static,
    M: MetaData,
{
    /// Creates a Filter operator.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, M>,
        output: OutputSlot<T, M>,
        predicate: F,
    ) -> Self {
        FilterOp {
            name: name.into(),
            input,
            output,
            predicate,
        }
    }
}

impl<T, F, M> Operator for FilterOp<T, F, M>
where
    T: TupleData,
    F: FnMut(&T) -> bool + Send + 'static,
    M: MetaData,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        // One source of truth for the operator semantics: run as a chain of one
        // FilterStage — exactly what the query builder deploys for this operator.
        let this = *self;
        let counters = Arc::new(StageCounters::default());
        let chain = PendingChain::start(
            this.input,
            Box::new(FilterStage::new(this.predicate)) as Box<dyn FusedStage<T, T, M>>,
            Arc::clone(&counters),
            this.output,
        );
        Box::new(Box::new(chain).seal(this.name, counters)).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::time::Timestamp;
    use crate::tuple::Element;
    use std::sync::Arc;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    #[test]
    fn filter_forwards_matching_tuples_without_copying() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        let kept = tuple(1, 2);
        let dropped = tuple(2, 3);
        in_tx.send(Element::Tuple(Arc::clone(&kept))).unwrap();
        in_tx.send(Element::Tuple(dropped)).unwrap();
        in_tx.send(Element::End).unwrap();

        let op = FilterOp::new("even", in_rx, out_slot, |v: &i64| v % 2 == 0);
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 2);
        assert_eq!(stats.tuples_out, 1);

        match out_rx.recv() {
            Element::Tuple(t) => {
                assert!(Arc::ptr_eq(&t, &kept), "Filter must forward the same Arc")
            }
            other => panic!("expected tuple, got {other:?}"),
        }
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn filter_forwards_watermarks_even_when_dropping_all_tuples() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        in_tx.send(Element::Tuple(tuple(1, 1))).unwrap();
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(1)))
            .unwrap();
        in_tx.send(Element::End).unwrap();

        let op = FilterOp::new("none", in_rx, out_slot, |_: &i64| false);
        Box::new(op).run().unwrap();
        assert!(matches!(out_rx.recv(), Element::Watermark(ts) if ts == Timestamp::from_secs(1)));
        assert!(out_rx.recv().is_end());
    }
}
