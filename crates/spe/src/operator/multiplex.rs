//! The Multiplex operator: copies each input tuple to every output stream.
//!
//! The paper's instrumented Multiplex (§4.1) creates one copy per output stream, each
//! with `T = MULTIPLEX` and `U1` pointing at the contributing input tuple; the
//! instrumentation is the [`ProvenanceSystem::multiplex_meta`] hook.

use std::sync::Arc;

use crate::channel::{OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::metrics::OpMetrics;
use crate::operator::{Operator, OperatorStats};
use crate::provenance::ProvenanceSystem;
use crate::tuple::{Element, GTuple, TupleData};

/// The Multiplex operator runtime.
pub struct MultiplexOp<T, P: ProvenanceSystem> {
    name: String,
    input: StreamReceiver<T, P::Meta>,
    outputs: Vec<OutputSlot<T, P::Meta>>,
    provenance: P,
    metrics: OpMetrics,
}

impl<T, P> MultiplexOp<T, P>
where
    T: TupleData,
    P: ProvenanceSystem,
{
    /// Creates a Multiplex operator with one slot per output stream.
    ///
    /// # Panics
    /// Panics if `outputs` is empty.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, P::Meta>,
        outputs: Vec<OutputSlot<T, P::Meta>>,
        provenance: P,
    ) -> Self {
        assert!(
            !outputs.is_empty(),
            "Multiplex requires at least one output"
        );
        MultiplexOp {
            name: name.into(),
            input,
            outputs,
            provenance,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<T, P> Operator for MultiplexOp<T, P>
where
    T: TupleData,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut outs: Vec<_> = self.outputs.iter().map(OutputSlot::open).collect();
        let counters = self.metrics.handles(&self.name);
        let mut live: Vec<bool> = vec![true; outs.len()];
        loop {
            for element in self.input.recv_batch() {
                match element {
                    Element::Tuple(tuple) => {
                        counters.inc_in();
                        for (out, alive) in outs.iter_mut().zip(live.iter_mut()) {
                            if !*alive {
                                continue;
                            }
                            let meta = self.provenance.multiplex_meta(&tuple);
                            let copy = Arc::new(GTuple::new(
                                tuple.ts,
                                tuple.stimulus,
                                tuple.data.clone(),
                                meta,
                            ));
                            if out.send_tuple(copy).is_err() {
                                *alive = false;
                            } else {
                                counters.inc_out();
                            }
                        }
                        if live.iter().all(|a| !*a) {
                            return Ok(counters.stats(&self.name));
                        }
                    }
                    Element::Watermark(ts) => {
                        for (out, alive) in outs.iter_mut().zip(live.iter_mut()) {
                            if *alive && out.send_watermark(ts).is_err() {
                                *alive = false;
                            }
                        }
                    }
                    Element::Barrier(epoch) => {
                        // Like watermarks, barriers are broadcast so every branch of
                        // the fan-out observes the cut at the same stream position.
                        for (out, alive) in outs.iter_mut().zip(live.iter_mut()) {
                            if *alive && out.send_barrier(epoch).is_err() {
                                *alive = false;
                            }
                        }
                    }
                    Element::End => {
                        for out in &mut outs {
                            let _ = out.send_end();
                        }
                        return Ok(counters.stats(&self.name));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::provenance::NoProvenance;
    use crate::time::Timestamp;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    #[test]
    fn multiplex_copies_to_all_outputs() {
        let (in_tx, in_rx) = stream_channel(16);
        let slots: Vec<OutputSlot<i64, ()>> = (0..3).map(|_| OutputSlot::new()).collect();
        let mut rxs = Vec::new();
        for slot in &slots {
            let (tx, rx) = stream_channel(16);
            slot.connect(tx);
            rxs.push(rx);
        }

        in_tx.send(Element::Tuple(tuple(1, 42))).unwrap();
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(1)))
            .unwrap();
        in_tx.send(Element::End).unwrap();

        let op = MultiplexOp::new("mux", in_rx, slots, NoProvenance);
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.tuples_out, 3);

        for rx in &mut rxs {
            let t = rx.recv();
            assert_eq!(t.as_tuple().unwrap().data, 42);
            assert!(matches!(rx.recv(), Element::Watermark(_)));
            assert!(rx.recv().is_end());
        }
    }

    #[test]
    fn multiplex_copies_are_distinct_allocations() {
        let (in_tx, in_rx) = stream_channel(16);
        let slots: Vec<OutputSlot<i64, ()>> = (0..2).map(|_| OutputSlot::new()).collect();
        let (tx0, mut rx0) = stream_channel(16);
        let (tx1, mut rx1) = stream_channel(16);
        slots[0].connect(tx0);
        slots[1].connect(tx1);

        let input = tuple(1, 7);
        in_tx.send(Element::Tuple(Arc::clone(&input))).unwrap();
        in_tx.send(Element::End).unwrap();
        Box::new(MultiplexOp::new("mux", in_rx, slots, NoProvenance))
            .run()
            .unwrap();

        let a = rx0.recv();
        let a = a.as_tuple().unwrap();
        let b = rx1.recv();
        let b = b.as_tuple().unwrap();
        assert!(
            !Arc::ptr_eq(a, b),
            "Multiplex creates new tuples, not forwards"
        );
        assert!(!Arc::ptr_eq(a, &input));
        assert_eq!(a.data, b.data);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn multiplex_requires_outputs() {
        let (_tx, rx) = stream_channel::<i64, ()>(1);
        let _ = MultiplexOp::new("mux", rx, Vec::new(), NoProvenance);
    }

    #[test]
    fn multiplex_survives_one_closed_output() {
        let (in_tx, in_rx) = stream_channel(16);
        let slots: Vec<OutputSlot<i64, ()>> = (0..2).map(|_| OutputSlot::new()).collect();
        let (tx0, rx0) = stream_channel(16);
        let (tx1, mut rx1) = stream_channel(16);
        slots[0].connect(tx0);
        slots[1].connect(tx1);
        drop(rx0); // first consumer goes away

        in_tx.send(Element::Tuple(tuple(1, 5))).unwrap();
        in_tx.send(Element::Tuple(tuple(2, 6))).unwrap();
        in_tx.send(Element::End).unwrap();
        let stats = Box::new(MultiplexOp::new("mux", in_rx, slots, NoProvenance))
            .run()
            .unwrap();
        // Output to the dead consumer fails silently; the live one receives both tuples.
        assert_eq!(rx1.recv().as_tuple().unwrap().data, 5);
        assert_eq!(rx1.recv().as_tuple().unwrap().data, 6);
        assert!(rx1.recv().is_end());
        assert!(stats.tuples_out >= 2);
    }
}
