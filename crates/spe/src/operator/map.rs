//! The Map operator: produces one or more output tuples per input tuple.
//!
//! The paper's instrumented Map (§4.1) creates new tuples whose `U1` meta-attribute
//! points at the contributing input tuple; in this engine that instrumentation is the
//! [`ProvenanceSystem::map_meta`] hook.

use std::sync::Arc;

use crate::channel::{ChannelClosed, OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::fusion::{PendingChain, SealableChain, StageCounters};
use crate::operator::{FusedStage, Operator, OperatorStats};
use crate::provenance::ProvenanceSystem;
use crate::tuple::{GTuple, TupleData};

/// The Map semantics as a fusable [`FusedStage`]: for every output payload the user
/// function returns, a new tuple is created with metadata from the provenance
/// system's `map_meta` hook — exactly the instrumentation point of the standalone
/// [`MapOp`], so fused and unfused plans produce byte-identical contribution graphs.
pub struct MapStage<F, P> {
    function: F,
    provenance: P,
}

impl<F, P> MapStage<F, P> {
    /// Creates a Map stage from the user function and the query's provenance system.
    pub fn new(function: F, provenance: P) -> Self {
        MapStage {
            function,
            provenance,
        }
    }
}

impl<I, O, F, P> FusedStage<I, O, P::Meta> for MapStage<F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&I) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    fn process(
        &mut self,
        tuple: Arc<GTuple<I, P::Meta>>,
        emit: &mut dyn FnMut(Arc<GTuple<O, P::Meta>>) -> Result<(), ChannelClosed>,
    ) -> Result<(), ChannelClosed> {
        for data in (self.function)(&tuple.data) {
            let meta = self.provenance.map_meta(&tuple);
            emit(Arc::new(GTuple::new(tuple.ts, tuple.stimulus, data, meta)))?;
        }
        Ok(())
    }
}

/// The meta-aware Map semantics as a fusable [`FusedStage`] (see [`MetaMapOp`]).
pub struct MetaMapStage<F, P> {
    function: F,
    provenance: P,
}

impl<F, P> MetaMapStage<F, P> {
    /// Creates a meta-aware Map stage.
    pub fn new(function: F, provenance: P) -> Self {
        MetaMapStage {
            function,
            provenance,
        }
    }
}

impl<I, O, F, P> FusedStage<I, O, P::Meta> for MetaMapStage<F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&Arc<GTuple<I, P::Meta>>) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    fn process(
        &mut self,
        tuple: Arc<GTuple<I, P::Meta>>,
        emit: &mut dyn FnMut(Arc<GTuple<O, P::Meta>>) -> Result<(), ChannelClosed>,
    ) -> Result<(), ChannelClosed> {
        for data in (self.function)(&tuple) {
            let meta = self.provenance.map_meta(&tuple);
            emit(Arc::new(GTuple::new(tuple.ts, tuple.stimulus, data, meta)))?;
        }
        Ok(())
    }
}

/// The Map operator runtime.
///
/// The user function receives the input payload and returns *zero or more* output
/// payloads; output tuples inherit the input tuple's timestamp and stimulus.
/// (Returning zero outputs makes Map usable as a filtering projection, but the
/// dedicated [`FilterOp`](crate::operator::filter::FilterOp) should be preferred when
/// tuples are merely forwarded, because Filter does not create new tuples and
/// therefore adds nothing to the contribution graph.)
pub struct MapOp<I, O, F, P: ProvenanceSystem> {
    name: String,
    input: StreamReceiver<I, P::Meta>,
    output: OutputSlot<O, P::Meta>,
    function: F,
    provenance: P,
}

impl<I, O, F, P> MapOp<I, O, F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&I) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    /// Creates a Map operator.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<I, P::Meta>,
        output: OutputSlot<O, P::Meta>,
        function: F,
        provenance: P,
    ) -> Self {
        MapOp {
            name: name.into(),
            input,
            output,
            function,
            provenance,
        }
    }
}

impl<I, O, F, P> Operator for MapOp<I, O, F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&I) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        // One source of truth for the operator semantics: run as a chain of one
        // MapStage — exactly what the query builder deploys for this operator.
        let this = *self;
        let counters = Arc::new(StageCounters::default());
        let chain = PendingChain::start(
            this.input,
            Box::new(MapStage::new(this.function, this.provenance))
                as Box<dyn FusedStage<I, O, P::Meta>>,
            Arc::clone(&counters),
            this.output,
        );
        Box::new(Box::new(chain).seal(this.name, counters)).run()
    }
}

/// A Map variant whose user function receives the *whole input tuple* (payload and
/// provenance metadata) instead of just the payload.
///
/// This is the engine-level facility the paper's §4.1 calls an *instrumented*
/// operator: it can "access and modify the meta-data used for data provenance and use
/// such metadata to create tuples". The single-stream unfolder of `genealog` (§5.1) is
/// built from a Multiplex plus a `MetaMapOp` applying the `findProvenance` traversal.
pub struct MetaMapOp<I, O, F, P: ProvenanceSystem> {
    name: String,
    input: StreamReceiver<I, P::Meta>,
    output: OutputSlot<O, P::Meta>,
    function: F,
    provenance: P,
}

impl<I, O, F, P> MetaMapOp<I, O, F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&Arc<GTuple<I, P::Meta>>) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    /// Creates a meta-aware Map operator.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<I, P::Meta>,
        output: OutputSlot<O, P::Meta>,
        function: F,
        provenance: P,
    ) -> Self {
        MetaMapOp {
            name: name.into(),
            input,
            output,
            function,
            provenance,
        }
    }
}

impl<I, O, F, P> Operator for MetaMapOp<I, O, F, P>
where
    I: TupleData,
    O: TupleData,
    F: FnMut(&Arc<GTuple<I, P::Meta>>) -> Vec<O> + Send + 'static,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        // One source of truth for the operator semantics: run as a chain of one
        // MetaMapStage — exactly what the query builder deploys for this operator.
        let this = *self;
        let counters = Arc::new(StageCounters::default());
        let chain = PendingChain::start(
            this.input,
            Box::new(MetaMapStage::new(this.function, this.provenance))
                as Box<dyn FusedStage<I, O, P::Meta>>,
            Arc::clone(&counters),
            this.output,
        );
        Box::new(Box::new(chain).seal(this.name, counters)).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{stream_channel, OutputSlot};
    use crate::provenance::NoProvenance;
    use crate::time::Timestamp;
    use crate::tuple::Element;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 7, v, ()))
    }

    #[test]
    fn map_transforms_and_preserves_timestamp_and_stimulus() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<String, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        in_tx.send(Element::Tuple(tuple(5, 21))).unwrap();
        in_tx
            .send(Element::Watermark(Timestamp::from_secs(5)))
            .unwrap();
        in_tx.send(Element::End).unwrap();

        let op = MapOp::new(
            "fmt",
            in_rx,
            out_slot,
            |v: &i64| vec![format!("v={}", v * 2)],
            NoProvenance,
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.tuples_out, 1);

        let t = out_rx.recv();
        let t = t.as_tuple().unwrap();
        assert_eq!(t.data, "v=42");
        assert_eq!(t.ts, Timestamp::from_secs(5));
        assert_eq!(t.stimulus, 7);
        assert!(matches!(out_rx.recv(), Element::Watermark(_)));
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn map_can_produce_multiple_outputs_per_input() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        in_tx.send(Element::Tuple(tuple(1, 3))).unwrap();
        in_tx.send(Element::End).unwrap();

        let op = MapOp::new(
            "explode",
            in_rx,
            out_slot,
            |v: &i64| (0..*v).collect::<Vec<_>>(),
            NoProvenance,
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_out, 3);
        assert_eq!(out_rx.recv().as_tuple().unwrap().data, 0);
        assert_eq!(out_rx.recv().as_tuple().unwrap().data, 1);
        assert_eq!(out_rx.recv().as_tuple().unwrap().data, 2);
    }

    #[test]
    fn meta_map_sees_the_full_input_tuple() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<u64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        in_tx.send(Element::Tuple(tuple(9, 100))).unwrap();
        in_tx.send(Element::End).unwrap();

        let op = MetaMapOp::new(
            "ts-extract",
            in_rx,
            out_slot,
            |t: &Arc<GTuple<i64, ()>>| vec![t.ts.as_secs()],
            NoProvenance,
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_out, 1);
        assert_eq!(out_rx.recv().as_tuple().unwrap().data, 9);
        assert!(out_rx.recv().is_end());
    }

    #[test]
    fn map_with_zero_outputs_drops_the_tuple() {
        let (in_tx, in_rx) = stream_channel(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(16);
        out_slot.connect(out_tx);

        in_tx.send(Element::Tuple(tuple(1, 3))).unwrap();
        in_tx.send(Element::End).unwrap();

        let op = MapOp::new(
            "drop",
            in_rx,
            out_slot,
            |_: &i64| Vec::<i64>::new(),
            NoProvenance,
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_in, 1);
        assert_eq!(stats.tuples_out, 0);
        assert!(out_rx.recv().is_end());
    }
}
