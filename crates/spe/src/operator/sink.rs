//! The Sink operator: terminal consumer of a stream.
//!
//! Sinks invoke a user callback for every sink tuple, maintain the latency statistics
//! used by the evaluation (time between the *stimulus* of the latest contributing
//! source tuple and the production of the sink tuple) and optionally collect tuples
//! in memory for inspection by tests and examples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::channel::StreamReceiver;
use crate::error::SpeError;
use crate::metrics::OpMetrics;
use crate::operator::{now_nanos, Operator, OperatorStats};
use crate::provenance::MetaData;
use crate::state::{CheckpointHandle, Snapshot};
use crate::tuple::{Element, GTuple, TupleData};

/// Shared, thread-safe statistics of a Sink operator.
#[derive(Debug, Default)]
pub struct SinkStats {
    tuples: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl SinkStats {
    /// Creates an empty statistics block.
    pub fn new() -> Arc<Self> {
        Arc::new(SinkStats::default())
    }

    /// Number of sink tuples received so far.
    pub fn tuple_count(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }

    /// Snapshot of the recorded per-tuple latencies, in nanoseconds.
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.latencies_ns.lock().clone()
    }

    /// Mean latency in milliseconds over all received tuples (0 if none).
    pub fn mean_latency_ms(&self) -> f64 {
        let lat = self.latencies_ns.lock();
        if lat.is_empty() {
            return 0.0;
        }
        lat.iter().map(|&ns| ns as f64).sum::<f64>() / lat.len() as f64 / 1e6
    }

    fn record(&self, latency_ns: u64) {
        self.tuples.fetch_add(1, Ordering::Relaxed);
        self.latencies_ns.lock().push(latency_ns);
    }
}

/// Shared buffer of collected tuples.
type SharedTuples<T, M> = Arc<Mutex<Vec<Arc<GTuple<T, M>>>>>;

/// A handle to the tuples collected by [`crate::query::Query::collecting_sink`].
#[derive(Debug)]
pub struct CollectedStream<T, M> {
    tuples: SharedTuples<T, M>,
    stats: Arc<SinkStats>,
}

impl<T, M> Clone for CollectedStream<T, M> {
    fn clone(&self) -> Self {
        CollectedStream {
            tuples: Arc::clone(&self.tuples),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<T, M> Default for CollectedStream<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, M> CollectedStream<T, M> {
    /// Creates an empty collection handle.
    pub fn new() -> Self {
        CollectedStream {
            tuples: Arc::new(Mutex::new(Vec::new())),
            stats: SinkStats::new(),
        }
    }

    /// Snapshot of the collected tuples, in arrival order.
    pub fn tuples(&self) -> Vec<Arc<GTuple<T, M>>> {
        self.tuples.lock().clone()
    }

    /// Number of collected tuples.
    pub fn len(&self) -> usize {
        self.tuples.lock().len()
    }

    /// True if nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.tuples.lock().is_empty()
    }

    /// The sink statistics (latency, counts) associated with the collection.
    pub fn stats(&self) -> &Arc<SinkStats> {
        &self.stats
    }

    /// Appends a tuple (used by the Sink operator).
    pub fn push(&self, tuple: Arc<GTuple<T, M>>) {
        self.tuples.lock().push(tuple);
    }

    /// Removes and returns all collected tuples.
    pub fn drain(&self) -> Vec<Arc<GTuple<T, M>>> {
        std::mem::take(&mut *self.tuples.lock())
    }

    /// Replaces the collected tuples with a checkpointed prefix (used by the Sink
    /// operator when restoring from an epoch snapshot).
    pub fn restore(&self, tuples: Vec<Arc<GTuple<T, M>>>) {
        *self.tuples.lock() = tuples;
    }
}

/// The Sink operator runtime.
pub struct SinkOp<T, M, F> {
    name: String,
    input: StreamReceiver<T, M>,
    callback: F,
    stats: Arc<SinkStats>,
    /// The collection backing a collecting sink, if any: it doubles as the sink's
    /// checkpointable state (the output prefix committed at each epoch barrier).
    collected: Option<CollectedStream<T, M>>,
    checkpoints: CheckpointHandle,
    metrics: OpMetrics,
}

impl<T, M, F> SinkOp<T, M, F>
where
    T: TupleData,
    M: MetaData,
    F: FnMut(&Arc<GTuple<T, M>>) + Send + 'static,
{
    /// Creates a Sink operator invoking `callback` for every sink tuple.
    ///
    /// `collected` names the collection the callback feeds, if any; it becomes the
    /// sink's checkpointable state. Sinks without collection state still participate
    /// in checkpoints (committing an empty snapshot) so that a complete epoch
    /// guarantees the barrier reached every query output.
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<T, M>,
        callback: F,
        stats: Arc<SinkStats>,
        collected: Option<CollectedStream<T, M>>,
        checkpoints: CheckpointHandle,
    ) -> Self {
        SinkOp {
            name: name.into(),
            input,
            callback,
            stats,
            collected,
            checkpoints,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<T, M, F> Operator for SinkOp<T, M, F>
where
    T: TupleData,
    M: MetaData,
    F: FnMut(&Arc<GTuple<T, M>>) + Send + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let counters = self.metrics.handles(&self.name);
        // The live latency histogram (p50/p95/p99 of stimulus-to-sink time).
        let latency_histogram = counters.histogram("genealog_sink_latency_ns");
        let checkpoints = self.checkpoints.get().cloned();
        if let Some(ckpt) = &checkpoints {
            ckpt.store.register(&self.name);
            if let Some(snapshot) = ckpt.store.restore_snapshot(&self.name) {
                if let (Some(collected), Some(prefix)) = (
                    &self.collected,
                    snapshot.downcast::<Vec<Arc<GTuple<T, M>>>>(),
                ) {
                    collected.restore(prefix.as_ref().clone());
                }
            }
        }
        loop {
            for element in self.input.recv_batch() {
                match element {
                    Element::Tuple(tuple) => {
                        counters.inc_in();
                        let latency = now_nanos().saturating_sub(tuple.stimulus);
                        self.stats.record(latency);
                        latency_histogram.record(latency);
                        (self.callback)(&tuple);
                    }
                    Element::Watermark(_) => {}
                    Element::Barrier(epoch) => {
                        if let Some(ckpt) = &checkpoints {
                            let snapshot = match &self.collected {
                                Some(c) => Snapshot::inline(c.tuples()),
                                None => Snapshot::bytes(Vec::new()),
                            };
                            ckpt.store.commit(&self.name, epoch, snapshot);
                        }
                    }
                    Element::End => return Ok(counters.stats(&self.name)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::time::Timestamp;

    #[test]
    fn sink_invokes_callback_and_records_latency() {
        let (tx, rx) = stream_channel::<i64, ()>(16);
        let stats = SinkStats::new();
        let collected = Arc::new(Mutex::new(Vec::new()));
        let collected_in_cb = Arc::clone(&collected);

        tx.send(Element::Tuple(Arc::new(GTuple::new(
            Timestamp::from_secs(1),
            now_nanos(),
            42i64,
            (),
        ))))
        .unwrap();
        tx.send(Element::Watermark(Timestamp::from_secs(1)))
            .unwrap();
        tx.send(Element::End).unwrap();

        let op = SinkOp::new(
            "sink",
            rx,
            move |t: &Arc<GTuple<i64, ()>>| collected_in_cb.lock().push(t.data),
            Arc::clone(&stats),
            None,
            Default::default(),
        );
        let op_stats = Box::new(op).run().unwrap();
        assert_eq!(op_stats.tuples_in, 1);
        assert_eq!(stats.tuple_count(), 1);
        assert_eq!(stats.latencies_ns().len(), 1);
        assert!(stats.mean_latency_ms() >= 0.0);
        assert_eq!(*collected.lock(), vec![42]);
    }

    #[test]
    fn collected_stream_accumulates_and_drains() {
        let c: CollectedStream<i64, ()> = CollectedStream::new();
        assert!(c.is_empty());
        c.push(Arc::new(GTuple::new(Timestamp::from_secs(1), 0, 1, ())));
        c.push(Arc::new(GTuple::new(Timestamp::from_secs(2), 0, 2, ())));
        assert_eq!(c.len(), 2);
        let c2 = c.clone();
        assert_eq!(c2.len(), 2, "clone shares the same buffer");
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c2.is_empty());
    }

    #[test]
    fn empty_sink_stats_report_zero_latency() {
        let stats = SinkStats::new();
        assert_eq!(stats.tuple_count(), 0);
        assert_eq!(stats.mean_latency_ms(), 0.0);
    }
}
