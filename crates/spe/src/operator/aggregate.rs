//! The Aggregate operator: sliding time-window, group-by aggregation.
//!
//! The paper's instrumented Aggregate (§4.1) makes every tuple of the closed window
//! contribute to the output tuple: `U2` points at the earliest window tuple, `U1` at
//! the latest, and the window tuples are chained through their `N` pointers. That
//! instrumentation is the [`ProvenanceSystem::aggregate_meta`] hook, which receives
//! the full window (earliest tuple first).

use std::sync::Arc;

use crate::channel::{OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::metrics::{OpCounters, OpMetrics};
use crate::operator::{Operator, OperatorStats};
use crate::provenance::{detach_tuple, ProvenanceSystem};
use crate::state::{CheckpointHandle, Snapshot};
use crate::time::Timestamp;
use crate::tuple::{Element, GTuple, TupleData};
use crate::window::{ClosedWindow, WindowSpec, WindowStore, WindowStoreSnapshot};

/// The view of a closed window handed to the aggregation function.
#[derive(Debug)]
pub struct WindowView<'a, K, I, M> {
    /// Start timestamp of the window (also the output tuple's timestamp).
    pub start: Timestamp,
    /// Group-by key of the window instance.
    pub key: &'a K,
    /// Window tuples in timestamp order (earliest first).
    pub tuples: &'a [Arc<GTuple<I, M>>],
}

impl<K, I, M> WindowView<'_, K, I, M> {
    /// Number of tuples in the window.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the window is empty (never the case for emitted windows).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterator over the window payloads in timestamp order.
    pub fn payloads(&self) -> impl Iterator<Item = &I> {
        self.tuples.iter().map(|t| &t.data)
    }
}

/// The Aggregate operator runtime.
pub struct AggregateOp<I, O, K, KF, AF, P: ProvenanceSystem> {
    name: String,
    input: StreamReceiver<I, P::Meta>,
    output: OutputSlot<O, P::Meta>,
    store: WindowStore<K, I, P::Meta>,
    key_fn: KF,
    agg_fn: AF,
    provenance: P,
    checkpoints: CheckpointHandle,
    metrics: OpMetrics,
}

impl<I, O, K, KF, AF, P> AggregateOp<I, O, K, KF, AF, P>
where
    I: TupleData,
    O: TupleData,
    K: Ord + Clone + Send + Sync + 'static,
    KF: FnMut(&I) -> K + Send + 'static,
    AF: FnMut(&WindowView<'_, K, I, P::Meta>) -> O + Send + 'static,
    P: ProvenanceSystem,
{
    /// Creates an Aggregate operator. When `checkpoints` is filled before the query
    /// is deployed, the operator snapshots its window store — the buffered tuples
    /// with their live provenance pointers — on every epoch barrier.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        input: StreamReceiver<I, P::Meta>,
        output: OutputSlot<O, P::Meta>,
        spec: WindowSpec,
        key_fn: KF,
        agg_fn: AF,
        provenance: P,
        checkpoints: CheckpointHandle,
    ) -> Self {
        AggregateOp {
            name: name.into(),
            input,
            output,
            store: WindowStore::new(spec),
            key_fn,
            agg_fn,
            provenance,
            checkpoints,
            metrics: OpMetrics::deferred(),
        }
    }

    fn emit_closed(
        &mut self,
        closed: Vec<ClosedWindow<K, I, P::Meta>>,
        out: &mut crate::channel::OutputHandle<O, P::Meta>,
        counters: &OpCounters,
    ) -> bool {
        for window in closed {
            if window.tuples.is_empty() {
                continue;
            }
            let view = WindowView {
                start: window.start,
                key: &window.key,
                tuples: &window.tuples,
            };
            let data = (self.agg_fn)(&view);
            let meta = self.provenance.aggregate_meta(&window.tuples);
            let stimulus = window
                .tuples
                .iter()
                .map(|t| t.stimulus)
                .max()
                .unwrap_or_default();
            let tuple = Arc::new(GTuple::new(window.start, stimulus, data, meta));
            if out.send_tuple(tuple).is_err() {
                return false;
            }
            counters.inc_out();
        }
        true
    }
}

impl<I, O, K, KF, AF, P> Operator for AggregateOp<I, O, K, KF, AF, P>
where
    I: TupleData,
    O: TupleData,
    K: Ord + Clone + Send + Sync + 'static,
    KF: FnMut(&I) -> K + Send + 'static,
    AF: FnMut(&WindowView<'_, K, I, P::Meta>) -> O + Send + 'static,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        let window_size = self.store.spec().size;
        let checkpoints = self.checkpoints.get().cloned();
        // The byte codec for this operator's snapshot type, when the deployment
        // registered one: with it, commits become durable byte containers and
        // restores can come out of a store owned by a *previous* process.
        let persister = checkpoints
            .as_ref()
            .and_then(|c| c.window_persister::<K, I, P::Meta>());
        if let Some(ckpt) = &checkpoints {
            ckpt.store.register(&self.name);
            let restored = ckpt.store.restore_snapshot(&self.name).and_then(|s| {
                s.downcast::<WindowStoreSnapshot<K, I, P::Meta>>()
                    .or_else(|| {
                        let bytes = s.as_bytes()?;
                        persister.as_ref()?.decode(bytes).map(Arc::new)
                    })
            });
            if let Some(snapshot) = restored {
                // Re-materialise the open windows through detached clones so the
                // restored slice of the provenance graph has fresh `N` cells for
                // this run's window-close chains to claim.
                let provenance = self.provenance.clone();
                self.store
                    .restore(&snapshot, &mut |t| detach_tuple(&provenance, t));
            }
        }
        loop {
            for element in self.input.recv_batch() {
                match element {
                    Element::Tuple(tuple) => {
                        counters.inc_in();
                        let key = (self.key_fn)(&tuple.data);
                        self.store.insert(key, tuple);
                    }
                    Element::Watermark(ts) => {
                        let closed = self.store.close_up_to(ts);
                        if !self.emit_closed(closed, &mut out, &counters) {
                            return Ok(counters.stats(&self.name));
                        }
                        // Future outputs carry the start of a not-yet-closed window,
                        // which is strictly greater than ts - WS.
                        let downstream_wm = ts.saturating_sub(window_size);
                        if out.send_watermark(downstream_wm).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                    }
                    Element::Barrier(epoch) => {
                        if let Some(ckpt) = &checkpoints {
                            let snapshot = self.store.snapshot();
                            // Prefer the byte container (durable, diffable);
                            // fall back to the process-local inline share when
                            // no persister fits or the state is not encodable.
                            let committed =
                                match persister.as_ref().and_then(|p| p.encode(&snapshot)) {
                                    Some(bytes) => Snapshot::bytes(bytes),
                                    None => Snapshot::inline(snapshot),
                                };
                            ckpt.store.commit(&self.name, epoch, committed);
                        }
                        if out.send_barrier(epoch).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                    }
                    Element::End => {
                        let closed = self.store.close_all();
                        let _ = self.emit_closed(closed, &mut out, &counters);
                        let _ = out.send_watermark(Timestamp::MAX);
                        let _ = out.send_end();
                        return Ok(counters.stats(&self.name));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::provenance::NoProvenance;
    use crate::time::Duration;

    fn tuple(ts: u64, car: u32, speed: u32) -> Arc<GTuple<(u32, u32), ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), ts, (car, speed), ()))
    }

    /// Runs an aggregate counting tuples per car over a WS=120s / WA=30s window,
    /// mirroring the Q1 aggregate of Figure 1.
    fn run_count_aggregate(input: Vec<Element<(u32, u32), ()>>) -> Vec<(u64, u32, usize)> {
        let (in_tx, in_rx) = stream_channel(256);
        let out_slot = OutputSlot::<(u32, usize), ()>::new();
        let (out_tx, mut out_rx) = stream_channel(256);
        out_slot.connect(out_tx);
        for el in input {
            in_tx.send(el).unwrap();
        }
        in_tx.send(Element::End).unwrap();

        let spec = WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap();
        let op = AggregateOp::new(
            "count",
            in_rx,
            out_slot,
            spec,
            |t: &(u32, u32)| t.0,
            |w: &WindowView<'_, u32, (u32, u32), ()>| (*w.key, w.len()),
            NoProvenance,
            Default::default(),
        );
        Box::new(op).run().unwrap();

        let mut outputs = Vec::new();
        loop {
            match out_rx.recv() {
                Element::Tuple(t) => outputs.push((t.ts.as_secs(), t.data.0, t.data.1)),
                Element::Watermark(_) | Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        outputs
    }

    #[test]
    fn counts_per_group_in_sliding_windows() {
        // Car 1 reports at 1, 31, 61, 91 (all zero speed); car 2 reports once at 32.
        let input = vec![
            Element::Tuple(tuple(1, 1, 0)),
            Element::Tuple(tuple(31, 1, 0)),
            Element::Tuple(tuple(32, 2, 0)),
            Element::Tuple(tuple(61, 1, 0)),
            Element::Tuple(tuple(91, 1, 0)),
            Element::Watermark(Timestamp::from_secs(121)),
        ];
        let outputs = run_count_aggregate(input);
        // The window [0, 120) closes at watermark 121 (plus later windows at end of
        // stream). The first closed window must count 4 tuples for car 1, 1 for car 2.
        let first_window: Vec<_> = outputs.iter().filter(|(ts, _, _)| *ts == 0).collect();
        assert_eq!(first_window.len(), 2);
        assert_eq!(*first_window[0], (0, 1, 4));
        assert_eq!(*first_window[1], (0, 2, 1));
    }

    #[test]
    fn end_of_stream_flushes_open_windows() {
        let input = vec![Element::Tuple(tuple(10, 5, 0))];
        let outputs = run_count_aggregate(input);
        // The tuple belongs to the single window [0, 120) (no earlier windows exist);
        // flushing at end-of-stream emits it exactly once per open window containing it.
        assert!(!outputs.is_empty());
        assert!(outputs.iter().all(|&(_, car, _)| car == 5));
        assert_eq!(outputs[0].2, 1);
    }

    #[test]
    fn aggregate_output_timestamp_is_window_start() {
        let input = vec![
            Element::Tuple(tuple(31, 1, 0)),
            Element::Watermark(Timestamp::from_secs(200)),
        ];
        let outputs = run_count_aggregate(input);
        // Tuple at 31s belongs to windows starting at 0 and 30.
        let starts: Vec<u64> = outputs.iter().map(|&(ts, _, _)| ts).collect();
        assert!(starts.contains(&0));
        assert!(starts.contains(&30));
    }

    #[test]
    fn stimulus_of_output_is_latest_window_stimulus() {
        let (in_tx, in_rx) = stream_channel(64);
        let out_slot = OutputSlot::<usize, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(64);
        out_slot.connect(out_tx);
        in_tx.send(Element::Tuple(tuple(1, 1, 0))).unwrap();
        in_tx.send(Element::Tuple(tuple(20, 1, 0))).unwrap();
        in_tx.send(Element::End).unwrap();
        let spec = WindowSpec::tumbling(Duration::from_secs(30)).unwrap();
        let op = AggregateOp::new(
            "count",
            in_rx,
            out_slot,
            spec,
            |t: &(u32, u32)| t.0,
            |w: &WindowView<'_, u32, (u32, u32), ()>| w.len(),
            NoProvenance,
            Default::default(),
        );
        Box::new(op).run().unwrap();
        let out = out_rx.recv();
        let out = out.as_tuple().unwrap();
        assert_eq!(
            out.stimulus, 20,
            "stimulus must be the latest input stimulus"
        );
    }
}
