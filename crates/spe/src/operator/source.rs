//! The Source operator: injects externally generated tuples into a query.
//!
//! A Source wraps a [`SourceGenerator`] that produces timestamp-ordered payloads
//! (position reports, smart-meter readings, ...). The operator stamps each tuple with
//! the current wall-clock *stimulus*, asks the provenance system for the `SOURCE`
//! metadata (§4.1) and forwards the tuple followed by a watermark, so downstream
//! stateful operators can make deterministic progress.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::channel::OutputSlot;
use crate::error::SpeError;
use crate::metrics::OpMetrics;
use crate::operator::{now_nanos, Operator, OperatorStats};
use crate::provenance::{ProvenanceSystem, SourceContext};
use crate::state::{CheckpointHandle, Snapshot};
use crate::time::Timestamp;
use crate::tuple::{GTuple, TupleData};

/// A generator of timestamp-ordered source tuples.
///
/// Generators must produce non-decreasing timestamps; the Source operator checks this
/// in debug builds.
pub trait SourceGenerator: Send + 'static {
    /// The payload type produced by this generator.
    type Item: TupleData;

    /// Produces the next tuple, or `None` when the stream is exhausted.
    fn next_tuple(&mut self) -> Option<(Timestamp, Self::Item)>;
}

/// A source backed by an in-memory vector of timestamped payloads.
#[derive(Debug, Clone)]
pub struct VecSource<T> {
    items: Vec<(Timestamp, T)>,
    next: usize,
}

impl<T: TupleData> VecSource<T> {
    /// Creates a source from explicitly timestamped items.
    ///
    /// # Panics
    /// Panics if the items are not sorted by timestamp.
    pub fn new(items: Vec<(Timestamp, T)>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0].0 <= w[1].0),
            "VecSource items must be timestamp-ordered"
        );
        VecSource { items, next: 0 }
    }

    /// Creates a source that assigns evenly spaced timestamps (`i * period_ms`).
    pub fn with_period(items: Vec<T>, period_ms: u64) -> Self {
        let items = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| (Timestamp::from_millis(i as u64 * period_ms), item))
            .collect();
        VecSource { items, next: 0 }
    }

    /// Number of items remaining.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.next
    }
}

impl<T: TupleData> SourceGenerator for VecSource<T> {
    type Item = T;

    fn next_tuple(&mut self) -> Option<(Timestamp, T)> {
        let item = self.items.get(self.next).cloned();
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

/// Input-rate control for a Source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateLimit {
    /// Inject tuples as fast as downstream back-pressure allows (used to measure the
    /// maximum sustainable throughput, as in the paper's evaluation).
    #[default]
    Unlimited,
    /// Inject at most this many tuples per second.
    TuplesPerSecond(u64),
}

/// Configuration of a Source operator.
#[derive(Debug, Clone, Copy)]
pub struct SourceConfig {
    /// Injection rate control.
    pub rate: RateLimit,
    /// Emit a watermark after every `watermark_every` tuples (1 = after every tuple).
    pub watermark_every: u64,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            rate: RateLimit::Unlimited,
            watermark_every: 1,
        }
    }
}

/// The Source operator runtime.
#[derive(Debug)]
pub struct SourceOp<G: SourceGenerator, P: ProvenanceSystem> {
    name: String,
    source_id: u32,
    generator: G,
    config: SourceConfig,
    output: OutputSlot<G::Item, P::Meta>,
    provenance: P,
    stop: Arc<AtomicBool>,
    checkpoints: CheckpointHandle,
    metrics: OpMetrics,
}

impl<G: SourceGenerator, P: ProvenanceSystem> SourceOp<G, P> {
    /// Creates a Source operator. When `checkpoints` is filled before the query is
    /// deployed, the Source injects an epoch barrier every
    /// [`interval`](crate::state::CheckpointConfig::interval) tuples and commits its
    /// replay offset for that epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        source_id: u32,
        generator: G,
        config: SourceConfig,
        output: OutputSlot<G::Item, P::Meta>,
        provenance: P,
        stop: Arc<AtomicBool>,
        checkpoints: CheckpointHandle,
    ) -> Self {
        SourceOp {
            name: name.into(),
            source_id,
            generator,
            config,
            output,
            provenance,
            stop,
            checkpoints,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<G: SourceGenerator, P: ProvenanceSystem> Operator for SourceOp<G, P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        // Live load-shedding signals: how far the source has replayed and which
        // barrier epoch it last committed.
        let replay_offset = counters.gauge("genealog_source_replay_offset");
        let barrier_epoch = counters.gauge("genealog_source_barrier_epoch");
        let mut seq: u64 = 0;
        let mut last_ts = Timestamp::MIN;

        let checkpoints = self.checkpoints.get().cloned();
        if let Some(ckpt) = &checkpoints {
            ckpt.store.register(&self.name);
            if let Some(offset) = ckpt
                .store
                .restore_snapshot(&self.name)
                .and_then(|s| s.as_u64())
            {
                // Fast-forward to the committed replay offset: the generator is
                // deterministic, so discarding the first `offset` tuples reproduces
                // exactly the prefix the checkpoint already covers. Resuming with
                // `seq = offset` keeps the watermark and barrier cadence identical
                // to a run that never failed.
                while seq < offset {
                    if self.generator.next_tuple().is_none() {
                        break;
                    }
                    seq += 1;
                }
                replay_offset.set(seq);
            }
        }
        let start = std::time::Instant::now();
        let base_seq = seq;

        while let Some((ts, data)) = self.generator.next_tuple() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            debug_assert!(
                ts >= last_ts,
                "source generator produced out-of-order tuples"
            );
            last_ts = ts;

            if let RateLimit::TuplesPerSecond(rate) = self.config.rate {
                if let Some(expected_nanos) = ((seq - base_seq) * 1_000_000_000).checked_div(rate) {
                    let expected = std::time::Duration::from_nanos(expected_nanos);
                    let elapsed = start.elapsed();
                    if expected > elapsed {
                        std::thread::sleep(expected - elapsed);
                    }
                }
            }

            let ctx = SourceContext {
                source_id: self.source_id,
                seq,
                ts,
            };
            let meta = self.provenance.source_meta(&ctx, &data);
            let tuple = Arc::new(GTuple::new(ts, now_nanos(), data, meta));
            if out.send_tuple(tuple).is_err() {
                // Downstream shut down: stop injecting.
                return Ok(counters.stats(&self.name));
            }
            seq += 1;
            counters.inc_out();
            replay_offset.set(seq);
            if self.config.watermark_every > 0 && seq.is_multiple_of(self.config.watermark_every) {
                let _ = out.send_watermark(ts);
            }
            if let Some(ckpt) = &checkpoints {
                if seq.is_multiple_of(ckpt.interval) {
                    // The epoch's replay offset is committed *before* the barrier is
                    // emitted, so a barrier seen downstream always has its source
                    // offset on record.
                    let epoch = seq / ckpt.interval;
                    ckpt.store.commit(&self.name, epoch, Snapshot::u64(seq));
                    barrier_epoch.set(epoch);
                    let _ = out.send_barrier(epoch);
                }
            }
        }
        let _ = out.send_watermark(Timestamp::MAX);
        let _ = out.send_end();
        Ok(counters.stats(&self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::provenance::NoProvenance;
    use crate::tuple::Element;

    #[test]
    fn vec_source_yields_in_order() {
        let mut src = VecSource::with_period(vec![10i64, 20, 30], 1_000);
        assert_eq!(src.remaining(), 3);
        assert_eq!(src.next_tuple(), Some((Timestamp::from_millis(0), 10)));
        assert_eq!(src.next_tuple(), Some((Timestamp::from_millis(1_000), 20)));
        assert_eq!(src.remaining(), 1);
        assert!(src.next_tuple().is_some());
        assert!(src.next_tuple().is_none());
    }

    #[test]
    #[should_panic(expected = "timestamp-ordered")]
    fn vec_source_rejects_unsorted_items() {
        let _ = VecSource::new(vec![
            (Timestamp::from_secs(2), 1i64),
            (Timestamp::from_secs(1), 2),
        ]);
    }

    #[test]
    fn source_op_emits_tuples_watermarks_and_end() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx, mut rx) = stream_channel(64);
        slot.connect(tx);
        let op = SourceOp::new(
            "src",
            0,
            VecSource::with_period(vec![1i64, 2, 3], 500),
            SourceConfig::default(),
            slot,
            NoProvenance,
            Arc::new(AtomicBool::new(false)),
            Default::default(),
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_out, 3);

        let mut tuples = 0;
        let mut watermarks = 0;
        loop {
            match rx.recv() {
                Element::Tuple(_) => tuples += 1,
                Element::Watermark(_) => watermarks += 1,
                Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        assert_eq!(tuples, 3);
        // One watermark per tuple plus the final MAX watermark.
        assert_eq!(watermarks, 4);
    }

    #[test]
    fn source_op_respects_stop_flag() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx, mut rx) = stream_channel(1024);
        slot.connect(tx);
        let stop = Arc::new(AtomicBool::new(true));
        let op = SourceOp::new(
            "src",
            0,
            VecSource::with_period((0..100i64).collect(), 1),
            SourceConfig::default(),
            slot,
            NoProvenance,
            stop,
            Default::default(),
        );
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_out, 0);
        // Still closes the stream.
        loop {
            match rx.recv() {
                Element::End => break,
                _ => continue,
            }
        }
    }

    #[test]
    fn rate_limited_source_takes_at_least_expected_time() {
        let slot = OutputSlot::<i64, ()>::new();
        let (tx, _rx) = stream_channel(1024);
        slot.connect(tx);
        let op = SourceOp::new(
            "src",
            0,
            VecSource::with_period((0..20i64).collect(), 1),
            SourceConfig {
                rate: RateLimit::TuplesPerSecond(1_000),
                watermark_every: 1,
            },
            slot,
            NoProvenance,
            Arc::new(AtomicBool::new(false)),
            Default::default(),
        );
        let start = std::time::Instant::now();
        Box::new(op).run().unwrap();
        // 20 tuples at 1000 t/s should take at least ~19 ms.
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
    }
}
