//! The standard streaming operators of the paper's §2.
//!
//! Stateless operators: [`map::MapOp`], [`filter::FilterOp`], [`multiplex::MultiplexOp`],
//! [`union::UnionOp`]. Stateful operators: [`aggregate::AggregateOp`], [`join::JoinOp`].
//! Edges of the query: [`source::SourceOp`] and [`sink::SinkOp`].
//!
//! Every operator implements the [`Operator`] runtime trait: a blocking `run` loop that
//! consumes input elements, applies the operator semantics, calls the provenance hooks
//! of the query's [`ProvenanceSystem`](crate::provenance::ProvenanceSystem) whenever a
//! new tuple is created, and pushes results downstream. The query builder
//! ([`crate::query::Query`]) constructs operators and the runtime
//! ([`crate::runtime`]) runs each one on its own thread.

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod map;
pub mod multiplex;
pub mod sink;
pub mod source;
pub mod union;

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::channel::ChannelClosed;
use crate::error::SpeError;
use crate::provenance::MetaData;
use crate::tuple::{GTuple, TupleData};

/// Statistics reported by an operator when its `run` loop terminates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Operator name (unique within a query).
    pub name: String,
    /// Number of input tuples processed.
    pub tuples_in: u64,
    /// Number of output tuples produced.
    pub tuples_out: u64,
}

impl OperatorStats {
    /// Creates a statistics record for the named operator.
    pub fn new(name: impl Into<String>) -> Self {
        OperatorStats {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Folds another operator's counters into this record (used by the runtime to
    /// aggregate the per-shard statistics of a parallel operator into one report).
    pub fn absorb(&mut self, other: &OperatorStats) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
    }
}

/// A stateless, single-input/single-output processing step that the physical-plan
/// fusion pass ([`crate::fusion`]) can compose with adjacent steps into one thread.
///
/// The stateless operators (Filter, Map and the meta-aware Map) are expressed as
/// stages: a stage receives one input tuple and hands zero or more output tuples to
/// `emit`. When fusion is enabled ([`QueryConfig::fusion`](crate::query::QueryConfig))
/// the query builder chains consecutive stages so that a tuple flows through all of
/// them in a single call stack — no intermediate channel, batch buffer or thread
/// hand-off. When fusion is disabled every stage still runs through the same driver,
/// just as a chain of length one, so fused and unfused plans execute identical
/// per-tuple code.
///
/// Stages never see watermarks or the end-of-stream marker: every stateless operator
/// forwards them unchanged, so the chain driver short-circuits them straight to the
/// chain output. This is also what makes fusion provenance-transparent — a stage
/// either forwards the input `Arc` (Filter) or calls the exact provenance hook the
/// standalone operator would call (Map), so GeneaLog metadata is byte-identical
/// whether or not the plan is fused.
pub trait FusedStage<I: TupleData, O: TupleData, M: MetaData>: Send + 'static {
    /// Processes one input tuple, handing each output tuple to `emit`.
    ///
    /// # Errors
    /// Propagates [`ChannelClosed`] from `emit` so the chain can shut down
    /// gracefully when the downstream consumer has gone away.
    fn process(
        &mut self,
        tuple: Arc<GTuple<I, M>>,
        emit: &mut dyn FnMut(Arc<GTuple<O, M>>) -> Result<(), ChannelClosed>,
    ) -> Result<(), ChannelClosed>;
}

/// Runtime behaviour of an operator: a blocking loop that runs until its inputs end.
pub trait Operator: Send {
    /// The operator's name (unique within its query).
    fn name(&self) -> &str;

    /// Runs the operator to completion.
    ///
    /// # Errors
    /// Returns [`SpeError::Runtime`] if the operator fails irrecoverably; downstream
    /// shutdown (a closed output channel) is treated as a graceful stop, not an error.
    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError>;

    /// Hands the operator its [`OpMetrics`](crate::metrics::OpMetrics) cell so
    /// its counts surface in the query's live registry. Called by the query
    /// between [`set_operator`](crate::query::Query::set_operator) and deploy;
    /// the default ignores the cell (the operator then only reports through the
    /// [`OperatorStats`] it returns from [`run`](Operator::run)).
    fn set_metrics(&mut self, _metrics: crate::metrics::OpMetrics) {}
}

/// Process-wide monotonic clock anchor used for stimulus/latency measurement.
fn clock_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide clock anchor.
///
/// Source operators stamp new tuples with this value (the *stimulus*); sinks subtract
/// it from the current value to obtain the latency metric of the evaluation (§7).
pub fn now_nanos() -> u64 {
    clock_anchor().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_nanos_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn operator_stats_constructor() {
        let s = OperatorStats::new("filter");
        assert_eq!(s.name, "filter");
        assert_eq!(s.tuples_in, 0);
        assert_eq!(s.tuples_out, 0);
    }
}
