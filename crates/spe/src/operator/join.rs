//! The Join operator: predicate join of two streams within a time window.
//!
//! For each pair `(tL, tR)` with `|tL.ts − tR.ts| ≤ WS` that satisfies the predicate,
//! the Join emits one output tuple combining the two payloads (§2). The paper's
//! instrumented Join (§4.1) points `U1` at the more recent of the two inputs and `U2`
//! at the older one — that instrumentation is the [`ProvenanceSystem::join_meta`] hook.
//!
//! The two inputs are processed in global timestamp order (left side wins ties), so
//! the sequence of output tuples is deterministic regardless of thread scheduling.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::channel::{OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::metrics::OpMetrics;
use crate::operator::{Operator, OperatorStats};
use crate::provenance::{detach_tuple, ProvenanceSystem};
use crate::state::{CheckpointHandle, Snapshot};
use crate::time::{Duration, Timestamp};
use crate::tuple::{Element, GTuple, TupleData};

/// Everything a Join persists at an epoch barrier: both sides' retained time windows
/// and the watermark already emitted downstream. Pending buffers are provably empty
/// at alignment (any pending head is releasable once the other side is blocked on
/// the barrier), so they need no snapshot.
struct JoinSnapshot<L, R, M> {
    left_window: Vec<Arc<GTuple<L, M>>>,
    right_window: Vec<Arc<GTuple<R, M>>>,
    emitted_watermark: Timestamp,
}

struct JoinSide<T, M> {
    rx: StreamReceiver<T, M>,
    /// Elements received but not yet processed (kept in arrival = timestamp order).
    pending: VecDeque<Arc<GTuple<T, M>>>,
    /// Already-processed tuples retained for matching against the other side.
    window: VecDeque<Arc<GTuple<T, M>>>,
    promised: Timestamp,
    /// Epoch barrier this side has reached (checkpoint alignment): the side is not
    /// pumped again until the other side reaches the same barrier.
    at_barrier: Option<u64>,
    ended: bool,
}

impl<T, M> JoinSide<T, M> {
    fn new(rx: StreamReceiver<T, M>) -> Self {
        JoinSide {
            rx,
            pending: VecDeque::new(),
            window: VecDeque::new(),
            promised: Timestamp::MIN,
            at_barrier: None,
            ended: false,
        }
    }

    fn lower_bound(&self) -> Timestamp {
        if let Some(front) = self.pending.front() {
            front.ts
        } else if self.ended || self.at_barrier.is_some() {
            // A side blocked on a barrier delivers nothing until the cut is aligned,
            // so it must not hold back the release of the other side's buffered
            // pre-barrier tuples.
            Timestamp::MAX
        } else {
            self.promised
        }
    }

    fn fold(&mut self, element: Element<T, M>) {
        match element {
            Element::Tuple(t) => {
                if t.ts > self.promised {
                    self.promised = t.ts;
                }
                self.pending.push_back(t);
            }
            Element::Watermark(ts) => {
                if ts > self.promised {
                    self.promised = ts;
                }
            }
            Element::Barrier(epoch) => self.at_barrier = Some(epoch),
            Element::End => self.ended = true,
        }
    }

    fn pump(&mut self) {
        for element in self.rx.recv_batch() {
            self.fold(element);
        }
    }

    fn purge(&mut self, frontier: Timestamp, ws: Duration) {
        while let Some(front) = self.window.front() {
            if front.ts + ws < frontier {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The Join operator runtime.
pub struct JoinOp<L, R, O, PR, CF, P: ProvenanceSystem> {
    name: String,
    left: JoinSide<L, P::Meta>,
    right: JoinSide<R, P::Meta>,
    output: OutputSlot<O, P::Meta>,
    window: Duration,
    predicate: PR,
    combine: CF,
    provenance: P,
    emitted_watermark: Timestamp,
    checkpoints: CheckpointHandle,
    metrics: OpMetrics,
}

impl<L, R, O, PR, CF, P> JoinOp<L, R, O, PR, CF, P>
where
    L: TupleData,
    R: TupleData,
    O: TupleData,
    PR: FnMut(&L, &R) -> bool + Send + 'static,
    CF: FnMut(&L, &R) -> O + Send + 'static,
    P: ProvenanceSystem,
{
    /// Creates a Join operator with the given window size `WS`. When `checkpoints`
    /// is filled before the query is deployed, the Join aligns epoch barriers across
    /// its two inputs and snapshots both time windows at each aligned cut.
    ///
    /// # Panics
    /// Panics if the window size is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Join parameters
    pub fn new(
        name: impl Into<String>,
        left: StreamReceiver<L, P::Meta>,
        right: StreamReceiver<R, P::Meta>,
        output: OutputSlot<O, P::Meta>,
        window: Duration,
        predicate: PR,
        combine: CF,
        provenance: P,
        checkpoints: CheckpointHandle,
    ) -> Self {
        assert!(!window.is_zero(), "Join window size must be positive");
        JoinOp {
            name: name.into(),
            left: JoinSide::new(left),
            right: JoinSide::new(right),
            output,
            window,
            predicate,
            combine,
            provenance,
            emitted_watermark: Timestamp::MIN,
            checkpoints,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<L, R, O, PR, CF, P> Operator for JoinOp<L, R, O, PR, CF, P>
where
    L: TupleData,
    R: TupleData,
    O: TupleData,
    PR: FnMut(&L, &R) -> bool + Send + 'static,
    CF: FnMut(&L, &R) -> O + Send + 'static,
    P: ProvenanceSystem,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(mut self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        let checkpoints = self.checkpoints.get().cloned();
        if let Some(ckpt) = &checkpoints {
            ckpt.store.register(&self.name);
            if let Some(snapshot) = ckpt
                .store
                .restore_snapshot(&self.name)
                .and_then(|s| s.downcast::<JoinSnapshot<L, R, P::Meta>>())
            {
                // Re-stitch the provenance graph slice: every restored window tuple
                // gets a fresh, unset N-cell so recovered chains link only among
                // recovered tuples (see `ProvenanceSystem::detach_meta`).
                self.left.window = snapshot
                    .left_window
                    .iter()
                    .map(|t| detach_tuple(&self.provenance, t))
                    .collect();
                self.right.window = snapshot
                    .right_window
                    .iter()
                    .map(|t| detach_tuple(&self.provenance, t))
                    .collect();
                self.emitted_watermark = snapshot.emitted_watermark;
            }
        }
        loop {
            let left_lb = self.left.lower_bound();
            let right_lb = self.right.lower_bound();

            // Can we process the left head? Only if the right side cannot still deliver
            // an earlier tuple (ties go to the left side).
            let left_ready = self.left.pending.front().is_some_and(|t| t.ts <= right_lb);
            let right_ready = self.right.pending.front().is_some_and(|t| t.ts < left_lb);

            if left_ready {
                let tuple = self.left.pending.pop_front().expect("checked non-empty");
                counters.inc_in();
                for candidate in &self.right.window {
                    if tuple.ts.distance(candidate.ts) <= self.window
                        && (self.predicate)(&tuple.data, &candidate.data)
                    {
                        let data = (self.combine)(&tuple.data, &candidate.data);
                        let meta = self.provenance.join_meta(&tuple, candidate);
                        let output = Arc::new(GTuple::new(
                            tuple.ts.max(candidate.ts),
                            tuple.stimulus.max(candidate.stimulus),
                            data,
                            meta,
                        ));
                        if out.send_tuple(output).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                        counters.inc_out();
                    }
                }
                self.left.window.push_back(tuple);
            } else if right_ready {
                let tuple = self.right.pending.pop_front().expect("checked non-empty");
                counters.inc_in();
                for candidate in &self.left.window {
                    if tuple.ts.distance(candidate.ts) <= self.window
                        && (self.predicate)(&candidate.data, &tuple.data)
                    {
                        let data = (self.combine)(&candidate.data, &tuple.data);
                        let meta = self.provenance.join_meta(candidate, &tuple);
                        let output = Arc::new(GTuple::new(
                            tuple.ts.max(candidate.ts),
                            tuple.stimulus.max(candidate.stimulus),
                            data,
                            meta,
                        ));
                        if out.send_tuple(output).is_err() {
                            return Ok(counters.stats(&self.name));
                        }
                        counters.inc_out();
                    }
                }
                self.right.window.push_back(tuple);
            } else {
                // Barrier alignment must be checked *before* the frontier==MAX end
                // branch: when both sides are blocked on a barrier, both lower
                // bounds read MAX exactly like the all-ended case. Reaching this
                // branch with a side blocked or ended means its pending buffer is
                // empty (a pending head would be releasable against a MAX bound),
                // so the windows are the only state crossing the cut.
                let left_blocked = self.left.at_barrier.is_some();
                let right_blocked = self.right.at_barrier.is_some();
                let left_at_cut = left_blocked || self.left.ended;
                let right_at_cut = right_blocked || self.right.ended;
                if (left_blocked || right_blocked) && left_at_cut && right_at_cut {
                    let epoch = self
                        .left
                        .at_barrier
                        .into_iter()
                        .chain(self.right.at_barrier)
                        .max()
                        .expect("at least one side is at a barrier");
                    if let Some(ckpt) = &checkpoints {
                        let snapshot = JoinSnapshot {
                            left_window: self.left.window.iter().cloned().collect(),
                            right_window: self.right.window.iter().cloned().collect(),
                            emitted_watermark: self.emitted_watermark,
                        };
                        ckpt.store
                            .commit(&self.name, epoch, Snapshot::inline(snapshot));
                    }
                    self.left.at_barrier = None;
                    self.right.at_barrier = None;
                    if out.send_barrier(epoch).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                    continue;
                }
                // No head is releasable: either everything has ended, or we must wait
                // for more elements from the side currently holding us back.
                let frontier = left_lb.min(right_lb);
                if frontier == Timestamp::MAX {
                    let _ = out.send_watermark(Timestamp::MAX);
                    let _ = out.send_end();
                    return Ok(counters.stats(&self.name));
                }
                self.left.purge(frontier, self.window);
                self.right.purge(frontier, self.window);
                if frontier > self.emitted_watermark && frontier > Timestamp::MIN {
                    self.emitted_watermark = frontier;
                    if out.send_watermark(frontier).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                // Receive more input. Blocking on one specific side can deadlock when
                // that side is quiet while the other side's channel fills up and
                // back-pressures a shared upstream (e.g. the Multiplex of Q4 feeding
                // both Join branches), so select over whichever live side delivers
                // first. The release decision above stays timestamp-based, keeping the
                // output deterministic regardless of arrival order.
                // A side blocked on a barrier is never pumped: consuming its
                // post-barrier elements before the cut is aligned would mix epochs.
                let left_pumpable = !self.left.ended && self.left.at_barrier.is_none();
                let right_pumpable = !self.right.ended && self.right.at_barrier.is_none();
                match (left_pumpable, right_pumpable) {
                    (true, false) => self.left.pump(),
                    (false, true) => self.right.pump(),
                    (true, true) => {
                        // Drain partially consumed batches before selecting on the
                        // raw channels, so locally buffered elements are never
                        // overlooked while both channels are idle.
                        if self.left.rx.has_pending() {
                            self.left.pump();
                        } else if self.right.rx.has_pending() {
                            self.right.pump();
                        } else {
                            let take_left = {
                                let mut select = crossbeam_channel::Select::new();
                                let left_idx = select.recv(self.left.rx.inner());
                                let _right_idx = select.recv(self.right.rx.inner());
                                select.select().index() == left_idx
                            };
                            // Complete the ready receive through the StreamReceiver
                            // (pump -> recv_batch) so its element accounting stays
                            // correct; a disconnect folds in as an End batch.
                            if take_left {
                                self.left.pump();
                            } else {
                                self.right.pump();
                            }
                        }
                    }
                    // Unreachable while the query runs: both sides blocked/ended is
                    // handled by the alignment and end branches above.
                    (false, false) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::provenance::NoProvenance;

    fn tup<T: TupleData>(ts: u64, data: T) -> Arc<GTuple<T, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), ts, data, ()))
    }

    /// Joins (meter_id, daily) with (meter_id, midnight) within one hour, as Q4 does.
    fn run_join(
        left: Vec<Element<(u32, i64), ()>>,
        right: Vec<Element<(u32, i64), ()>>,
        window_secs: u64,
    ) -> Vec<(u64, (u32, i64, i64))> {
        let (ltx, lrx) = stream_channel(256);
        let (rtx, rrx) = stream_channel(256);
        let out_slot = OutputSlot::<(u32, i64, i64), ()>::new();
        let (otx, mut orx) = stream_channel(256);
        out_slot.connect(otx);
        for el in left {
            ltx.send(el).unwrap();
        }
        ltx.send(Element::End).unwrap();
        for el in right {
            rtx.send(el).unwrap();
        }
        rtx.send(Element::End).unwrap();

        let op = JoinOp::new(
            "join",
            lrx,
            rrx,
            out_slot,
            Duration::from_secs(window_secs),
            |l: &(u32, i64), r: &(u32, i64)| l.0 == r.0,
            |l: &(u32, i64), r: &(u32, i64)| (l.0, l.1, r.1),
            NoProvenance,
            Default::default(),
        );
        Box::new(op).run().unwrap();
        let mut outputs = Vec::new();
        loop {
            match orx.recv() {
                Element::Tuple(t) => outputs.push((t.ts.as_secs(), t.data)),
                Element::Watermark(_) | Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        outputs
    }

    #[test]
    fn joins_pairs_matching_predicate_within_window() {
        let left = vec![
            Element::Tuple(tup(10, (1u32, 100i64))),
            Element::Tuple(tup(20, (2u32, 200i64))),
        ];
        let right = vec![
            Element::Tuple(tup(15, (1u32, 5i64))),
            Element::Tuple(tup(25, (3u32, 7i64))),
        ];
        let out = run_join(left, right, 60);
        assert_eq!(out, vec![(15, (1, 100, 5))]);
    }

    #[test]
    fn pairs_outside_window_are_not_joined() {
        let left = vec![Element::Tuple(tup(0, (1u32, 1i64)))];
        let right = vec![Element::Tuple(tup(100, (1u32, 2i64)))];
        let out = run_join(left, right, 50);
        assert!(out.is_empty());
    }

    #[test]
    fn pair_exactly_at_window_boundary_is_joined() {
        let left = vec![Element::Tuple(tup(0, (1u32, 1i64)))];
        let right = vec![Element::Tuple(tup(50, (1u32, 2i64)))];
        let out = run_join(left, right, 50);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn output_timestamp_is_the_more_recent_input() {
        let left = vec![Element::Tuple(tup(40, (9u32, 1i64)))];
        let right = vec![Element::Tuple(tup(10, (9u32, 2i64)))];
        let out = run_join(left, right, 100);
        assert_eq!(out, vec![(40, (9, 1, 2))]);
    }

    #[test]
    fn join_handles_many_matches_per_tuple() {
        let left = vec![
            Element::Tuple(tup(10, (1u32, 1i64))),
            Element::Tuple(tup(11, (1u32, 2i64))),
            Element::Tuple(tup(12, (1u32, 3i64))),
        ];
        let right = vec![Element::Tuple(tup(12, (1u32, 9i64)))];
        let out = run_join(left, right, 100);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn output_is_timestamp_ordered() {
        let left: Vec<_> = (0..20)
            .map(|i| Element::Tuple(tup(i * 10, (1u32, i as i64))))
            .collect();
        let right: Vec<_> = (0..20)
            .map(|i| Element::Tuple(tup(i * 10 + 5, (1u32, i as i64))))
            .collect();
        let out = run_join(left, right, 15);
        assert!(!out.is_empty());
        let ts: Vec<u64> = out.iter().map(|&(ts, _)| ts).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_is_rejected() {
        let (_ltx, lrx) = stream_channel::<i64, ()>(1);
        let (_rtx, rrx) = stream_channel::<i64, ()>(1);
        let slot = OutputSlot::<i64, ()>::new();
        let _ = JoinOp::new(
            "join",
            lrx,
            rrx,
            slot,
            Duration::ZERO,
            |_: &i64, _: &i64| true,
            |l: &i64, r: &i64| l + r,
            NoProvenance,
            Default::default(),
        );
    }

    #[test]
    fn join_aligns_barriers_and_forwards_one() {
        let (ltx, lrx) = stream_channel::<(u32, i64), ()>(64);
        let (rtx, rrx) = stream_channel::<(u32, i64), ()>(64);
        let out_slot = OutputSlot::<(u32, i64, i64), ()>::new();
        let (otx, mut orx) = stream_channel(64);
        out_slot.connect(otx);
        // Both sides carry a barrier for epoch 1 after their pre-barrier tuple; the
        // join must release the pair first, then forward exactly one barrier.
        ltx.send(Element::Tuple(tup(10, (1u32, 100i64)))).unwrap();
        ltx.send(Element::Barrier(1)).unwrap();
        ltx.send(Element::End).unwrap();
        rtx.send(Element::Tuple(tup(15, (1u32, 5i64)))).unwrap();
        rtx.send(Element::Barrier(1)).unwrap();
        rtx.send(Element::End).unwrap();

        let op = JoinOp::new(
            "join",
            lrx,
            rrx,
            out_slot,
            Duration::from_secs(60),
            |l: &(u32, i64), r: &(u32, i64)| l.0 == r.0,
            |l: &(u32, i64), r: &(u32, i64)| (l.0, l.1, r.1),
            NoProvenance,
            Default::default(),
        );
        Box::new(op).run().unwrap();
        let mut tuples = Vec::new();
        let mut barriers = Vec::new();
        loop {
            match orx.recv() {
                Element::Tuple(t) => {
                    assert!(barriers.is_empty(), "tuple emitted after the barrier");
                    tuples.push(t.data);
                }
                Element::Barrier(epoch) => barriers.push(epoch),
                Element::Watermark(_) => {}
                Element::End => break,
            }
        }
        assert_eq!(tuples, vec![(1, 100, 5)]);
        assert_eq!(barriers, vec![1]);
    }
}
