//! The Union operator: deterministically merges multiple streams into one.
//!
//! Union is a forwarding operator (no provenance instrumentation, Definition 3.1 type
//! (i)). Determinism comes from the timestamp-ordered merge of
//! [`DeterministicMerge`], as required by §2.

use crate::channel::{OutputSlot, StreamReceiver};
use crate::error::SpeError;
use crate::merge::{DeterministicMerge, MergedElement};
use crate::metrics::OpMetrics;
use crate::operator::{Operator, OperatorStats};
use crate::provenance::MetaData;
use crate::tuple::TupleData;

/// The Union operator runtime.
pub struct UnionOp<T, M> {
    name: String,
    inputs: Vec<StreamReceiver<T, M>>,
    output: OutputSlot<T, M>,
    metrics: OpMetrics,
}

impl<T, M> UnionOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    /// Creates a Union operator.
    ///
    /// # Panics
    /// Panics if `inputs` is empty.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<StreamReceiver<T, M>>,
        output: OutputSlot<T, M>,
    ) -> Self {
        assert!(!inputs.is_empty(), "Union requires at least one input");
        UnionOp {
            name: name.into(),
            inputs,
            output,
            metrics: OpMetrics::deferred(),
        }
    }
}

impl<T, M> Operator for UnionOp<T, M>
where
    T: TupleData,
    M: MetaData,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn set_metrics(&mut self, metrics: OpMetrics) {
        self.metrics = metrics;
    }

    fn run(self: Box<Self>) -> Result<OperatorStats, SpeError> {
        let mut out = self.output.open();
        let counters = self.metrics.handles(&self.name);
        let mut merge = DeterministicMerge::new(self.inputs);
        loop {
            match merge.next() {
                MergedElement::Tuple(tuple, _) => {
                    counters.inc_in();
                    if out.send_tuple(tuple).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                    counters.inc_out();
                }
                MergedElement::Watermark(ts) => {
                    if out.send_watermark(ts).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                MergedElement::Barrier(epoch) => {
                    // The merge aligned the cut and drained every pre-barrier tuple,
                    // so Union holds no state across the barrier: forwarding it is
                    // the entire checkpoint protocol for this operator.
                    if out.send_barrier(epoch).is_err() {
                        return Ok(counters.stats(&self.name));
                    }
                }
                MergedElement::End => {
                    let _ = out.send_end();
                    return Ok(counters.stats(&self.name));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::stream_channel;
    use crate::time::Timestamp;
    use crate::tuple::{Element, GTuple};
    use std::sync::Arc;

    fn tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
    }

    #[test]
    fn union_merges_in_timestamp_order_and_forwards_arcs() {
        let (tx1, rx1) = stream_channel(16);
        let (tx2, rx2) = stream_channel(16);
        let out_slot = OutputSlot::<i64, ()>::new();
        let (out_tx, mut out_rx) = stream_channel(64);
        out_slot.connect(out_tx);

        let a = tuple(1, 10);
        let b = tuple(2, 20);
        tx1.send(Element::Tuple(Arc::clone(&a))).unwrap();
        tx1.send(Element::Watermark(Timestamp::from_secs(1)))
            .unwrap();
        tx1.send(Element::End).unwrap();
        tx2.send(Element::Tuple(Arc::clone(&b))).unwrap();
        tx2.send(Element::Watermark(Timestamp::from_secs(2)))
            .unwrap();
        tx2.send(Element::End).unwrap();

        let op = UnionOp::new("union", vec![rx1, rx2], out_slot);
        let stats = Box::new(op).run().unwrap();
        assert_eq!(stats.tuples_out, 2);

        let first = out_rx.recv();
        let first = first.as_tuple().unwrap().clone();
        assert!(Arc::ptr_eq(&first, &a), "Union forwards the same Arc");
        let mut rest = Vec::new();
        loop {
            match out_rx.recv() {
                Element::Tuple(t) => rest.push(t),
                Element::Watermark(_) | Element::Barrier(_) => {}
                Element::End => break,
            }
        }
        assert_eq!(rest.len(), 1);
        assert!(Arc::ptr_eq(&rest[0], &b));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn union_requires_inputs() {
        let slot = OutputSlot::<i64, ()>::new();
        let _ = UnionOp::new("union", Vec::new(), slot);
    }
}
