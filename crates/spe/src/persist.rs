//! Byte-canonical persistence of window-store snapshots.
//!
//! The checkpoint path commits [`Snapshot::Inline`](crate::state::Snapshot)
//! window-store snapshots by default — cheap `Arc` shares that cannot leave the
//! process. A [`WindowPersister`] turns such a snapshot into a **canonical byte
//! container** (and back), which is what lets a durable backend carry aggregate
//! state — including each operator's slice of the provenance graph — across a
//! process death.
//!
//! The container layout (`GLWS`, version 1) is deliberately dumb so that a
//! store can diff two epochs without knowing the key, payload or metadata types:
//!
//! ```text
//! "GLWS" | version u8 | watermark_ms u64 | late_tuples u64 | entry_count u32
//! entry*: start_ms u64 | key_len u32 | key bytes | occ_count u32
//!         occ*: occ_len u32 | occ bytes
//! ```
//!
//! Entries appear in deterministic order (window start ascending, then encoded
//! group key in `K: Ord` order), one entry per open window-instance buffer.
//! Because [`WindowStore::insert`](crate::window::WindowStore::insert) only ever
//! *appends* occurrences to a live buffer and
//! [`close_up_to`](crate::window::WindowStore::close_up_to) removes whole
//! entries, a surviving entry's occurrence list in epoch `e+1` is an extension
//! of its list in epoch `e` — the prefix property incremental snapshot diffs
//! rely on (see `genealog-store`).
//!
//! All integers are little-endian. Every decode is bounds-checked and returns
//! `None` on truncation or version mismatch — never panics, never zero-fills.

use std::sync::Arc;

use crate::time::Timestamp;
use crate::tuple::{GTuple, TupleData};
use crate::window::WindowStoreSnapshot;

/// Leading magic of an encoded window-store container.
pub const CONTAINER_MAGIC: [u8; 4] = *b"GLWS";
/// Container format version.
pub const CONTAINER_VERSION: u8 = 1;
/// Fixed container header: magic + version + watermark + late count + entry count.
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// Bounds-checked cursor over encoded bytes; every read returns `None` once the
/// input is exhausted, so torn or truncated records decode to a clean rejection.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Fixed-layout byte codec for the primitive pieces of a persisted snapshot
/// (group keys, payloads). Implementations must be canonical: equal values
/// encode to equal bytes.
pub trait PersistCodec: Sized + Send + Sync + 'static {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, consuming exactly what [`encode`](PersistCodec::encode)
    /// produced. `None` on truncation.
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self>;
}

impl PersistCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        reader.u32()
    }
}

impl PersistCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        reader.u64()
    }
}

impl PersistCodec for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        reader.i64()
    }
}

impl<A: PersistCodec, B: PersistCodec> PersistCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        Some((A::decode(reader)?, B::decode(reader)?))
    }
}

impl PersistCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        let len = reader.u32()? as usize;
        String::from_utf8(reader.take(len)?.to_vec()).ok()
    }
}

/// Incrementally builds one canonical container.
#[derive(Debug)]
pub struct ContainerWriter {
    buf: Vec<u8>,
    entries: u32,
}

impl ContainerWriter {
    /// Starts a container with the snapshot-level header.
    pub fn new(watermark_ms: u64, late_tuples: u64) -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(&CONTAINER_MAGIC);
        buf.push(CONTAINER_VERSION);
        buf.extend_from_slice(&watermark_ms.to_le_bytes());
        buf.extend_from_slice(&late_tuples.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // entry count, patched in finish()
        ContainerWriter { buf, entries: 0 }
    }

    /// Appends one window-instance buffer: its start, encoded key and the
    /// already-encoded occurrence records in buffer order.
    pub fn entry<O: AsRef<[u8]>>(&mut self, start_ms: u64, key: &[u8], occurrences: &[O]) {
        self.entries += 1;
        self.buf.extend_from_slice(&start_ms.to_le_bytes());
        self.buf
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf
            .extend_from_slice(&(occurrences.len() as u32).to_le_bytes());
        for occ in occurrences {
            let occ = occ.as_ref();
            self.buf
                .extend_from_slice(&(occ.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(occ);
        }
    }

    /// Seals the container (patches the entry count) and returns its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let count = self.entries.to_le_bytes();
        self.buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&count);
        self.buf
    }
}

/// One parsed window-instance buffer, borrowing the container's bytes.
#[derive(Debug)]
pub struct ContainerEntry<'a> {
    /// Window start, in milliseconds.
    pub start_ms: u64,
    /// The encoded group key.
    pub key: &'a [u8],
    /// The encoded occurrence records, in buffer order.
    pub occurrences: Vec<&'a [u8]>,
}

/// A fully parsed container.
#[derive(Debug)]
pub struct Container<'a> {
    /// The snapshot's watermark, in milliseconds.
    pub watermark_ms: u64,
    /// The snapshot's late-tuple count.
    pub late_tuples: u64,
    /// The window-instance buffers, in encoded order.
    pub entries: Vec<ContainerEntry<'a>>,
}

/// Whether `bytes` start like an encoded window-store container.
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN && bytes[..4] == CONTAINER_MAGIC && bytes[4] == CONTAINER_VERSION
}

/// Parses a container, rejecting (with `None`) anything torn or malformed.
pub fn parse_container(bytes: &[u8]) -> Option<Container<'_>> {
    if !is_container(bytes) {
        return None;
    }
    let mut reader = ByteReader::new(&bytes[5..]);
    let watermark_ms = reader.u64()?;
    let late_tuples = reader.u64()?;
    let entry_count = reader.u32()? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
    for _ in 0..entry_count {
        let start_ms = reader.u64()?;
        let key_len = reader.u32()? as usize;
        let key = reader.take(key_len)?;
        let occ_count = reader.u32()? as usize;
        let mut occurrences = Vec::with_capacity(occ_count.min(1 << 16));
        for _ in 0..occ_count {
            let occ_len = reader.u32()? as usize;
            occurrences.push(reader.take(occ_len)?);
        }
        entries.push(ContainerEntry {
            start_ms,
            key,
            occurrences,
        });
    }
    if !reader.is_empty() {
        return None; // trailing garbage is corruption, not slack
    }
    Some(Container {
        watermark_ms,
        late_tuples,
        entries,
    })
}

/// Re-encodes a parsed container. For writer-produced bytes this is the
/// identity, which is what pins incremental-snapshot reconstruction to be
/// byte-identical to a full snapshot.
pub fn encode_container(container: &Container<'_>) -> Vec<u8> {
    let mut writer = ContainerWriter::new(container.watermark_ms, container.late_tuples);
    for entry in &container.entries {
        writer.entry(entry.start_ms, entry.key, &entry.occurrences);
    }
    writer.finish()
}

/// Byte codec for one aggregate operator's window-store snapshot.
///
/// Registered type-erased on a
/// [`CheckpointConfig`](crate::state::CheckpointConfig); the Aggregate operator
/// looks its persister up by the snapshot's concrete `(K, T, M)` type at
/// barrier-commit time. `encode` may return `None` when the buffered state
/// cannot be carried across a process boundary (e.g. provenance pointers into
/// non-terminal upstream tuples); the operator then falls back to the inline,
/// process-local snapshot.
pub trait WindowPersister<K, T, M>: Send + Sync {
    /// Encodes a snapshot into a canonical container, or `None` when the state
    /// is not byte-encodable.
    fn encode(&self, snapshot: &WindowStoreSnapshot<K, T, M>) -> Option<Vec<u8>>;
    /// Decodes a container produced by [`encode`](WindowPersister::encode).
    fn decode(&self, bytes: &[u8]) -> Option<WindowStoreSnapshot<K, T, M>>;
}

/// Persister for provenance-free window state (`M = ()`): an occurrence is just
/// `ts | stimulus | payload`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainWindowPersister;

impl<K, T> WindowPersister<K, T, ()> for PlainWindowPersister
where
    K: PersistCodec + Ord + Clone,
    T: PersistCodec + TupleData,
{
    fn encode(&self, snapshot: &WindowStoreSnapshot<K, T, ()>) -> Option<Vec<u8>> {
        let mut writer =
            ContainerWriter::new(snapshot.watermark().as_millis(), snapshot.late_tuples());
        let mut key_buf = Vec::new();
        for (start, key, occurrences) in snapshot.entries() {
            key_buf.clear();
            key.encode(&mut key_buf);
            let occ_bytes: Vec<Vec<u8>> = occurrences
                .iter()
                .map(|t| {
                    let mut b = Vec::new();
                    b.extend_from_slice(&t.ts.as_millis().to_le_bytes());
                    b.extend_from_slice(&t.stimulus.to_le_bytes());
                    t.data.encode(&mut b);
                    b
                })
                .collect();
            writer.entry(start.as_millis(), &key_buf, &occ_bytes);
        }
        Some(writer.finish())
    }

    fn decode(&self, bytes: &[u8]) -> Option<WindowStoreSnapshot<K, T, ()>> {
        let container = parse_container(bytes)?;
        let mut entries = Vec::with_capacity(container.entries.len());
        for entry in &container.entries {
            let mut key_reader = ByteReader::new(entry.key);
            let key = K::decode(&mut key_reader)?;
            if !key_reader.is_empty() {
                return None;
            }
            let tuples = entry
                .occurrences
                .iter()
                .map(|occ| {
                    let mut r = ByteReader::new(occ);
                    let ts = r.u64()?;
                    let stimulus = r.u64()?;
                    let data = T::decode(&mut r)?;
                    if !r.is_empty() {
                        return None;
                    }
                    Some(Arc::new(GTuple::new(
                        Timestamp::from_millis(ts),
                        stimulus,
                        data,
                        (),
                    )))
                })
                .collect::<Option<Vec<_>>>()?;
            entries.push((Timestamp::from_millis(entry.start_ms), key, tuples));
        }
        Some(WindowStoreSnapshot::from_parts(
            entries,
            container.late_tuples,
            Timestamp::from_millis(container.watermark_ms),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use crate::window::{WindowSpec, WindowStore};

    fn sample_snapshot() -> WindowStoreSnapshot<u32, (u32, i64), ()> {
        let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        let mut store: WindowStore<u32, (u32, i64), ()> = WindowStore::new(spec);
        for i in 0..20u64 {
            let t = Arc::new(GTuple::new(
                Timestamp::from_secs(i),
                i,
                ((i % 3) as u32, i as i64 - 7),
                (),
            ));
            store.insert((i % 3) as u32, t);
        }
        store.close_up_to(Timestamp::from_secs(9));
        store.snapshot()
    }

    #[test]
    fn plain_persister_roundtrips_byte_identical() {
        let snapshot = sample_snapshot();
        let p = PlainWindowPersister;
        let bytes = WindowPersister::<u32, (u32, i64), ()>::encode(&p, &snapshot).unwrap();
        assert!(is_container(&bytes));
        let decoded = p.decode(&bytes).unwrap();
        assert_eq!(decoded.buffered_tuples(), snapshot.buffered_tuples());
        assert_eq!(decoded.watermark(), snapshot.watermark());
        assert_eq!(decoded.late_tuples(), snapshot.late_tuples());
        // Re-encoding the decoded snapshot reproduces the exact bytes.
        let again = WindowPersister::<u32, (u32, i64), ()>::encode(&p, &decoded).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn truncated_container_is_rejected_cleanly() {
        let snapshot = sample_snapshot();
        let p = PlainWindowPersister;
        let bytes = WindowPersister::<u32, (u32, i64), ()>::encode(&p, &snapshot).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                parse_container(&bytes[..cut]).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        assert!(parse_container(&bytes).is_some());
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        let snapshot = sample_snapshot();
        let p = PlainWindowPersister;
        let mut bytes = WindowPersister::<u32, (u32, i64), ()>::encode(&p, &snapshot).unwrap();
        bytes.push(0);
        assert!(parse_container(&bytes).is_none());
    }

    #[test]
    fn container_reencode_is_identity() {
        let snapshot = sample_snapshot();
        let p = PlainWindowPersister;
        let bytes = WindowPersister::<u32, (u32, i64), ()>::encode(&p, &snapshot).unwrap();
        let parsed = parse_container(&bytes).unwrap();
        assert_eq!(encode_container(&parsed), bytes);
    }
}
