//! Tuples, stream elements and tuple identifiers.
//!
//! A stream is an unbounded sequence of [`GTuple`]s sharing the same payload schema
//! `T`. Besides the payload, every tuple carries its logical timestamp `ts`, a
//! *stimulus* wall-clock instant used to compute end-to-end latency, and the
//! provenance metadata `M` produced by the active
//! [`ProvenanceSystem`](crate::provenance::ProvenanceSystem).
//!
//! Tuples travel between operators as `Arc<GTuple<T, M>>`. Operators that *forward*
//! tuples (Filter, Union — the paper's type (i) operators) forward the same `Arc`;
//! operators that *create* tuples (Map, Multiplex, Aggregate, Join — type (ii)+)
//! allocate a new tuple whose metadata the provenance system derives from the inputs.
//! This is exactly the property GeneaLog exploits: as long as a downstream tuple
//! (transitively) references an upstream tuple through its metadata, the upstream
//! tuple stays alive; once nothing references it, its memory is reclaimed.

use std::fmt;
use std::sync::Arc;

use crate::time::Timestamp;

/// Marker bound for tuple payloads.
///
/// Implemented automatically for every type that is cloneable, thread-safe, `Debug`
/// and `'static`. Payloads are plain structs such as the Linear Road position report
/// `⟨ts, car_id, speed, pos⟩`.
pub trait TupleData: Clone + Send + Sync + fmt::Debug + 'static {}
impl<T: Clone + Send + Sync + fmt::Debug + 'static> TupleData for T {}

/// A unique tuple identifier.
///
/// The paper (§6) enriches tuples with a unique id composed of "the unique id of the
/// Source or operator producing the tuple and a sequential counter". [`TupleId`]
/// follows that scheme: `origin` identifies the producing Source/operator (unique per
/// query deployment), `seq` is the producer-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TupleId {
    /// Identifier of the Source or operator that produced the tuple.
    pub origin: u32,
    /// Producer-local sequence number.
    pub seq: u64,
}

impl TupleId {
    /// Creates a tuple id from its parts.
    pub const fn new(origin: u32, seq: u64) -> Self {
        TupleId { origin, seq }
    }

    /// Parses the [`Display`](fmt::Display) form `origin#seq`, also accepting the
    /// URL-friendly `origin-seq` used by the control endpoint's provenance route
    /// (`#` starts a fragment in URLs, so curl callers prefer the dash form).
    pub fn parse(s: &str) -> Option<Self> {
        let (origin, seq) = s.split_once(['#', '-'])?;
        Some(TupleId {
            origin: origin.trim().parse().ok()?,
            seq: seq.trim().parse().ok()?,
        })
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A stream tuple: timestamp, payload and provenance metadata.
#[derive(Debug, Clone)]
pub struct GTuple<T, M> {
    /// Logical creation time of the tuple (the `ts` attribute of §2).
    pub ts: Timestamp,
    /// Wall-clock instant (nanoseconds from an arbitrary per-run origin) at which the
    /// *latest* source tuple contributing to this tuple entered the system. Used to
    /// compute the latency metric of §7.
    pub stimulus: u64,
    /// The application payload (schema attributes `a1..an`).
    pub data: T,
    /// Provenance metadata, produced by the active provenance system.
    pub meta: M,
}

impl<T, M> GTuple<T, M> {
    /// Creates a new tuple.
    pub fn new(ts: Timestamp, stimulus: u64, data: T, meta: M) -> Self {
        GTuple {
            ts,
            stimulus,
            data,
            meta,
        }
    }
}

/// An element travelling on a stream channel.
///
/// Besides data tuples, streams carry *watermarks* (a promise that no tuple with a
/// smaller timestamp will follow, which is what lets windows close deterministically)
/// and an *end-of-stream* marker.
#[derive(Debug)]
pub enum Element<T, M> {
    /// A data tuple.
    Tuple(Arc<GTuple<T, M>>),
    /// All future tuples on this stream have `ts >=` the carried timestamp.
    Watermark(Timestamp),
    /// An epoch barrier: every tuple of the carried epoch (and earlier) has already
    /// been sent on this stream. Barriers are injected by Sources when checkpointing
    /// is enabled (see [`crate::state`]), flow through every channel in stream order,
    /// and are aligned at fan-in operators before the operator snapshots its state.
    Barrier(u64),
    /// The stream is finished; no further elements will be sent.
    End,
}

impl<T, M> Clone for Element<T, M> {
    fn clone(&self) -> Self {
        match self {
            Element::Tuple(t) => Element::Tuple(Arc::clone(t)),
            Element::Watermark(ts) => Element::Watermark(*ts),
            Element::Barrier(epoch) => Element::Barrier(*epoch),
            Element::End => Element::End,
        }
    }
}

impl<T, M> Element<T, M> {
    /// Returns the contained tuple, if this element is a tuple.
    pub fn as_tuple(&self) -> Option<&Arc<GTuple<T, M>>> {
        match self {
            Element::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// True for [`Element::End`].
    pub fn is_end(&self) -> bool {
        matches!(self, Element::End)
    }

    /// The timestamp ordering key of the element: a tuple's `ts`, a watermark's
    /// promise, or [`Timestamp::MAX`] for end-of-stream. Barriers carry no
    /// timestamp of their own; they block their input until aligned, so they order
    /// like end-of-stream.
    pub fn order_ts(&self) -> Timestamp {
        match self {
            Element::Tuple(t) => t.ts,
            Element::Watermark(ts) => *ts,
            Element::Barrier(_) => Timestamp::MAX,
            Element::End => Timestamp::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn tuple_id_parses_both_display_and_url_forms() {
        assert_eq!(TupleId::parse("3#41"), Some(TupleId::new(3, 41)));
        assert_eq!(TupleId::parse("3-41"), Some(TupleId::new(3, 41)));
        assert_eq!(TupleId::parse("garbage"), None);
        assert_eq!(TupleId::parse("#7"), None);
        assert_eq!(TupleId::parse("7#"), None);
    }

    #[test]
    fn tuple_id_display_and_ordering() {
        let a = TupleId::new(1, 7);
        let b = TupleId::new(1, 8);
        let c = TupleId::new(2, 0);
        assert_eq!(a.to_string(), "1#7");
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn element_accessors() {
        let t: Arc<GTuple<i64, ()>> = Arc::new(GTuple::new(Timestamp::from_secs(5), 0, 42, ()));
        let e = Element::Tuple(Arc::clone(&t));
        assert_eq!(e.as_tuple().unwrap().data, 42);
        assert_eq!(e.order_ts(), Timestamp::from_secs(5));
        assert!(!e.is_end());

        let w: Element<i64, ()> = Element::Watermark(Timestamp::from_secs(9));
        assert!(w.as_tuple().is_none());
        assert_eq!(w.order_ts(), Timestamp::from_secs(9));

        let end: Element<i64, ()> = Element::End;
        assert!(end.is_end());
        assert_eq!(end.order_ts(), Timestamp::MAX);
    }

    #[test]
    fn element_clone_shares_tuple_allocation() {
        let t: Arc<GTuple<String, ()>> = Arc::new(GTuple::new(
            Timestamp::from_secs(1),
            0,
            "hello".to_string(),
            (),
        ));
        let e = Element::Tuple(Arc::clone(&t));
        let e2 = e.clone();
        match (&e, &e2) {
            (Element::Tuple(a), Element::Tuple(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected tuples"),
        }
        // 1 original + 2 elements
        assert_eq!(Arc::strong_count(&t), 3);
    }

    #[test]
    fn gtuple_is_send_sync_for_plain_payloads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GTuple<i64, ()>>();
        assert_send_sync::<Element<i64, ()>>();
    }
}
