//! Logical event time: timestamps, durations and watermark arithmetic.
//!
//! The engine is *deterministic*: all processing decisions depend on the logical
//! [`Timestamp`] carried by tuples (the paper's `ts` attribute), never on wall-clock
//! arrival times. Timestamps are measured in **milliseconds** from an arbitrary,
//! per-stream origin (e.g. the start of the simulated day).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical event timestamp in milliseconds (the `ts` attribute of the paper's §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A span of logical time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(0);
    /// The largest representable timestamp (used as the "stream finished" watermark).
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Creates a timestamp from whole hours (convenient for smart-grid workloads).
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * 3_600_000)
    }

    /// Raw value in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Value in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference `self - other`.
    pub fn saturating_since(self, other: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Absolute distance between two timestamps (used by the Join window predicate
    /// `|tL.ts - tR.ts| <= WS`).
    pub fn distance(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Aligns the timestamp *down* to a multiple of `step` (window-start computation).
    pub fn align_down(self, step: Duration) -> Timestamp {
        assert!(step.0 > 0, "alignment step must be positive");
        Timestamp(self.0 - self.0 % step.0)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration(mins * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3_600_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        Duration(days * 86_400_000)
    }

    /// Raw value in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Value in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of two durations (how many `other` fit in `self`).
    pub fn div_duration(self, other: Duration) -> u64 {
        assert!(other.0 > 0, "cannot divide by a zero duration");
        self.0 / other.0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000;
        let (h, m, s) = (secs / 3_600, (secs / 60) % 60, secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(ms: u64) -> Self {
        Timestamp(ms)
    }
}

impl From<u64> for Duration {
    fn from(ms: u64) -> Self {
        Duration(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Timestamp::from_secs(2).as_millis(), 2_000);
        assert_eq!(Timestamp::from_hours(1).as_secs(), 3_600);
        assert_eq!(Duration::from_mins(2).as_millis(), 120_000);
        assert_eq!(Duration::from_days(1).as_millis(), 86_400_000);
        assert_eq!(Duration::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t + Duration::from_secs(5), Timestamp::from_secs(15));
        assert_eq!(t - Duration::from_secs(5), Timestamp::from_secs(5));
        assert_eq!(
            Timestamp::from_secs(15) - Timestamp::from_secs(10),
            Duration::from_secs(5)
        );
        assert_eq!(t.saturating_sub(Duration::from_secs(100)), Timestamp::MIN);
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_secs(1)),
            Timestamp::MAX
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Timestamp::from_secs(30);
        let b = Timestamp::from_secs(90);
        assert_eq!(a.distance(b), Duration::from_secs(60));
        assert_eq!(b.distance(a), Duration::from_secs(60));
    }

    #[test]
    fn align_down_to_window_advance() {
        let advance = Duration::from_secs(30);
        assert_eq!(
            Timestamp::from_secs(31).align_down(advance),
            Timestamp::from_secs(30)
        );
        assert_eq!(
            Timestamp::from_secs(30).align_down(advance),
            Timestamp::from_secs(30)
        );
        assert_eq!(
            Timestamp::from_secs(29).align_down(advance),
            Timestamp::from_secs(0)
        );
    }

    #[test]
    #[should_panic(expected = "alignment step must be positive")]
    fn align_down_zero_step_panics() {
        let _ = Timestamp::from_secs(1).align_down(Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(8 * 3600 + 62).to_string(), "08:01:02");
        assert_eq!(Duration::from_secs(2).to_string(), "2000ms");
    }

    #[test]
    fn ordering_and_saturating_since() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert_eq!(
            Timestamp::from_secs(1).saturating_since(Timestamp::from_secs(2)),
            Duration::ZERO
        );
        assert_eq!(
            Timestamp::from_secs(5).saturating_since(Timestamp::from_secs(2)),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn div_duration_counts_whole_steps() {
        assert_eq!(
            Duration::from_secs(120).div_duration(Duration::from_secs(30)),
            4
        );
        assert_eq!(
            Duration::from_secs(119).div_duration(Duration::from_secs(30)),
            3
        );
    }
}
