//! The provenance extension point of the engine.
//!
//! The paper instruments the standard operators of its host SPE so that each
//! tuple-creating operator fills in the fixed-size meta-attributes `T`, `U1`, `U2`
//! and `N` (§4.1). In this reproduction the engine itself stays provenance-agnostic:
//! every operator calls the corresponding hook of the query's [`ProvenanceSystem`]
//! exactly where the paper's instrumentation sits.
//!
//! Three implementations exist in the workspace:
//!
//! * [`NoProvenance`] (this module) — the "NP" configuration of the evaluation:
//!   metadata is the unit type, all hooks compile to nothing.
//! * `genealog::GeneaLog` — the paper's contribution ("GL"): fixed-size metadata with
//!   reference-counted pointers to contributing tuples.
//! * `genealog_baseline::AriadneBaseline` — the state-of-the-art baseline ("BL"):
//!   variable-length annotations listing contributing source-tuple ids, plus a store
//!   retaining every source tuple.

use std::fmt;
use std::sync::Arc;

use crate::time::Timestamp;
use crate::tuple::{GTuple, TupleData, TupleId};

/// Marker bound for provenance metadata attached to tuples.
pub trait MetaData: Send + Sync + fmt::Debug + 'static {}
impl<M: Send + Sync + fmt::Debug + 'static> MetaData for M {}

/// Context handed to [`ProvenanceSystem::source_meta`] when a Source creates a tuple.
#[derive(Debug, Clone, Copy)]
pub struct SourceContext {
    /// Unique id (within the query deployment) of the Source operator.
    pub source_id: u32,
    /// Sequence number of the tuple within this Source.
    pub seq: u64,
    /// Logical timestamp of the new source tuple.
    pub ts: Timestamp,
}

impl SourceContext {
    /// The [`TupleId`] the paper's §6 assigns to the tuple (`origin` + counter).
    pub fn tuple_id(&self) -> TupleId {
        TupleId::new(self.source_id, self.seq)
    }
}

/// Context handed to [`ProvenanceSystem::remote_meta`] when a Receive operator
/// materialises a tuple that crossed a process boundary.
#[derive(Debug, Clone)]
pub struct RemoteContext {
    /// The unique id the tuple carried in the sending SPE instance.
    pub id: TupleId,
    /// Logical timestamp of the tuple.
    pub ts: Timestamp,
    /// Whether the tuple was a *source* tuple in the sending instance (the paper's
    /// Send operator keeps `T = SOURCE` for source tuples and sets `REMOTE` otherwise).
    pub was_source: bool,
}

/// The instrumentation hook: one method per tuple-creating operator of §4.1.
///
/// A provenance system is instantiated once per query and cloned into every operator,
/// so implementations carrying shared state (e.g. the baseline's source store) should
/// wrap it in `Arc`.
pub trait ProvenanceSystem: Clone + Send + Sync + 'static {
    /// The per-tuple metadata representation (the paper's meta-attributes).
    type Meta: MetaData;

    /// Short human-readable name ("NP", "GL", "BL", ...), used in reports.
    fn label(&self) -> &'static str;

    /// Metadata for a tuple created by a Source (`T = SOURCE`, no pointers).
    fn source_meta<T: TupleData>(&self, ctx: &SourceContext, data: &T) -> Self::Meta;

    /// Metadata for a tuple created by a Map from `input` (`T = MAP`, `U1 = input`).
    fn map_meta<I: TupleData>(&self, input: &Arc<GTuple<I, Self::Meta>>) -> Self::Meta;

    /// Metadata for a copy created by a Multiplex from `input`
    /// (`T = MULTIPLEX`, `U1 = input`).
    fn multiplex_meta<I: TupleData>(&self, input: &Arc<GTuple<I, Self::Meta>>) -> Self::Meta;

    /// Metadata for a tuple created by a Join from the matched pair
    /// (`T = JOIN`, `U1` = the more recent input, `U2` = the older one).
    fn join_meta<L: TupleData, R: TupleData>(
        &self,
        left: &Arc<GTuple<L, Self::Meta>>,
        right: &Arc<GTuple<R, Self::Meta>>,
    ) -> Self::Meta;

    /// Metadata for a tuple created by an Aggregate over `window` (earliest tuple
    /// first). Besides returning the output metadata (`T = AGGREGATE`, `U1` = latest,
    /// `U2` = earliest), implementations may link the window tuples through their `N`
    /// pointers, as the paper's instrumented Aggregate does.
    fn aggregate_meta<I: TupleData>(&self, window: &[Arc<GTuple<I, Self::Meta>>]) -> Self::Meta;

    /// Metadata for a tuple materialised by a Receive operator after crossing a
    /// process boundary (`T` stays `SOURCE` for forwarded source tuples and becomes
    /// `REMOTE` otherwise).
    fn remote_meta(&self, ctx: &RemoteContext) -> Self::Meta;

    /// Clones metadata for a checkpoint *restore* (see [`crate::state`]).
    ///
    /// Restored tuples re-enter live operator state (window buffers), so any
    /// metadata cell the provenance system mutates *after* tuple creation (GeneaLog's
    /// `N` pointer, written when a window closes) must come back **unset**: the
    /// recovered run will re-write it when its own windows close, and a stale value
    /// from the failed run would corrupt the re-stitched lineage. Immutable fields
    /// (kind, id, `U1`/`U2` back-pointers into the already-frozen part of the
    /// provenance graph) are cloned as-is.
    fn detach_meta(&self, meta: &Self::Meta) -> Self::Meta;
}

/// Clones a buffered tuple for a checkpoint restore: same timestamp, stimulus and
/// payload, metadata detached through [`ProvenanceSystem::detach_meta`].
pub fn detach_tuple<T: TupleData, P: ProvenanceSystem>(
    provenance: &P,
    tuple: &Arc<GTuple<T, P::Meta>>,
) -> Arc<GTuple<T, P::Meta>> {
    Arc::new(GTuple::new(
        tuple.ts,
        tuple.stimulus,
        tuple.data.clone(),
        provenance.detach_meta(&tuple.meta),
    ))
}

/// The "NP" (no provenance) configuration: metadata is `()`, every hook is a no-op.
///
/// Queries deployed with `NoProvenance` pay no metadata cost at all, which makes this
/// the reference point of the evaluation's overhead measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProvenance;

impl ProvenanceSystem for NoProvenance {
    type Meta = ();

    fn label(&self) -> &'static str {
        "NP"
    }

    #[inline]
    fn source_meta<T: TupleData>(&self, _ctx: &SourceContext, _data: &T) -> Self::Meta {}

    #[inline]
    fn map_meta<I: TupleData>(&self, _input: &Arc<GTuple<I, Self::Meta>>) -> Self::Meta {}

    #[inline]
    fn multiplex_meta<I: TupleData>(&self, _input: &Arc<GTuple<I, Self::Meta>>) -> Self::Meta {}

    #[inline]
    fn join_meta<L: TupleData, R: TupleData>(
        &self,
        _left: &Arc<GTuple<L, Self::Meta>>,
        _right: &Arc<GTuple<R, Self::Meta>>,
    ) -> Self::Meta {
    }

    #[inline]
    fn aggregate_meta<I: TupleData>(&self, _window: &[Arc<GTuple<I, Self::Meta>>]) -> Self::Meta {}

    #[inline]
    fn remote_meta(&self, _ctx: &RemoteContext) -> Self::Meta {}

    #[inline]
    fn detach_meta(&self, _meta: &Self::Meta) -> Self::Meta {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn source_context_builds_paper_style_ids() {
        let ctx = SourceContext {
            source_id: 3,
            seq: 17,
            ts: Timestamp::from_secs(1),
        };
        assert_eq!(ctx.tuple_id(), TupleId::new(3, 17));
    }

    #[test]
    fn no_provenance_hooks_return_unit() {
        let np = NoProvenance;
        assert_eq!(np.label(), "NP");
        let ctx = SourceContext {
            source_id: 0,
            seq: 0,
            ts: Timestamp::MIN,
        };
        np.source_meta(&ctx, &42i64);
        let t = Arc::new(GTuple::new(Timestamp::MIN, 0, 1i64, ()));
        np.map_meta(&t);
        np.multiplex_meta(&t);
        np.join_meta(&t, &t);
        np.aggregate_meta(std::slice::from_ref(&t));
        np.remote_meta(&RemoteContext {
            id: TupleId::new(0, 0),
            ts: Timestamp::MIN,
            was_source: true,
        });
    }

    #[test]
    fn no_provenance_meta_is_zero_sized() {
        assert_eq!(
            std::mem::size_of::<<NoProvenance as ProvenanceSystem>::Meta>(),
            0
        );
    }
}
